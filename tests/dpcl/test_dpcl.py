"""DPCL system tests: daemons, client ops, asynchrony, callbacks."""


from repro.cluster import Cluster, POWER3_SP
from repro.dpcl import DpclClient, DpclError
from repro.jobs import MpiJob
from repro.program import ENTRY, CallFunc, Const
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def build_job(env, n_procs=4, work_time=5.0, nfuncs=6):
    """An MPI job whose ranks compute then exit."""
    from repro.program import ExecutableImage

    cluster = Cluster(env, SPEC, seed=9)
    exe = ExecutableImage("target")
    for i in range(nfuncs):
        exe.define(f"work{i}")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        for _ in range(10):
            yield from pctx.call_batch("work0", 100, 1e-6)
            yield from pctx.compute(work_time / 10)
        yield from pctx.call("MPI_Finalize")
        return "done"

    job = MpiJob(env, cluster, exe, n_procs, program)
    return cluster, job


def run_tool(env, cluster, job, tool_body):
    """Run an instrumenter process alongside the job."""
    from repro.cluster import Task

    login = cluster.node(0)
    tool_task = Task(env, login, "tool", SPEC, bind_core=False)
    client = DpclClient(env, cluster, login, job.daemon_host)

    def tool_main():
        return (yield from tool_body(client))

    proc = tool_task.start(tool_main())
    return client, proc


def process_names(job):
    return [t.name for t in job.tasks]


def locations(job):
    return {t.name: t.node for t in job.tasks}


def test_connect_and_attach():
    env = Environment()
    cluster, job = build_job(env, n_procs=4)

    def tool(client):
        yield from client.connect(locations(job))
        attached = yield from client.attach(process_names(job))
        return attached

    _client, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    assert len(proc.value) == 4
    env.run()  # let the job finish


def test_attach_charges_per_process_structure_walk():
    env = Environment()
    cluster, job = build_job(env, n_procs=1)

    def tool(client):
        yield from client.connect(locations(job))
        t0 = env.now
        yield from client.attach(process_names(job))
        return env.now - t0

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    # At least the per-process structure cost was paid.
    assert proc.value >= SPEC.dpcl_client_per_process_cost
    env.run()


def test_install_probe_patches_only_target_rank():
    env = Environment()
    cluster, job = build_job(env, n_procs=4)
    target = job.tasks[2].name

    def tool(client):
        yield from client.connect(locations(job))
        yield from client.attach(process_names(job))
        yield from client.suspend(blocking=True)
        handles = yield from client.install_probes(
            [(target, "work1", ENTRY, Const(0))]
        )
        yield from client.resume()
        return handles

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    handles = proc.value
    assert len(handles) == 1
    assert job.images[2].installed_probes == 1
    assert job.images[0].installed_probes == 0
    env.run()


def test_install_and_remove_roundtrip():
    env = Environment()
    cluster, job = build_job(env, n_procs=2)
    names = process_names(job)

    def tool(client):
        yield from client.connect(locations(job))
        yield from client.attach(names)
        yield from client.suspend(blocking=True)
        handles = yield from client.install_probes(
            [(n, "work1", ENTRY, Const(0)) for n in names]
        )
        removed = yield from client.remove_probes(handles)
        yield from client.resume()
        return removed

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    assert proc.value == 2
    assert all(im.installed_probes == 0 for im in job.images)
    env.run()


def test_suspend_blocks_until_targets_parked():
    env = Environment()
    cluster, job = build_job(env, n_procs=4, work_time=20.0)

    def tool(client):
        yield from client.connect(locations(job))
        yield from client.attach(process_names(job))
        yield env.timeout(2.0)  # let the app get going
        yield from client.suspend(blocking=True)
        suspended_at = env.now
        assert all(t.is_parked for t in job.tasks)
        yield from client.resume()
        return suspended_at

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    assert all(not t.is_suspend_requested for t in job.tasks)
    env.run()
    # All ranks finished their full compute despite the suspension.
    assert all(p.value == "done" for p in job.procs)


def test_suspension_shows_as_inactivity():
    env = Environment()
    cluster, job = build_job(env, n_procs=2, work_time=20.0)

    def tool(client):
        yield from client.connect(locations(job))
        yield from client.attach(process_names(job))
        yield env.timeout(2.0)
        yield from client.suspend(blocking=True)
        yield env.timeout(3.0)  # "user thinks"
        yield from client.resume()

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    env.run()
    for task in job.tasks:
        assert task.total_suspended_time >= 2.9


def test_dpcl_callback_reaches_client():
    env = Environment()
    cluster, job = build_job(env, n_procs=2)
    names = process_names(job)

    def tool(client):
        yield from client.connect(locations(job))
        yield from client.attach(names)
        yield from client.suspend(blocking=True)
        snippet = CallFunc("DPCL_callback", [Const("hello")])
        yield from client.install_probes(
            [(n, "work2", ENTRY, snippet) for n in names]
        )
        yield from client.resume()
        return None

    client, proc = run_tool(env, cluster, job, tool)

    # Make ranks actually call work2 once, late enough that the tool has
    # finished installing the callback probe by then.
    def program(pctx):
        yield from pctx.call("MPI_Init")
        yield from pctx.compute(30.0)
        yield from pctx.call("work2")
        yield from pctx.call("MPI_Finalize")

    job.program = program
    job.start()
    env.run(until=proc)

    def waiter():
        msgs = yield from client.wait_callback(tag="hello", n=2)
        return msgs

    wproc = env.process(waiter())
    msgs = env.run(until=wproc)
    assert len(msgs) == 2
    assert {m.process_name for m in msgs} == set(names)
    env.run()


def test_asynchrony_daemons_see_requests_at_different_times():
    """The defining DPCL property: per-node message skew (Section 3.2)."""
    env = Environment()
    # Jitter explicitly on for this test; 16 ranks over 2 nodes.
    spec = SPEC
    cluster = Cluster(env, spec, seed=31)
    from repro.program import ExecutableImage

    exe = ExecutableImage("skew")
    exe.define("w")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        yield from pctx.compute(30.0)
        yield from pctx.call("MPI_Finalize")

    job = MpiJob(env, cluster, exe, 16, program)

    suspend_times = {}

    class Obs:
        def __init__(self, name):
            self.name = name

        def on_suspended(self, task, start):
            suspend_times[self.name] = start

        def on_resumed(self, task, start, end):
            pass

    for t in job.tasks:
        t.observers.append(Obs(t.name))

    def tool(client):
        yield from client.connect({t.name: t.node for t in job.tasks})
        yield from client.attach([t.name for t in job.tasks])
        yield env.timeout(1.0)
        yield from client.suspend(blocking=True)
        yield from client.resume()

    client, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    env.run()
    times = sorted(suspend_times.values())
    assert len(times) == 16
    # Skew exists (different nodes, jittered daemon latency).
    assert times[-1] > times[0]


def test_ops_without_connect_fail():
    env = Environment()
    cluster, job = build_job(env, n_procs=2)

    def tool(client):
        try:
            yield from client.attach(process_names(job))
        except DpclError:
            return "rejected"

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    assert proc.value == "rejected"
    env.run()


def test_install_unknown_function_reports_daemon_error():
    env = Environment()
    cluster, job = build_job(env, n_procs=2)
    names = process_names(job)

    def tool(client):
        yield from client.connect(locations(job))
        yield from client.attach(names)
        try:
            yield from client.install_probes([(names[0], "no_such_fn", ENTRY, Const(0))])
        except DpclError as e:
            return str(e)

    _c, proc = run_tool(env, cluster, job, tool)
    job.start()
    env.run(until=proc)
    assert "no_such_fn" in proc.value
    env.run()
