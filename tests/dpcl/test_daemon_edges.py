"""DPCL edge cases: activation toggles, detach persistence, re-attach,
multiple users, error paths."""


from repro.cluster import Cluster, POWER3_SP
from repro.dpcl import DpclClient, DpclError
from repro.jobs import MpiJob
from repro.program import ENTRY, CallFunc, Const, ExecutableImage
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def setup_world(n_procs=2, work=30.0):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=13)
    exe = ExecutableImage("edges")
    exe.define("looper")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        for _ in range(int(work)):
            yield from pctx.call("looper")
            yield from pctx.compute(1.0)
        yield from pctx.call("MPI_Finalize")
        return "done"

    job = MpiJob(env, cluster, exe, n_procs, program)
    return env, cluster, job


def run_tool(env, cluster, job, body, user="user"):
    from repro.cluster import Task

    node = cluster.node(0)
    task = Task(env, node, f"tool-{user}", SPEC, bind_core=False)
    client = DpclClient(env, cluster, node, job.daemon_host, user=user)

    def main():
        return (yield from body(client))

    return client, task.start(main())


def locations(job):
    return {t.name: t.node for t in job.tasks}


def names(job):
    return [t.name for t in job.tasks]


def test_activate_deactivate_roundtrip():
    env, cluster, job = setup_world()
    counts = []

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.suspend(blocking=True)
        handles = yield from client.install_probes(
            [(n, "looper", ENTRY, CallFunc("count")) for n in names(job)],
            activate=False,
        )
        yield from client.resume()
        yield env.timeout(5.0)
        snap1 = len(counts)
        yield from client.set_probes_active(handles, True)
        yield env.timeout(5.0)
        snap2 = len(counts)
        yield from client.set_probes_active(handles, False)
        yield env.timeout(5.0)
        return snap1, snap2, len(counts)

    for image in job.images:
        image.register_runtime("count", lambda ctx: counts.append(1))
    client, proc = run_tool(env, cluster, job, body)
    job.start()
    snap1, snap2, final = env.run(until=proc)
    env.run()
    assert snap1 == 0          # installed but inactive: snippet never ran
    assert snap2 > snap1       # activation made it fire
    assert final - snap2 <= 1  # deactivation stopped it (1 in-flight ok)


def test_detach_leaves_probes_active():
    """The paper: 'All instrumentation that is active prior to quitting
    will remain active.'"""
    env, cluster, job = setup_world()

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.suspend(blocking=True)
        yield from client.install_probes(
            [(n, "looper", ENTRY, Const(0)) for n in names(job)]
        )
        yield from client.resume()
        n = yield from client.detach()
        return n

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    detached = env.run(until=proc)
    env.run()
    assert detached == 2
    for image in job.images:
        assert image.installed_probes == 1
        tramp = image.func("looper").entry
        assert tramp is not None and tramp.has_active


def test_ops_after_detach_fail():
    env, cluster, job = setup_world()

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.detach()
        try:
            client.image_of(names(job)[0])
        except DpclError:
            return "rejected"

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    assert env.run(until=proc) == "rejected"
    env.run()


def test_two_users_get_separate_comm_daemons():
    env, cluster, job = setup_world()
    results = {}

    def make_body(tag):
        def body(client):
            yield from client.connect(locations(job))
            yield from client.attach(names(job))
            results[tag] = client._find_daemon(0)
            return None

        return body

    c1, p1 = run_tool(env, cluster, job, make_body("alice"), user="alice")
    c2, p2 = run_tool(env, cluster, job, make_body("bob"), user="bob")
    job.start()
    env.run(until=p1)
    env.run(until=p2)
    env.run()
    assert results["alice"] is not results["bob"]
    assert results["alice"].user == "alice"


def test_connect_twice_is_idempotent():
    env, cluster, job = setup_world()

    def body(client):
        yield from client.connect(locations(job))
        acks = yield from client.connect(locations(job))
        return acks

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    assert env.run(until=proc) == []  # nothing new to connect
    env.run()


def test_suspend_of_finished_process_is_safe():
    env, cluster, job = setup_world(work=1.0)

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield env.timeout(20.0)  # app has long finished
        n = yield from client.suspend(blocking=True)
        yield from client.resume()
        return n

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    n = env.run(until=proc)
    env.run()
    assert n == 2  # acknowledged, no hang on dead targets


def test_remove_probe_idempotent_via_client():
    env, cluster, job = setup_world()

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.suspend(blocking=True)
        handles = yield from client.install_probes(
            [(names(job)[0], "looper", ENTRY, Const(0))]
        )
        first = yield from client.remove_probes(handles)
        second = yield from client.remove_probes(handles)
        yield from client.resume()
        return first, second

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    first, second = env.run(until=proc)
    env.run()
    assert first == 1 and second == 0


# ------------------------------------------------------ inferior calls


def test_execute_snippet_runs_in_target_address_space():
    from repro.program import Assign, Arith, Const, VarRef

    env, cluster, job = setup_world()
    target = names(job)[0]

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.suspend(blocking=True)
        # x = 40 + 2, evaluated inside the stopped target.
        result = yield from client.execute_snippet(
            target, Assign("x", Arith("+", Const(40), Const(2)))
        )
        readback = yield from client.execute_snippet(target, VarRef("x"))
        yield from client.resume()
        return result, readback

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    result, readback = env.run(until=proc)
    env.run()
    assert result == 42 and readback == 42
    assert job.images[0].read_variable("x") == 42
    # Only the target process was touched.
    assert job.images[1].read_variable("x") == 0


def test_execute_snippet_can_call_vt_funcdef():
    from repro.program import CallFunc, Const

    env, cluster, job = setup_world()
    target = names(job)[0]

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.suspend(blocking=True)
        fid = yield from client.execute_snippet(
            target, CallFunc("VT_funcdef", [Const("looper")])
        )
        yield from client.resume()
        return fid

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    fid = env.run(until=proc)
    env.run()
    assert fid is not None
    assert job.images[0].func("looper").fid == fid


def test_execute_snippet_rejects_blocking_code():
    from repro.program import SpinWait

    env, cluster, job = setup_world()
    target = names(job)[0]

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield from client.suspend(blocking=True)
        try:
            yield from client.execute_snippet(target, SpinWait("never_set"))
        except DpclError as e:
            return str(e)
        finally:
            yield from client.resume()

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    error = env.run(until=proc)
    env.run()
    assert "cannot wait" in error


def test_execute_snippet_requires_stopped_target():
    from repro.program import Const

    env, cluster, job = setup_world()
    target = names(job)[0]

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach(names(job))
        yield env.timeout(2.0)  # target is running
        try:
            yield from client.execute_snippet(target, Const(1))
        except DpclError as e:
            return str(e)

    client, proc = run_tool(env, cluster, job, body)
    job.start()
    error = env.run(until=proc)
    env.run()
    assert "must be stopped" in error
