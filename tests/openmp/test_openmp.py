"""OpenMP runtime tests: fork/join, worksharing, sync, tracing."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.jobs import OmpJob
from repro.openmp import DynamicSchedule, GuidedSchedule, StaticSchedule
from repro.program import ExecutableImage
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def run_omp(n_threads, program, exe=None, link_vt=True, vt_config=None):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=4)
    if exe is None:
        exe = ExecutableImage("ompapp")
    job = OmpJob(env, cluster, exe, n_threads, program, link_vt=link_vt, vt_config=vt_config)
    job.start()
    env.run(until=job.completion())
    env.run()
    return job, job.proc.value


def omp_main(body):
    def program(pctx):
        yield from pctx.call("VT_init")
        return (yield from body(pctx))

    return program


def test_parallel_runs_body_on_every_thread():
    def body(pctx):
        seen = []

        def region(tctx, team):
            seen.append(tctx.thread_id)
            return tctx.thread_id * 10
            yield  # pragma: no cover

        results = yield from pctx.omp.parallel(region)
        return (sorted(seen), results)

    _job, (seen, results) = run_omp(4, omp_main(body))
    assert seen == [0, 1, 2, 3]
    assert results == [0, 10, 20, 30]


def test_parallel_speeds_up_compute():
    """T threads each doing work/T finish in ~work/T wall time."""

    def make(n_threads):
        def body(pctx):
            def region(tctx, team):
                yield from tctx.compute(8.0 / team.size)

            t0 = pctx.now
            yield from pctx.omp.parallel(region)
            return pctx.now - t0

        _job, elapsed = run_omp(n_threads, omp_main(body))
        return elapsed

    t1, t4, t8 = make(1), make(4), make(8)
    assert t4 == pytest.approx(t1 / 4, rel=0.05)
    assert t8 == pytest.approx(t1 / 8, rel=0.05)


def test_join_waits_for_slowest_thread():
    def body(pctx):
        def region(tctx, team):
            yield from tctx.compute(1.0 * (tctx.thread_id + 1))

        t0 = pctx.now
        yield from pctx.omp.parallel(region)
        return pctx.now - t0

    _job, elapsed = run_omp(4, omp_main(body))
    assert elapsed >= 4.0


def test_barrier_synchronizes_team():
    after = []

    def body(pctx):
        def region(tctx, team):
            yield from tctx.compute(0.5 * tctx.thread_id)
            yield from team.barrier(tctx)
            after.append(tctx.task.now)

        yield from pctx.omp.parallel(region)

    run_omp(4, omp_main(body))
    slowest = 1.5
    assert all(t >= slowest for t in after)


def test_static_schedule_partitions_all_iterations():
    def body(pctx):
        got = []

        def loop_body(tctx, start, stop):
            got.extend(range(start, stop))
            return None
            yield  # pragma: no cover

        yield from pctx.omp.parallel_for(103, loop_body, schedule=StaticSchedule())
        return sorted(got)

    _job, got = run_omp(4, omp_main(body))
    assert got == list(range(103))


def test_static_schedule_with_chunks_interleaves():
    def body(pctx):
        by_thread = {}

        def loop_body(tctx, start, stop):
            by_thread.setdefault(tctx.thread_id, []).append((start, stop))
            return None
            yield  # pragma: no cover

        yield from pctx.omp.parallel_for(
            16, loop_body, schedule=StaticSchedule(chunk=2)
        )
        return by_thread

    _job, by_thread = run_omp(2, omp_main(body))
    assert by_thread[0] == [(0, 2), (4, 6), (8, 10), (12, 14)]
    assert by_thread[1] == [(2, 4), (6, 8), (10, 12), (14, 16)]


@pytest.mark.parametrize("schedule", [DynamicSchedule(chunk=3), GuidedSchedule()])
def test_dynamic_and_guided_schedules_cover_everything(schedule):
    def body(pctx):
        got = []

        def loop_body(tctx, start, stop):
            yield from tctx.compute(0.01 * (stop - start))
            got.extend(range(start, stop))

        yield from pctx.omp.parallel_for(50, loop_body, schedule=schedule)
        return sorted(got)

    _job, got = run_omp(4, omp_main(body))
    assert got == list(range(50))


def test_dynamic_schedule_balances_uneven_work():
    """With wildly uneven iteration costs, dynamic beats static."""

    def make(schedule):
        def body(pctx):
            def loop_body(tctx, start, stop):
                for i in range(start, stop):
                    # Iterations 0-7 are heavy, the rest near-free.
                    yield from tctx.compute(1.0 if i < 8 else 0.001)

            t0 = pctx.now
            yield from pctx.omp.parallel_for(64, loop_body, schedule=schedule)
            return pctx.now - t0

        _job, elapsed = run_omp(4, omp_main(body))
        return elapsed

    t_static = make(StaticSchedule())  # thread 0 gets all 8 heavy iters
    t_dynamic = make(DynamicSchedule(chunk=1))
    assert t_dynamic < t_static * 0.55


def test_critical_section_is_exclusive():
    def body(pctx):
        log = []

        def region(tctx, team):
            yield from team.critical(tctx, "update")
            log.append(("in", tctx.thread_id))
            yield from tctx.compute(0.1)
            log.append(("out", tctx.thread_id))
            yield from team.end_critical(tctx, "update")

        yield from pctx.omp.parallel(region)
        return log

    _job, log = run_omp(4, omp_main(body))
    # Strict nesting: every "in" is immediately followed by its "out".
    for i in range(0, len(log), 2):
        assert log[i][0] == "in" and log[i + 1][0] == "out"
        assert log[i][1] == log[i + 1][1]


def test_end_critical_without_critical_raises():
    def body(pctx):
        def region(tctx, team):
            try:
                yield from team.end_critical(tctx, "x")
            except RuntimeError:
                return "caught"

        results = yield from pctx.omp.parallel(region, num_threads=1)
        return results[0]

    _job, result = run_omp(2, omp_main(body))
    assert result == "caught"


def test_team_reduce():
    def body(pctx):
        def region(tctx, team):
            value = tctx.thread_id + 1
            total = yield from team.reduce(tctx, value, lambda a, b: a + b)
            return total

        results = yield from pctx.omp.parallel(region)
        return results

    _job, results = run_omp(4, omp_main(body))
    assert results == [10, 10, 10, 10]


def test_threads_share_one_image():
    def body(pctx):
        images = []

        def region(tctx, team):
            images.append(id(tctx.image))
            return None
            yield  # pragma: no cover

        yield from pctx.omp.parallel(region)
        return images

    _job, images = run_omp(4, omp_main(body))
    assert len(set(images)) == 1


def test_region_events_logged_per_thread():
    def body(pctx):
        def region(tctx, team):
            yield from tctx.compute(0.1)

        yield from pctx.omp.parallel(region, name="solver_loop")

    job, _ = run_omp(4, omp_main(body))
    vt = job.vt
    # One enter+leave pair per thread for the region pseudo-function.
    buffers = vt.buffers
    assert len(buffers) == 4
    for buf in buffers:
        kinds = [type(r).__name__ for r in buf.records]
        assert kinds.count("EnterRecord") == 1
        assert kinds.count("LeaveRecord") == 1
    names = [vt.registry.name_of(fid) for fid, _ in vt.registry.items()]
    assert any("solver_loop" in n for n in names)


def test_too_many_threads_rejected():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=4)
    exe = ExecutableImage("x")
    with pytest.raises(ValueError, match="cores"):
        OmpJob(env, cluster, exe, 9, lambda pctx: iter(()))


def test_nested_region_results_and_thread_ids_restored():
    def body(pctx):
        def region(tctx, team):
            return team.size
            yield  # pragma: no cover

        r1 = yield from pctx.omp.parallel(region, num_threads=2)
        r2 = yield from pctx.omp.parallel(region, num_threads=4)
        return (r1, r2, pctx.thread_id)

    _job, (r1, r2, tid) = run_omp(8, omp_main(body))
    assert r1 == [2, 2]
    assert r2 == [4, 4, 4, 4]
    assert tid == 0


def test_master_construct():
    def body(pctx):
        ran = []

        def region(tctx, team):
            if team.is_master(tctx):
                ran.append(tctx.thread_id)
            yield from team.barrier(tctx)

        yield from pctx.omp.parallel(region)
        return ran

    _job, ran = run_omp(4, omp_main(body))
    assert ran == [0]


def test_single_construct_runs_exactly_once_per_site():
    def body(pctx):
        sites = {0: [], 1: []}

        def region(tctx, team):
            # Stagger arrivals so the owner is not always thread 0.
            yield from tctx.compute(0.01 * (team.size - tctx.thread_id))
            if team.single(tctx):
                sites[0].append(tctx.thread_id)
            yield from team.barrier(tctx)
            if team.single(tctx):
                sites[1].append(tctx.thread_id)
            yield from team.barrier(tctx)

        yield from pctx.omp.parallel(region)
        return sites

    _job, sites = run_omp(4, omp_main(body))
    assert len(sites[0]) == 1
    assert len(sites[1]) == 1
    # The staggered compute makes the last thread arrive first.
    assert sites[0] == [3]


def test_nested_parallel_rejected():
    def body(pctx):
        def inner_region(tctx, team):
            return None
            yield  # pragma: no cover

        def region(tctx, team):
            if tctx.thread_id != 0:
                try:
                    yield from pctx.omp.parallel(inner_region)
                except RuntimeError as e:
                    return "nested" in str(e)
            return None

        results = yield from pctx.omp.parallel(region)
        return results

    _job, results = run_omp(4, omp_main(body))
    assert all(r is True for r in results[1:])
