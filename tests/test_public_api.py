"""Guard the public API surface: exports resolve, docs exist."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.obs",
    "repro.simt",
    "repro.cluster",
    "repro.program",
    "repro.mpi",
    "repro.openmp",
    "repro.vt",
    "repro.compact",
    "repro.dpcl",
    "repro.dynprof",
    "repro.apps",
    "repro.analysis",
    "repro.experiments",
    "repro.jobs",
    "repro.svc",
]


def test_version():
    assert repro.__version__ == "1.1.0"


def test_root_all_resolves():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_subpackage_all_resolves(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and len(mod.__doc__) > 40, f"{modname} needs a docstring"
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{modname}.{name}"


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_public_classes_and_functions_documented(modname):
    """Every public item exported by a subpackage carries a docstring."""
    mod = importlib.import_module(modname)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(f"{modname}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_console_entry_points_importable():
    from repro.dynprof.cli import main as dynprof_main
    from repro.experiments.cli import main as experiments_main

    assert callable(dynprof_main) and callable(experiments_main)


def test_machine_presets_match_paper_testbeds():
    # The two testbeds of the paper, by name, from the root namespace.
    assert repro.POWER3_SP.total_cores() == 1152
    assert repro.IA32_LINUX.n_nodes == 16
