"""Tests for the figure/table harness (reduced sizes for speed)."""

import pytest

from repro.apps import SMG98, SPPM, SWEEP3D, UMT98
from repro.experiments import (
    FigureResult,
    fig7_shape_report,
    measure_confsync,
    measure_create_and_instrument,
    render_table1,
    render_table2,
    render_table3,
    run_fig7,
    run_fig8a,
    run_fig8c,
    run_fig9,
)


# ----------------------------------------------------------- FigureResult


def test_figure_result_series_and_render():
    fig = FigureResult("figX", "Test", "CPUs", "Time (s)", [1, 2, 4])
    fig.add_series("A", [1.0, 2.0, 3.0])
    fig.add_series("B", [2.0, None, 6.0])
    assert fig.get("A").value_at(fig.x, 2) == 2.0
    assert fig.ratio("B", "A", 1) == 2.0
    text = fig.render()
    assert "figX" in text and "A" in text and "-" in text
    csv = fig.to_csv()
    assert csv.splitlines()[0] == "CPUs,A,B"


def test_figure_result_validation():
    fig = FigureResult("f", "t", "x", "y", [1, 2])
    with pytest.raises(ValueError):
        fig.add_series("bad", [1.0])
    fig.add_series("ok", [1.0, 2.0])
    with pytest.raises(KeyError):
        fig.get("nope")


# ----------------------------------------------------------- tables


def test_tables_render_paper_content():
    t1 = render_table1()
    assert "insert-file" in t1 and "Shortcut" in t1
    t2 = render_table2()
    assert "Smg98" in t2 and "199" in t2 and "OMP/F77" in t2
    t3 = render_table3()
    assert "Full-Off" in t3 and "configuration file" in t3


# ----------------------------------------------------------- figure 7


@pytest.mark.slow
def test_fig7a_shape_claims_hold():
    fig = run_fig7(SMG98, cpu_counts=(1, 4, 16, 64), scale=0.05, seed=2)
    report = fig7_shape_report(fig, SMG98)
    assert report, "no checks ran"
    assert all(line.startswith("PASS") for line in report), "\n".join(report)


def test_fig7c_all_policies_equal_small():
    fig = run_fig7(SWEEP3D, cpu_counts=(2, 8), scale=0.05, seed=2)
    report = fig7_shape_report(fig, SWEEP3D)
    assert all(line.startswith("PASS") for line in report), "\n".join(report)
    # No Subset series for Sweep3d.
    with pytest.raises(KeyError):
        fig.get("Subset")


def test_fig7d_umt_shape():
    fig = run_fig7(UMT98, cpu_counts=(1, 4, 8), scale=0.05, seed=2)
    report = fig7_shape_report(fig, UMT98)
    assert all(line.startswith("PASS") for line in report), "\n".join(report)


def test_fig7b_sppm_shape():
    fig = run_fig7(SPPM, cpu_counts=(1, 8, 16), scale=0.05, seed=2)
    full = fig.get("Full").values
    none = fig.get("None").values
    assert all(f > n for f, n in zip(full, none))
    dyn = fig.get("Dynamic").values
    assert all(d <= n * 1.05 for d, n in zip(dyn, none))


# ----------------------------------------------------------- figure 8


def test_confsync_cost_under_paper_bound():
    # Figure 8(a): under 0.04 s whether or not changes are made.
    for change in (False, True):
        t = measure_confsync(16, change=change, reps=4)
        assert t < 0.04


def test_confsync_cost_monotone_in_procs():
    t2 = measure_confsync(2, reps=4)
    t32 = measure_confsync(32, reps=4)
    assert t32 > t2


def test_confsync_stats_order_of_magnitude_larger():
    plain = measure_confsync(8, stats=False, reps=4)
    stats = measure_confsync(8, stats=True, reps=4)
    assert stats > 3 * plain


def test_fig8a_small():
    fig = run_fig8a(proc_counts=(2, 8), seed=1)
    nc = fig.get("No Change").values
    ch = fig.get("Changes").values
    assert all(v < 0.04 for v in nc + ch)
    assert all(c >= n * 0.95 for c, n in zip(ch, nc))


def test_fig8c_ia32_small():
    fig = run_fig8c(proc_counts=(2, 4, 8), seed=1)
    values = fig.get("No Change").values
    # Paper: insignificant delay, well under 6 ms on <= 16 procs.
    assert all(v < 0.006 for v in values)


# ----------------------------------------------------------- figure 9


def test_fig9_mpi_grows_omp_flat():
    t_smg_2 = measure_create_and_instrument(SMG98, 2)
    t_smg_8 = measure_create_and_instrument(SMG98, 8)
    assert t_smg_8 > t_smg_2 * 1.5
    t_umt_1 = measure_create_and_instrument(UMT98, 1)
    t_umt_8 = measure_create_and_instrument(UMT98, 8)
    assert t_umt_8 == pytest.approx(t_umt_1, rel=0.15)


def test_fig9_figure_assembly():
    fig = run_fig9(cpu_counts=(1, 2), apps=("sweep3d", "umt98"))
    # Sweep3d has no 1-CPU point (MPI version can't run on one proc).
    assert fig.get("Sweep3d").values[0] is None
    assert fig.get("Umt98").values[1] is not None


# ----------------------------------------------------------- CLI


def test_cli_tables(capsys):
    from repro.experiments.cli import main

    assert main(["table1", "table2", "table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out and "Table 3" in out


def test_cli_fig_quick_and_csv(tmp_path, capsys):
    from repro.experiments.cli import main

    csv_path = tmp_path / "out.csv"
    assert main(["fig8c", "--quick", "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "fig8c" in out
    assert csv_path.exists()
    assert "No Change" in csv_path.read_text()


def test_cli_rejects_unknown_experiment():
    from repro.experiments.cli import main

    with pytest.raises(SystemExit):
        main(["figZZ"])


# ----------------------------------------------------------- trace volume


def test_tracevol_quantifies_the_motivation():
    from repro.experiments import render_tracevol, run_tracevol

    rows = run_tracevol(apps=["smg98"], n_cpus=4, scale=0.05, seed=1)
    by_policy = {r.policy: r for r in rows}
    assert set(by_policy) == {"Full", "Full-Off", "Subset", "None", "Dynamic"}
    # Full's data rate is in the "impractical" regime the paper cites...
    assert by_policy["Full"].rate_mb_s_per_proc > 2.0
    # ...and Dynamic writes orders of magnitude less while still
    # collecting the subset's records.
    assert by_policy["Dynamic"].mbytes < by_policy["Full"].mbytes / 1000
    assert by_policy["Dynamic"].records > by_policy["None"].records
    text = render_tracevol(rows)
    assert "MB/s/proc" in text and "smg98" in text


def test_tracevol_cli(capsys):
    from repro.experiments.cli import main

    assert main(["tracevol", "--quick", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "Trace volume" in out
