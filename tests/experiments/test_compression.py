"""The compression-ratio curve, the batching cross-check and the
``trace compact`` CLI — trace volume attacked losslessly."""

import json

import pytest

from repro.experiments.tracevol import (
    render_compression,
    run_tracevol_compression,
    run_tracevol_crosscheck,
)
from repro.vt import ThreadTraceBuffer, TraceFile, load_trace, save_trace


# ------------------------------------------------------- compression curve


def test_compression_curve_fig7a_app_meets_acceptance():
    """The loop-heavy fig7a app (smg98) compresses at least 5x."""
    rows = run_tracevol_compression(apps=["smg98"], n_cpus=2, scale=0.02)
    (row,) = rows
    assert row["lossless"] is True
    assert row["ratio"] >= 5.0
    assert row["analytic_bytes"] == row["raw_records"] * 24
    assert row["compact_bytes"] == row["bytes_per_record"] * row["raw_records"]
    assert row["compact_bytes"] <= row["unsuppressed_bytes"]


def test_compression_curve_umt98_exercises_the_suppressor():
    """umt98's record stream has tandem repeats the batch records miss."""
    (row,) = run_tracevol_compression(apps=["umt98"], n_cpus=4, scale=0.05)
    assert row["lossless"] is True
    assert row["folds"] > 0
    assert row["compact_bytes"] < row["unsuppressed_bytes"]


def test_render_compression_table():
    rows = run_tracevol_compression(apps=["sweep3d"], n_cpus=2, scale=0.02)
    text = render_compression(rows)
    assert "VGVZ compression" in text
    assert "sweep3d" in text
    assert "ratio" in text


# ------------------------------------------------- batched/unbatched model


@pytest.mark.parametrize("batched", [True, False])
def test_crosscheck_matches_model_batched_and_unbatched(batched):
    """The tracer-derived volume matches the analytic model to 4e-6
    whether the executor emits BatchPairRecords or raw enter/leave
    pairs — the 2n-per-batch identity is measured, not assumed."""
    (row,) = run_tracevol_crosscheck(
        apps=["sweep3d"], n_cpus=2, scale=0.02, batched=batched
    )
    assert row["batched"] is batched
    assert row["rel_err"] <= 4e-6
    assert row["expanded_records"] == row["raw_records"]


def test_crosscheck_batched_and_unbatched_agree_exactly():
    runs = [
        run_tracevol_crosscheck(
            apps=["sweep3d"], n_cpus=2, scale=0.02, batched=batched
        )[0]
        for batched in (True, False)
    ]
    assert runs[0]["raw_records"] == runs[1]["raw_records"]
    assert runs[0]["analytic_bytes"] == runs[1]["analytic_bytes"]


# ------------------------------------------------------------------ the CLI


def looping_trace(iterations=300):
    trace = TraceFile("cli app")
    trace.register_function(1, "main")
    buf = ThreadTraceBuffer(0, 0)
    t = 0.0
    for _ in range(iterations):
        buf.enter(1, t)
        buf.leave(1, t + 0.5)
        t += 1.0
    trace.add_buffer(buf)
    return trace


def test_cli_tracevol_compress_experiment(capsys):
    from repro.experiments.cli import main

    assert main(["tracevol-compress", "--quick", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "VGVZ compression" in out and "smg98" in out


def test_cli_trace_compact_roundtrip(tmp_path, capsys):
    from repro.experiments.cli import main

    trace = looping_trace()
    src = tmp_path / "run.vgv"
    save_trace(trace, str(src))

    assert main(["trace", "compact", "compress", str(src), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    (entry,) = doc["files"]
    assert entry["raw_records"] == 600
    assert entry["ratio"] > 5.0
    vgvz = tmp_path / "run.vgvz"
    assert entry["out"] == str(vgvz)
    assert vgvz.stat().st_size == entry["compact_bytes"]

    out_dir = tmp_path / "back"
    rc = main(["trace", "compact", "decompress", str(vgvz),
               "--out-dir", str(out_dir)])
    assert rc == 0
    capsys.readouterr()
    again = load_trace(str(out_dir / "run.vgv"))
    assert [repr(r) for r in again.records_of(0)] == \
        [repr(r) for r in trace.records_of(0)]


def test_cli_trace_compact_stats_reads_both_forms(tmp_path, capsys):
    from repro.experiments.cli import main
    from repro.vt import save_trace_compact

    trace = looping_trace()
    save_trace(trace, str(tmp_path / "a.vgv"))
    save_trace_compact(trace, str(tmp_path / "b.vgvz"))

    assert main(["trace", "compact", "stats", str(tmp_path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert len(doc["files"]) == 2
    for entry in doc["files"]:
        assert entry["raw_records"] == 600
        assert entry["ratio"] > 5.0


def test_cli_trace_compact_error_codes(tmp_path, capsys):
    from repro.experiments.cli import main

    garbage = tmp_path / "bad.vgv"
    garbage.write_text("not a trace\n")
    assert main(["trace", "compact", "stats", str(garbage)]) == 1
    assert "bad.vgv" in capsys.readouterr().err

    empty = tmp_path / "empty"
    empty.mkdir()
    assert main(["trace", "compact", "compress", str(empty)]) == 2


def test_cli_trace_subcommand_compact_and_vgvz(tmp_path, capsys):
    from repro.experiments.cli import trace_main
    from repro.vt import load_trace_compact

    vgvz = tmp_path / "run.vgvz"
    rc = trace_main([
        "--app", "smg98", "--policy", "Full", "--cpus", "2",
        "--scale", "0.02", "--capacity", "256", "--compact",
        "--vgvz", str(vgvz),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "folded=" in captured.out
    assert "wrote VGVZ" in captured.err
    trace = load_trace_compact(str(vgvz))
    assert trace.raw_record_count > 0


def test_figure_output_byte_identical_with_ring_compaction(tmp_path, capsys):
    """Enforced at the CLI: turning the compaction layer on cannot move
    a figure by a byte (NULL-backend discipline)."""
    from repro.experiments.cli import main

    argv = ["fig7a", "--quick", "--scale", "0.02", "--no-cache"]
    assert main(list(argv)) == 0
    plain = capsys.readouterr().out
    assert main(argv + ["--trace", str(tmp_path), "--trace-compact"]) == 0
    compacted = capsys.readouterr().out
    assert plain == compacted
