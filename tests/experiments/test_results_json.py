"""Lossless JSON round-trip of Series / FigureResult (runner transport)."""

import json
import math

import pytest

from repro.experiments import FigureResult, Series


def _sample_figure():
    fig = FigureResult("fig7a", "The execution time", "CPUs", "Time (s)",
                       [1, 2, 4, 8])
    fig.add_series("Full", [1.0, 2.5, 0.1 + 0.2, 12.812345678901234])
    fig.add_series("None", [0.5, None, 1.25, 2.0])
    fig.notes.append("workload scale=0.1")
    fig.notes.append("machine=power3-sp, seed=0")
    return fig


def test_series_round_trip():
    s = Series("Full", [1.0, None, 0.1 + 0.2])
    assert Series.from_json(s.to_json()) == s


def test_figure_round_trip_is_lossless():
    fig = _sample_figure()
    back = FigureResult.from_json(fig.to_json())
    assert back == fig  # dataclass equality covers x, series, notes
    # Floats survive exactly (repr round-trip), not approximately.
    assert back.series[0].values[3] == 12.812345678901234
    assert back.series[0].values[2] == 0.1 + 0.2
    assert back.series[1].values[1] is None
    # The rendered forms are byte-identical too.
    assert back.render() == fig.render()
    assert back.to_csv() == fig.to_csv()


def test_figure_to_json_is_plain_json():
    doc = json.loads(_sample_figure().to_json(indent=2))
    assert doc["figure_id"] == "fig7a"
    assert doc["x"] == [1, 2, 4, 8]
    assert [s["label"] for s in doc["series"]] == ["Full", "None"]


def test_from_dict_revalidates_series_length():
    doc = _sample_figure().to_dict()
    doc["series"][0]["values"] = [1.0]  # wrong length for 4 x-points
    with pytest.raises(ValueError):
        FigureResult.from_dict(doc)


def test_round_trip_handles_extreme_floats():
    fig = FigureResult("f", "t", "x", "y", [1, 2])
    fig.add_series("s", [5e-324, 1.7976931348623157e308])
    back = FigureResult.from_json(fig.to_json())
    assert back.series[0].values == [5e-324, 1.7976931348623157e308]
    assert not any(math.isinf(v) for v in back.series[0].values)
