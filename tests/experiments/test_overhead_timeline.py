"""The overhead-timeline experiment: cumulative sampled overhead must
telescope to the end-of-run snapshot (the PR's acceptance property),
and the figure contract must hold."""

import json

import pytest

from repro.experiments import OverheadTimeline, run_overhead_timeline


@pytest.fixture(scope="module")
def timeline():
    return run_overhead_timeline(
        apps=("sweep3d",), policies=("Full", "Dynamic"),
        n_cpus=4, scale=0.02, seed=3, interval=0.5,
    )


def test_cumulative_curve_matches_end_of_run_snapshot(timeline):
    # The acceptance criterion: windowed samples sum to the snapshot
    # truth to float-addition tolerance, per cell.
    assert timeline.consistency() < 1e-9
    for cell in timeline.cells:
        assert cell["dropped"] == 0
        assert cell["final_overhead"] == pytest.approx(
            cell["snapshot_overhead"], rel=1e-9)


def test_curves_are_monotonically_consistent(timeline):
    assert timeline.monotonic()
    for cell in timeline.cells:
        assert cell["samples"] > 0
        assert cell["final_overhead"] > 0.0
        assert cell["times"] == sorted(cell["times"])
        assert 0.0 < cell["program_time"]


def test_cells_cover_the_requested_grid(timeline):
    assert [(c["app"], c["policy"]) for c in timeline.cells] == \
        [("sweep3d", "Full"), ("sweep3d", "Dynamic")]
    assert all(c["n_cpus"] == 4 for c in timeline.cells)


def test_figure_contract_render_csv_dict(timeline):
    text = timeline.render()
    assert "Instrumentation overhead vs. simulated time" in text
    assert "sweep3d" in text and "Dynamic" in text
    assert "|" in text  # the sparkline timeline column

    csv = timeline.to_csv()
    header, *rows = csv.strip().splitlines()
    assert header == "app,policy,n_cpus,t,cumulative_overhead"
    assert len(rows) == sum(len(c["times"]) for c in timeline.cells)
    app, policy, n_cpus, t, v = rows[0].split(",")
    assert app == "sweep3d" and float(t) >= 0.0 and float(v) >= 0.0

    doc = timeline.to_dict()
    assert json.loads(json.dumps(doc)) == doc
    assert doc["interval"] == 0.5 and len(doc["cells"]) == 2


def test_openmp_app_samples_probe_stats():
    # OmpJob exposes a single `vt` state rather than per-rank
    # `vt_states`; the probe-stats provider must handle both
    # (regression: the sampler crashed at the first tick on umt98).
    fig = run_overhead_timeline(apps=("umt98",), policies=("Full",),
                                n_cpus=2, scale=0.02, seed=3, interval=0.5)
    (cell,) = fig.cells
    assert cell["samples"] > 0
    assert cell["final_overhead"] == pytest.approx(
        cell["snapshot_overhead"], rel=1e-9)


def test_overhead_timeline_is_deterministic():
    a = run_overhead_timeline(apps=("sweep3d",), policies=("Full",),
                              n_cpus=2, scale=0.02, seed=7, interval=0.5)
    b = run_overhead_timeline(apps=("sweep3d",), policies=("Full",),
                              n_cpus=2, scale=0.02, seed=7, interval=0.5)
    assert a.to_dict() == b.to_dict()


def test_empty_timeline_is_well_behaved():
    fig = OverheadTimeline(interval=1.0, scale=1.0, seed=0)
    assert fig.consistency() == 0.0
    assert fig.monotonic()
    assert fig.to_csv().strip() == "app,policy,n_cpus,t,cumulative_overhead"
