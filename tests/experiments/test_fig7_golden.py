"""Figure 7 output is pinned byte-for-byte to the serial seed path.

The engine's queue was rewritten (two-tier buckets, lazy cancellation,
batch draining) under the promise that the observable schedule — and
therefore every figure — would not move by a single byte.  This test
holds that promise with a golden digest: the quick Figure 7a grid,
seeded, run serially with no cache, must hash to the value recorded on
the pre-rewrite engine.

If this fails after an intentional semantic change to the simulation,
re-record the digest (the test prints the new one) and say so loudly in
the commit; if it fails after an engine/scheduler change, the ordering
contract is broken — fix the engine, not the digest.
"""

import hashlib

from repro.experiments.cli import main

#: sha256 of `fig7a --quick --scale 0.02 --json --no-cache` stdout,
#: recorded on the flat-heapq engine before the two-tier rewrite.
GOLDEN_SHA256 = "44cd7f9c5b15bf4f15a06c6e7be8aefe21ab8cd897030f9cf255148e84ba5027"

ARGS = ["fig7a", "--quick", "--scale", "0.02", "--json", "--no-cache"]


def test_fig7a_quick_json_matches_pre_rewrite_digest(capsys):
    assert main(list(ARGS)) == 0
    out = capsys.readouterr().out
    digest = hashlib.sha256(out.encode("utf-8")).hexdigest()
    assert digest == GOLDEN_SHA256, (
        f"fig7a output drifted from the serial seed path: sha256 {digest} "
        f"!= {GOLDEN_SHA256}"
    )


def test_fig7a_quick_json_deterministic_across_runs(capsys):
    assert main(list(ARGS)) == 0
    first = capsys.readouterr().out
    assert main(list(ARGS)) == 0
    second = capsys.readouterr().out
    assert first == second
