"""CLI surface of the time-series telemetry: --obs-sample, '-' output
targets, consistent unwritable-path errors, the chaos --obs document,
and the `obs report` / `obs serve` subcommand."""

import json
import urllib.request

import pytest

from repro.experiments.cli import main
from repro.obs.timeseries import decode_series

SWEEP = ["sweep", "--apps", "sweep3d", "--policies", "Full",
         "--cpus", "2", "--scale", "0.02", "--seed", "3",
         "--no-cache", "--json"]


def _sweep_obs_doc(tmp_path, capsys, *extra):
    path = tmp_path / "obs.json"
    assert main(SWEEP + ["--obs", str(path)] + list(extra)) == 0
    capsys.readouterr()
    return path, json.loads(path.read_text())


# ------------------------------------------------------------- --obs-sample


def test_obs_sample_adds_timeseries_to_the_document(tmp_path, capsys):
    _, plain = _sweep_obs_doc(tmp_path, capsys)
    assert "timeseries" not in plain

    _, sampled = _sweep_obs_doc(tmp_path, capsys, "--obs-sample", "0.5")
    assert len(sampled["timeseries"]) == 1
    (ts,) = sampled["timeseries"].values()
    assert ts["interval"] == 0.5 and ts["samples"] > 0
    # Sampled counter deltas telescope to the merged snapshot.
    _, deltas = decode_series(ts["series"]["counter:vt.records"])
    assert sum(deltas) == sampled["obs"]["counters"]["vt.records"]


def test_obs_sample_leaves_sweep_output_byte_identical(tmp_path, capsys):
    # Same --obs path both times (the JSON document names it in its
    # outputs map); the only variable is the sampler.
    path = str(tmp_path / "o.json")
    assert main(SWEEP + ["--obs", path]) == 0
    baseline = capsys.readouterr().out
    assert main(SWEEP + ["--obs", path, "--obs-sample", "0.5"]) == 0
    assert capsys.readouterr().out == baseline


def test_obs_sample_rejects_nonpositive_values(tmp_path):
    with pytest.raises(SystemExit):
        main(SWEEP + ["--obs", str(tmp_path / "o.json"),
                      "--obs-sample", "0"])
    with pytest.raises(SystemExit):
        main(["chaos", "--app", "sweep3d", "--cpus", "4",
              "--obs", str(tmp_path / "o.json"), "--obs-sample", "-1"])


# ------------------------------------------- '-' targets and error messages


def test_obs_dash_streams_document_to_stdout(capsys):
    assert main(SWEEP[:-1] + ["--obs", "-"]) == 0  # drop --json: text mode
    out, err = capsys.readouterr()
    # stdout interleaves the sweep table and the obs document; the
    # document is the first decodable JSON object.
    doc, _ = json.JSONDecoder().raw_decode(out, out.index("{"))
    assert "obs" in doc and "telemetry" in doc
    assert "wrote obs metrics" not in err


def test_unwritable_obs_path_fails_with_consistent_message(capsys):
    with pytest.raises(SystemExit) as exc:
        main(SWEEP + ["--obs", "/nonexistent-dir/obs.json"])
    assert exc.value.code == 1
    err = capsys.readouterr().err
    assert "repro-experiments: cannot write obs document " \
        "/nonexistent-dir/obs.json:" in err


def test_unwritable_trace_dir_fails_with_consistent_message(tmp_path, capsys):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file in the way")
    with pytest.raises(SystemExit) as exc:
        main(SWEEP + ["--trace", str(blocker / "sub")])
    assert exc.value.code == 1
    assert "repro-experiments: cannot write trace document" in \
        capsys.readouterr().err


def test_trace_dash_streams_json_lines(capsys):
    assert main(SWEEP + ["--trace", "-"]) == 0
    out = capsys.readouterr().out
    line = next(l for l in out.splitlines() if l.startswith("{\"label\""))
    doc = json.loads(line)
    assert "trace" in doc and doc["label"]


# ------------------------------------------------------------------- chaos


def test_chaos_obs_document_carries_point_and_series(tmp_path, capsys):
    path = tmp_path / "chaos-obs.json"
    assert main(["chaos", "--app", "sweep3d", "--cpus", "4",
                 "--scale", "0.01", "--obs", str(path),
                 "--obs-sample", "0.5"]) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["point"]["app"] == "sweep3d"
    assert doc["obs"]["counters"]
    (label, ts), = doc["timeseries"].items()
    assert ts["samples"] > 0


# -------------------------------------------------------------- obs report


@pytest.fixture()
def obs_doc(tmp_path, capsys):
    return _sweep_obs_doc(tmp_path, capsys, "--obs-sample", "0.5")


def test_obs_report_text(obs_doc, capsys):
    path, _ = obs_doc
    assert main(["obs", "report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "simulator metrics (repro.obs)" in out
    assert "sampled time series" in out
    assert "instrumentation overhead" in out


def test_obs_report_csv(obs_doc, capsys):
    path, _ = obs_doc
    assert main(["obs", "report", str(path), "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0] == "label,series,kind,t,value"
    assert ",counter:vt.records,delta," in out


def test_obs_report_prom(obs_doc, capsys):
    path, doc = obs_doc
    assert main(["obs", "report", str(path), "--prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_vt_records_total counter" in out
    assert f"repro_vt_records_total " \
        f"{doc['obs']['counters']['vt.records']}" in out


def test_obs_report_json_decodes_series(obs_doc, capsys):
    path, raw = obs_doc
    assert main(["obs", "report", str(path), "--json"]) == 0
    decoded = json.loads(capsys.readouterr().out)
    (ts,) = decoded["timeseries"].values()
    series = ts["series"]["counter:vt.records"]
    assert isinstance(series["t"], list) and isinstance(series["v"], list)
    assert sum(series["v"]) == raw["obs"]["counters"]["vt.records"]


def test_obs_report_reads_stdin_dash(obs_doc, capsys, monkeypatch):
    import io

    path, _ = obs_doc
    monkeypatch.setattr("sys.stdin", io.StringIO(path.read_text()))
    assert main(["obs", "report", "-"]) == 0
    assert "simulator metrics" in capsys.readouterr().out


def test_obs_report_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit):
        main(["obs", "report", str(bad)])
    assert "not valid JSON" in capsys.readouterr().err

    nodoc = tmp_path / "nodoc.json"
    nodoc.write_text("{\"hello\": 1}")
    with pytest.raises(SystemExit):
        main(["obs", "report", str(nodoc)])
    assert "no 'obs' snapshot" in capsys.readouterr().err

    with pytest.raises(SystemExit):
        main(["obs", "report", str(tmp_path / "missing.json")])
    assert "cannot read obs document" in capsys.readouterr().err


# --------------------------------------------------------------- obs serve


def test_obs_serve_exposes_metrics_stats_healthz(obs_doc):
    from tests.obs.test_prom import parse_exposition

    from repro.experiments.obscmd import serve_obs_document

    path, doc = obs_doc
    server = serve_obs_document(doc, port=0)
    try:
        base = f"http://127.0.0.1:{server.port}"
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            fams = parse_exposition(resp.read().decode("utf-8"))
        assert fams["repro_vt_records_total"][1]["repro_vt_records_total"] \
            == doc["obs"]["counters"]["vt.records"]
        with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
            stats = json.loads(resp.read())
        assert stats["labels"] == sorted(doc["timeseries"])
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as resp:
            assert resp.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(f"{base}/nope", timeout=10)
    finally:
        server.shutdown()
        server.server_close()
