"""Tests for the repro.svc service layer."""
