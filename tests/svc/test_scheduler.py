"""SweepScheduler: fairness, cross-tenant sharing, deadlines, telemetry.

No pytest-asyncio here: each test drives its own loop with
``asyncio.run`` so the suite has zero plugin dependencies.
"""

import asyncio

import pytest

from repro.runner import SweepPoint
from repro.svc import MemoryBackend, SerialBackend, SweepScheduler


def echo(i):
    return SweepPoint.selftest("echo", value=i)


def napping(i, seconds):
    return SweepPoint.selftest("sleep", seconds=seconds, tag=i)


# --------------------------------------------------------------- fairness


def test_round_robin_interleaves_tenants():
    async def scenario():
        async with SweepScheduler(SerialBackend(), workers=1) as sched:
            # Both queues are full before the dispatcher first runs, so
            # the dispatch order is strict round-robin.
            sub_a = await sched.submit("alice", [echo(i) for i in range(4)])
            sub_b = await sched.submit("bob", [echo(100 + i) for i in range(4)])
            await sub_a.wait()
            await sub_b.wait()
            return list(sched.dispatch_log), sub_a, sub_b

    log, sub_a, sub_b = asyncio.run(scenario())
    assert [tenant for tenant, _ in log] == [
        "alice", "bob", "alice", "bob", "alice", "bob", "alice", "bob",
    ]
    assert sub_a.ok and sub_b.ok
    assert [r.payload["echo"] for r in (sub_a.results[p] for p in sub_a.points)] \
        == [0, 1, 2, 3]


def test_many_point_tenant_cannot_starve_small_one():
    async def scenario():
        async with SweepScheduler(SerialBackend(), workers=1) as sched:
            big = await sched.submit("big", [echo(i) for i in range(12)])
            small = await sched.submit("small", [echo(100), echo(101)])
            await small.wait()
            done_when_small_finished = len(big.results)
            await big.wait()
            return done_when_small_finished

    big_done = asyncio.run(scenario())
    # Fair interleaving: the 2-point tenant finished after at most a
    # handful of the 12-point tenant's points, not after all of them.
    assert big_done <= 4


# ------------------------------------------------- cross-tenant cache hits


def test_concurrent_tenants_observe_each_others_hits():
    """The subsystem acceptance test: two concurrent submissions sharing
    one cache each hit results the *other* tenant computed."""

    async def scenario():
        cache = MemoryBackend()
        async with SweepScheduler(SerialBackend(), cache=cache,
                                  workers=1) as sched:
            p1, p2 = echo(1), echo(2)
            # Same two points, opposite order: round-robin dispatch is
            # alice:p1, bob:p2, alice:p2, bob:p1 — so each tenant's
            # second point was computed by the other tenant.
            sub_a = await sched.submit("alice", [p1, p2])
            sub_b = await sched.submit("bob", [p2, p1])
            await sub_a.wait()
            await sub_b.wait()
            return sched.stats(), sub_a, sub_b

    stats, sub_a, sub_b = asyncio.run(scenario())
    assert sub_a.ok and sub_b.ok
    alice, bob = stats["tenants"]["alice"], stats["tenants"]["bob"]
    assert alice["hits"] == 1 and alice["misses"] == 1
    assert bob["hits"] == 1 and bob["misses"] == 1
    assert alice["hit_rate"] == 0.5 and bob["hit_rate"] == 0.5
    assert stats["cache_hits"] == 2 and stats["cache_misses"] == 2
    # Payloads agree regardless of who computed them.
    assert sub_a.payloads()[0] == sub_b.payloads()[1]
    assert sub_a.payloads()[1] == sub_b.payloads()[0]


def test_inflight_dedup_joins_running_execution():
    async def scenario():
        cache = MemoryBackend()
        async with SweepScheduler(SerialBackend(), cache=cache,
                                  workers=2) as sched:
            slow = napping(0, seconds=0.5)
            sub_a = await sched.submit("alice", [slow])
            # Let alice's execution get in flight before bob asks for
            # the same point.
            await asyncio.sleep(0.15)
            sub_b = await sched.submit("bob", [slow])
            await sub_a.wait()
            await sub_b.wait()
            return sched.stats(), sub_a, sub_b

    stats, sub_a, sub_b = asyncio.run(scenario())
    assert sub_a.ok and sub_b.ok
    # Computed once; bob joined the in-flight execution as a hit.
    assert stats["inflight_joins"] == 1
    assert stats["tenants"]["bob"]["hits"] == 1
    assert stats["tenants"]["alice"]["misses"] == 1
    assert stats["cache_misses"] == 1


# --------------------------------------------------------------- deadlines


def test_submission_deadline_times_out_undispatched_points():
    async def scenario():
        async with SweepScheduler(SerialBackend(), workers=1) as sched:
            slow = napping(0, seconds=0.6)
            quick = echo(1)
            sub = await sched.submit("t", [slow, quick], timeout=0.2)
            results = await sub.wait()
            return sched.stats(), sub, results

    stats, sub, results = asyncio.run(scenario())
    slow_result = results[sub.points[0]]
    quick_result = results[sub.points[1]]
    # The in-flight point still completed; the queued one timed out.
    assert slow_result.status == "ok"
    assert quick_result.status == "timeout"
    assert "deadline" in quick_result.error
    assert stats["tenants"]["t"]["timeouts"] == 1
    assert not sub.ok


# --------------------------------------------------------------- plumbing


def test_empty_submission_completes_immediately():
    async def scenario():
        async with SweepScheduler(SerialBackend()) as sched:
            sub = await sched.submit("t", [])
            return await asyncio.wait_for(sub.wait(), timeout=1.0), sub.ok

    results, ok = asyncio.run(scenario())
    assert results == {} and ok


def test_duplicate_points_execute_once_but_align_payloads():
    async def scenario():
        async with SweepScheduler(SerialBackend()) as sched:
            p = echo(7)
            sub = await sched.submit("t", [p, p, p])
            await sub.wait()
            return sub, list(sched.dispatch_log)

    sub, log = asyncio.run(scenario())
    assert len(log) == 1                       # executed once
    assert len(sub.payloads()) == 3            # reported three times
    assert all(pl["echo"] == 7 for pl in sub.payloads())


def test_error_points_reported_not_raised():
    async def scenario():
        async with SweepScheduler(SerialBackend()) as sched:
            sub = await sched.submit("t", [SweepPoint.selftest("raise")])
            results = await sub.wait()
            return list(results.values())[0]

    result = asyncio.run(scenario())
    assert result.status == "error"
    assert "deliberate failure" in result.error


def test_submit_rejects_bad_input():
    async def scenario():
        sched = SweepScheduler(SerialBackend())
        with pytest.raises(ValueError):
            await sched.submit("", [echo(1)])
        await sched.close()
        with pytest.raises(RuntimeError):
            await sched.submit("t", [echo(1)])

    asyncio.run(scenario())


def test_stats_and_queue_depth_telemetry():
    async def scenario():
        async with SweepScheduler(SerialBackend(), workers=1) as sched:
            sub = await sched.submit("t", [echo(i) for i in range(5)])
            await sub.wait()
            return sched.stats()

    stats = asyncio.run(scenario())
    assert stats["submissions"] == 1
    t = stats["tenants"]["t"]
    assert t["points"] == 5
    assert t["queue_depth_hwm"] == 5
    assert t["latency"]["count"] == 5
    assert t["latency"]["total"] >= 0.0
