"""CLI acceptance: `repro sweep` output is byte-identical across every
cache backend and every executor backend.

The sweep simulations are pure functions of their configuration, so the
service layer must be invisible in the output: same grid, same seed →
the same stdout bytes whether points ran serially, in a process pool,
or on a socket worker, and whether results passed through a directory,
memory, SQLite or HTTP cache.
"""

import socket
import threading

import pytest

from repro.experiments.cli import main
from repro.svc import serve_cache
from repro.svc.worker import run_worker

GRID = ["sweep", "--apps", "sweep3d", "--policies", "Full",
        "--cpus", "2,4", "--scale", "0.02", "--seed", "3", "--json"]


def run_cli(capsys, *extra):
    assert main(GRID + list(extra)) == 0
    return capsys.readouterr().out


def free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# --------------------------------------------------------- cache backends


def test_sweep_bytes_identical_across_cache_backends(tmp_path, capsys):
    daemon = serve_cache(port=0)
    daemon.serve_in_thread()
    http_spec = f"http://127.0.0.1:{daemon.server_address[1]}"
    try:
        outputs = {
            "directory": run_cli(
                capsys, "--cache-backend", f"dir:{tmp_path / 'dcache'}"),
            "memory": run_cli(capsys, "--cache-backend", "memory"),
            "sqlite": run_cli(
                capsys, "--cache-backend", f"sqlite:{tmp_path / 'cache.db'}"),
            "http": run_cli(
                capsys, "--cache-backend", http_spec,
                "--cache-dir", str(tmp_path / "http-fallback")),
            "none": run_cli(capsys, "--no-cache"),
        }
    finally:
        daemon.shutdown()
        daemon.server_close()
    baseline = outputs.pop("directory")
    assert baseline  # non-empty JSON document
    for name, out in outputs.items():
        assert out == baseline, f"{name} backend output diverged"


def test_sweep_cache_backend_rerun_fully_hits(tmp_path, capsys):
    import json

    spec = f"sqlite:{tmp_path / 'cache.db'}"
    first = json.loads(run_cli(capsys, "--cache-backend", spec))
    second = json.loads(run_cli(capsys, "--cache-backend", spec))
    assert first["telemetry"]["hit_rate"] == 0.0
    assert second["telemetry"]["hit_rate"] == 1.0
    assert [r["payload"] for r in second["sweep"]] == \
        [r["payload"] for r in first["sweep"]]


# ------------------------------------------------------ executor backends


def test_sweep_bytes_identical_across_executor_backends(capsys):
    port = free_port()
    worker = threading.Thread(
        target=run_worker,
        args=("127.0.0.1", port),
        kwargs={"max_points": 2, "reconnect": True},
        daemon=True,
    )
    worker.start()
    outputs = {
        "serial": run_cli(capsys, "--no-cache", "--backend", "serial"),
        "process": run_cli(capsys, "--no-cache", "--backend", "process:2",
                           "--jobs", "2"),
        "socket": run_cli(capsys, "--no-cache",
                          "--backend", f"socket:127.0.0.1:{port}"),
    }
    worker.join(timeout=15)
    assert not worker.is_alive()
    baseline = outputs.pop("serial")
    for name, out in outputs.items():
        assert out == baseline, f"{name} executor output diverged"


def test_sweep_socket_backend_announces_address(capsys):
    port = free_port()
    worker = threading.Thread(
        target=run_worker,
        args=("127.0.0.1", port),
        kwargs={"max_points": 2, "reconnect": True},
        daemon=True,
    )
    worker.start()
    assert main(GRID + ["--no-cache",
                        "--backend", f"socket:127.0.0.1:{port}"]) == 0
    captured = capsys.readouterr()
    worker.join(timeout=15)
    assert f"127.0.0.1:{port}" in captured.err
    assert "worker --connect" in captured.err


def test_unknown_backend_spec_is_an_error(capsys):
    with pytest.raises(SystemExit):
        main(GRID + ["--backend", "carrier-pigeon"])


# ------------------------------------------------------- sampled telemetry


def test_obs_sample_documents_identical_across_executor_backends(
        tmp_path, capsys):
    """The sampler rides the envelope, so the sampled series — like the
    payloads — must be bit-identical whether points ran in-process, in
    a pool, or on a socket worker."""
    import json

    port = free_port()
    worker = threading.Thread(
        target=run_worker,
        args=("127.0.0.1", port),
        kwargs={"max_points": 2, "reconnect": True},
        daemon=True,
    )
    worker.start()
    docs = {}
    for name, spec in (("serial", "serial"), ("process", "process:2"),
                       ("socket", f"socket:127.0.0.1:{port}")):
        path = tmp_path / f"{name}.json"
        run_cli(capsys, "--no-cache", "--backend", spec,
                "--obs", str(path), "--obs-sample", "0.5")
        docs[name] = json.loads(path.read_text())
    worker.join(timeout=15)
    assert not worker.is_alive()
    baseline = docs.pop("serial")
    assert baseline["timeseries"]  # the sampler actually sampled
    for name, doc in docs.items():
        assert doc == baseline, f"{name} obs document diverged"
