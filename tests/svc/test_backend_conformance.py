"""One conformance suite, four cache backends.

Every :class:`CacheBackend` must behave identically from the runner's
point of view: round-trip entries, treat corruption as a counted miss
(never a wrong result), survive concurrent writers, evict LRU-first,
and clear.  The suite runs against directory, memory, SQLite and HTTP
(a live in-thread daemon) through one parametrized rig.
"""

import hashlib
import json
import threading
import time

import pytest

from repro.runner import ResultCache, SweepPoint, point_key
from repro.svc import (
    CacheBackend,
    DirectoryBackend,
    HttpBackend,
    MemoryBackend,
    SqliteBackend,
    make_cache_backend,
    serve_cache,
)
from repro.svc.backends import build_entry, validate_entry

BACKENDS = ["directory", "memory", "sqlite", "http"]


def key_for(i):
    return hashlib.sha256(f"conformance-{i}".encode()).hexdigest()


class Rig:
    """A backend plus the backend-specific knobs the suite needs."""

    def __init__(self, backend, corrupt, corrupt_count, teardown=None,
                 strict_discard=True):
        self.backend = backend
        self.corrupt = corrupt            # damage the stored entry for a key
        self.corrupt_count = corrupt_count  # corrupt discards observed so far
        self.teardown = teardown
        #: HTTP DELETE is idempotent-204, so discard() of a missing key
        #: still reports True there; every local backend reports False.
        self.strict_discard = strict_discard


@pytest.fixture(params=BACKENDS)
def rig(request, tmp_path):
    if request.param == "directory":
        backend = DirectoryBackend(tmp_path / "dcache")
        r = Rig(
            backend,
            corrupt=lambda key: backend._path(key).write_text(
                "{ not json !!", encoding="utf-8"),
            corrupt_count=lambda: backend.corrupt_discards,
        )
    elif request.param == "memory":
        backend = MemoryBackend()
        r = Rig(
            backend,
            corrupt=lambda key: backend._entries.__setitem__(
                key, (2, {"bogus": True})),
            corrupt_count=lambda: backend.corrupt_discards,
        )
    elif request.param == "sqlite":
        backend = SqliteBackend(tmp_path / "cache.db")

        def corrupt(key):
            with backend._lock:
                backend._conn.execute(
                    "UPDATE entries SET entry = '{ not json' WHERE key = ?",
                    (key,))
                backend._conn.commit()

        r = Rig(backend, corrupt, lambda: backend.corrupt_discards)
    else:  # http
        store = MemoryBackend()
        daemon = serve_cache(port=0, backend=store)
        daemon.serve_in_thread()
        port = daemon.server_address[1]
        backend = HttpBackend(f"http://127.0.0.1:{port}", fallback=None,
                              write_behind=False)

        def teardown():
            backend.close()
            daemon.shutdown()
            daemon.server_close()

        # Corruption lives server-side: the daemon's store discards and
        # counts it, and the client observes a plain miss.
        r = Rig(
            backend,
            corrupt=lambda key: store._entries.__setitem__(
                key, (2, {"bogus": True})),
            corrupt_count=lambda: store.corrupt_discards,
            teardown=teardown,
            strict_discard=False,
        )
    yield r
    if r.teardown is not None:
        r.teardown()
    else:
        r.backend.close()


def _cell():
    return SweepPoint.policy_cell("smg98", "Full", 4, scale=0.05, seed=3)


# --------------------------------------------------------------- protocol


def test_all_backends_satisfy_protocol(rig):
    assert isinstance(rig.backend, CacheBackend)


def test_plain_result_cache_is_not_a_backend(tmp_path):
    # The protocol demands put_entry/discard/stats/close on top of the
    # historical get/put surface.
    assert not isinstance(ResultCache(tmp_path), CacheBackend)


# --------------------------------------------------------------- round trip


def test_put_get_round_trip(rig):
    point = _cell()
    key = point_key(point)
    assert rig.backend.get(key) is None
    rig.backend.put(key, point, {"time": 1.25, "trace_records": 7})
    entry = rig.backend.get(key)
    assert entry["key"] == key
    assert entry["payload"] == {"time": 1.25, "trace_records": 7}
    assert entry["point"]["app"] == "smg98"
    assert key in rig.backend
    assert len(rig.backend) == 1
    stats = rig.backend.stats()
    assert stats["hits"] >= 1 and stats["misses"] >= 1


def test_put_entry_stores_entry_verbatim(rig):
    key = key_for(0)
    entry = build_entry(key, None, {"answer": 42}, meta={"origin": "test"})
    rig.backend.put_entry(key, entry)
    got = rig.backend.get(key)
    assert got["payload"] == {"answer": 42}
    assert got["meta"] == {"origin": "test"}


def test_put_entry_rejects_malformed(rig):
    with pytest.raises(ValueError):
        rig.backend.put_entry(key_for(1), {"payload": 1})  # wrong key
    with pytest.raises(ValueError):
        rig.backend.put_entry(key_for(1), {"key": key_for(1)})  # no payload


# --------------------------------------------------------------- corruption


def test_corrupt_entry_is_counted_miss_then_recoverable(rig):
    key = key_for(2)
    rig.backend.put_entry(key, build_entry(key, None, {"v": 1}))
    assert rig.backend.get(key)["payload"] == {"v": 1}
    before = rig.corrupt_count()
    rig.corrupt(key)
    assert rig.backend.get(key) is None          # a miss, never garbage
    assert rig.corrupt_count() == before + 1     # ...and it was counted
    # The slot is usable again after the discard.
    rig.backend.put_entry(key, build_entry(key, None, {"v": 2}))
    assert rig.backend.get(key)["payload"] == {"v": 2}


# --------------------------------------------------------------- discard


def test_discard(rig):
    key = key_for(3)
    rig.backend.put_entry(key, build_entry(key, None, {"v": 1}))
    assert rig.backend.discard(key)
    assert rig.backend.get(key) is None
    if rig.strict_discard:
        assert rig.backend.discard(key) is False


# --------------------------------------------------------------- clear


def test_clear(rig):
    for i in range(3):
        k = key_for(10 + i)
        rig.backend.put_entry(k, build_entry(k, None, {"i": i}))
    assert len(rig.backend) == 3
    assert rig.backend.clear() == 3
    assert len(rig.backend) == 0
    assert rig.backend.get(key_for(10)) is None


# --------------------------------------------------------------- concurrency


def test_concurrent_writers_all_entries_survive(rig):
    n_threads, per_thread = 8, 10
    errors = []

    def writer(t):
        try:
            for i in range(per_thread):
                k = key_for(1000 + t * per_thread + i)
                rig.backend.put_entry(
                    k, build_entry(k, None, {"t": t, "i": i}))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,))
               for t in range(n_threads)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    assert not errors
    assert len(rig.backend) == n_threads * per_thread
    for t in range(n_threads):
        k = key_for(1000 + t * per_thread)
        assert rig.backend.get(k)["payload"]["t"] == t


# --------------------------------------------------------------- eviction

BOUNDED = {
    "directory": lambda tmp: DirectoryBackend(tmp / "lru", max_entries=3),
    "memory": lambda tmp: MemoryBackend(max_entries=3),
    "sqlite": lambda tmp: SqliteBackend(tmp / "lru.db", max_entries=3),
}


@pytest.fixture(params=sorted(BOUNDED))
def bounded(request, tmp_path):
    backend = BOUNDED[request.param](tmp_path)
    yield backend
    backend.close()


def test_lru_eviction_order(bounded):
    keys = [key_for(2000 + i) for i in range(4)]
    for i, k in enumerate(keys[:3]):
        bounded.put_entry(k, build_entry(k, None, {"i": i}))
        time.sleep(0.02)  # keep directory mtimes strictly ordered
    assert bounded.get(keys[0]) is not None  # refresh: 0 is now MRU
    time.sleep(0.02)
    bounded.put_entry(keys[3], build_entry(keys[3], None, {"i": 3}))
    # keys[1] was least-recently-used; it alone is gone.
    assert bounded.get(keys[1]) is None
    assert bounded.get(keys[0]) is not None
    assert bounded.get(keys[2]) is not None
    assert bounded.get(keys[3]) is not None
    assert bounded.evictions == 1
    assert len(bounded) == 3


def test_overwrite_does_not_evict(bounded):
    # Re-putting one key never pushes the store over its bound.
    k = key_for(3000)
    for i in range(10):
        bounded.put_entry(k, build_entry(k, None, {"i": i}))
    assert bounded.get(k)["payload"] == {"i": 9}
    assert bounded.evictions == 0


# --------------------------------------------------------------- http extras


def test_http_read_through_populates_fallback(tmp_path):
    store = MemoryBackend()
    daemon = serve_cache(port=0, backend=store)
    daemon.serve_in_thread()
    port = daemon.server_address[1]
    fallback = MemoryBackend()
    client = HttpBackend(f"http://127.0.0.1:{port}", fallback=fallback,
                         write_behind=False)
    try:
        key = key_for(4000)
        store.put_entry(key, build_entry(key, None, {"v": "srv"}))
        assert client.get(key)["payload"] == {"v": "srv"}
        # The server hit was copied into the local fallback.
        assert fallback.get(key)["payload"] == {"v": "srv"}
    finally:
        client.close()
        daemon.shutdown()
        daemon.server_close()


def test_http_degrades_to_fallback_when_daemon_dies(tmp_path):
    store = MemoryBackend()
    daemon = serve_cache(port=0, backend=store)
    daemon.serve_in_thread()
    port = daemon.server_address[1]
    fallback = MemoryBackend()
    client = HttpBackend(f"http://127.0.0.1:{port}", fallback=fallback,
                         write_behind=False, cooldown=60.0)
    key = key_for(4001)
    try:
        client.put_entry(key, build_entry(key, None, {"v": 1}))
        assert client.get(key)["payload"] == {"v": 1}
    finally:
        daemon.shutdown()
        daemon.server_close()
    # Daemon is gone: the client degrades and keeps serving locally.
    assert client.get(key)["payload"] == {"v": 1}
    assert client.degraded_requests >= 1
    client.close()


def test_daemon_rejects_bad_keys_and_bodies():
    import http.client

    daemon = serve_cache(port=0)
    daemon.serve_in_thread()
    host, port = daemon.server_address[:2]
    try:
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/cache/not-a-key")
        assert conn.getresponse().status == 400
        conn.close()

        conn = http.client.HTTPConnection(host, port, timeout=5)
        key = key_for(5000)
        conn.request("PUT", f"/cache/{key}", body=b"{ nope",
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 400
        conn.close()

        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("PUT", f"/cache/{key}",
                     body=json.dumps({"key": "0" * 64, "payload": 1}).encode())
        assert conn.getresponse().status == 400  # key/body mismatch
        conn.close()

        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/healthz")
        assert conn.getresponse().status == 200
        conn.close()
    finally:
        daemon.shutdown()
        daemon.server_close()


# --------------------------------------------------------------- factory


def test_make_cache_backend_specs(tmp_path):
    assert make_cache_backend(None) is None
    assert isinstance(make_cache_backend("memory"), MemoryBackend)
    d = make_cache_backend(f"dir:{tmp_path / 'd'}")
    assert isinstance(d, DirectoryBackend)
    s = make_cache_backend(f"sqlite:{tmp_path / 'c.db'}")
    assert isinstance(s, SqliteBackend)
    s.close()
    bare = make_cache_backend(str(tmp_path / "bare"))
    assert isinstance(bare, DirectoryBackend)
    h = make_cache_backend("http://127.0.0.1:1", fallback_dir=tmp_path / "fb")
    assert isinstance(h, HttpBackend)
    assert isinstance(h.fallback, DirectoryBackend)
    assert h.fallback.root == tmp_path / "fb"
    h.close()
    # An existing backend instance passes through untouched.
    m = MemoryBackend()
    assert make_cache_backend(m) is m


def test_directory_namespaces_do_not_collide(tmp_path):
    a = DirectoryBackend(tmp_path, namespace="alice")
    b = DirectoryBackend(tmp_path, namespace="bob")
    key = key_for(6000)
    a.put_entry(key, build_entry(key, None, {"who": "alice"}))
    assert b.get(key) is None
    b.put_entry(key, build_entry(key, None, {"who": "bob"}))
    assert a.get(key)["payload"] == {"who": "alice"}
    assert b.get(key)["payload"] == {"who": "bob"}
    with pytest.raises(ValueError):
        DirectoryBackend(tmp_path, namespace="../escape")


def test_validate_entry():
    key = key_for(7000)
    assert validate_entry(key, build_entry(key, None, 1))
    assert not validate_entry(key, {"key": key})
    assert not validate_entry(key, {"key": "other", "payload": 1})
    assert not validate_entry(key, "not a dict")
