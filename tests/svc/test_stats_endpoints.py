"""Live telemetry endpoints of the service layer: the cache daemon's
/metrics route and the socket executor's `stats` wire frame."""

import json
import threading
import urllib.request

import pytest

from repro.runner import SweepPoint
from repro.svc import ExecSpec, SocketWorkerBackend, fetch_stats, serve_cache
from repro.svc.worker import run_worker
from repro.svc.wire import WireError

from tests.obs.test_prom import parse_exposition


# --------------------------------------------------------- daemon /metrics


@pytest.fixture()
def daemon():
    d = serve_cache(port=0)
    d.serve_in_thread()
    yield d
    d.shutdown()
    d.server_close()


def _get(daemon, path):
    port = daemon.server_address[1]
    return urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                  timeout=10)


def test_metrics_route_parses_and_counts_requests(daemon):
    key = "0" * 64
    with pytest.raises(urllib.error.HTTPError):
        _get(daemon, f"/cache/{key}")  # miss: 404, but gets += 1

    with _get(daemon, "/metrics") as resp:
        assert resp.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        fams = parse_exposition(resp.read().decode("utf-8"))
    assert fams["repro_cache_gets_total"][0] == "counter"
    assert fams["repro_cache_gets_total"][1]["repro_cache_gets_total"] == 1.0
    assert fams["repro_cache_entries"][1]["repro_cache_entries"] == 0.0


def test_metrics_and_stats_agree(daemon):
    with _get(daemon, "/stats") as resp:
        stats = json.loads(resp.read())
    with _get(daemon, "/metrics") as resp:
        fams = parse_exposition(resp.read().decode("utf-8"))
    assert fams["repro_cache_entries"][1]["repro_cache_entries"] == \
        stats["entries"]
    # Every numeric backend stat surfaces as a gauge.
    for name, value in stats["backend"].items():
        if isinstance(value, (int, float)):
            fam = f"repro_cache_backend_{name}"
            assert fams[fam][1][fam] == float(value)


# ------------------------------------------------------- socket stats frame


def test_stats_frame_reports_served_points():
    backend = SocketWorkerBackend()
    try:
        stats = fetch_stats(backend.host, backend.port)
        # The stats client's own hello counts it among the connected
        # workers for the duration of the request.
        assert stats["queued"] == 0
        assert stats["served"] == 0
        assert stats["stats_requests"] == 1

        points = [SweepPoint.selftest("echo", value=i) for i in range(3)]
        worker = threading.Thread(
            target=run_worker,
            args=(backend.host, backend.port),
            kwargs={"max_points": len(points)},
            daemon=True,
        )
        worker.start()
        outcomes = list(backend.run(points, ExecSpec()))
        worker.join(timeout=15)
        assert len(outcomes) == 3

        stats = fetch_stats(backend.host, backend.port)
        assert stats["served"] == 3
        assert stats["queued"] == 0
        assert stats["stats_requests"] == 2
    finally:
        backend.close()


def test_stats_frame_leaves_point_serving_undisturbed():
    """A monitoring client polling stats must not steal queued points."""
    backend = SocketWorkerBackend()
    try:
        point = SweepPoint.selftest("echo", value="watched")
        box = {}

        def run():
            box["outcome"] = backend.run_point(point, ExecSpec())

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        # Poll stats while the point sits queued with no worker yet.
        for _ in range(3):
            stats = fetch_stats(backend.host, backend.port)
        assert stats["queued"] == 1

        worker = threading.Thread(
            target=run_worker,
            args=(backend.host, backend.port),
            kwargs={"max_points": 1},
            daemon=True,
        )
        worker.start()
        runner.join(timeout=15)
        envelope, attempts = box["outcome"]
        assert envelope["status"] == "ok"
        assert envelope["payload"]["echo"] == "watched"
    finally:
        backend.close()


def test_fetch_stats_wire_error_on_non_server():
    import socket

    # A listener that closes immediately: hello never gets a welcome.
    lsock = socket.socket()
    lsock.bind(("127.0.0.1", 0))
    lsock.listen(1)
    port = lsock.getsockname()[1]

    def accept_and_drop():
        conn, _ = lsock.accept()
        conn.close()

    t = threading.Thread(target=accept_and_drop, daemon=True)
    t.start()
    try:
        with pytest.raises((WireError, OSError)):
            fetch_stats("127.0.0.1", port, connect_timeout=5.0)
    finally:
        lsock.close()
