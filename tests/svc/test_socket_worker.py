"""Wire framing and the socket executor's crash/reconnect semantics.

The crash tests run real ``repro.svc.worker`` subprocesses: the
``selftest`` crash modes call ``os._exit``, which must kill a worker
process, never the test process.
"""

import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.runner import SweepPoint
from repro.runner.retry import RetryPolicy
from repro.svc import ExecSpec, SocketWorkerBackend, run_worker
from repro.svc import wire

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def worker_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_worker(address, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.svc.worker",
         "--connect", address, "--quiet", *extra],
        env=worker_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


# ------------------------------------------------------------------- wire


def test_wire_round_trip_and_eof():
    a, b = socket.socketpair()
    try:
        doc = {"op": "point", "blob": "x" * 100_000, "n": [1, 2.5, None]}
        wire.send_message(a, doc)
        assert wire.recv_message(b) == doc
        a.close()
        assert wire.recv_message(b) is None  # clean EOF at a boundary
    finally:
        b.close()


def test_wire_mid_frame_cut_raises():
    a, b = socket.socketpair()
    try:
        # A length header promising more bytes than ever arrive.
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(wire.WireError):
            wire.recv_message(b)
    finally:
        b.close()


def test_wire_rejects_oversized_frame():
    a, b = socket.socketpair()
    try:
        a.sendall((wire.MAX_FRAME + 1).to_bytes(4, "big"))
        with pytest.raises(wire.WireError):
            wire.recv_message(b)
    finally:
        a.close()
        b.close()


# ------------------------------------------------------------- happy path


def test_in_thread_worker_executes_batch():
    backend = SocketWorkerBackend()
    try:
        points = [SweepPoint.selftest("echo", value=i) for i in range(4)]
        thread = threading.Thread(
            target=run_worker,
            args=(backend.host, backend.port),
            kwargs={"max_points": len(points)},
            daemon=True,
        )
        thread.start()
        outcomes = list(backend.run(points, ExecSpec()))
        thread.join(timeout=10)
        assert len(outcomes) == 4
        by_point = {p: env for p, env, _ in outcomes}
        for i, p in enumerate(points):
            assert by_point[p]["status"] == "ok"
            assert by_point[p]["payload"]["echo"] == i
        assert all(attempts == 1 for _, _, attempts in outcomes)
    finally:
        backend.close()


def test_worker_subprocess_executes_points(tmp_path):
    backend = SocketWorkerBackend()
    proc = spawn_worker(backend.address, "--max-points", "2")
    try:
        assert backend.wait_for_workers(1, timeout=15) >= 1
        points = [SweepPoint.selftest("echo", value=i) for i in range(2)]
        outcomes = list(backend.run(points, ExecSpec()))
        assert all(env["status"] == "ok" for _, env, _ in outcomes)
        assert proc.wait(timeout=15) == 0
    finally:
        proc.kill()
        backend.close()


# ---------------------------------------------------------- crash recovery


def test_worker_crash_requeues_point_to_surviving_worker(tmp_path):
    """A worker dying mid-point costs one retry, never a lost result."""
    backend = SocketWorkerBackend()
    procs = []
    try:
        marker = tmp_path / "crashed-once"
        point = SweepPoint.selftest("crash_once", marker=str(marker))
        spec = ExecSpec(retry=RetryPolicy(max_attempts=2, backoff=0.01))

        box = {}

        def run():
            box["outcome"] = backend.run_point(point, spec)

        runner = threading.Thread(target=run, daemon=True)
        runner.start()

        # First worker pulls the point and dies (os._exit); the server
        # requeues it; the second worker completes the retry.
        procs.append(spawn_worker(backend.address))
        procs.append(spawn_worker(backend.address))
        runner.join(timeout=30)
        assert "outcome" in box, "point never completed after worker crash"
        envelope, attempts = box["outcome"]
        assert envelope["status"] == "ok"
        assert envelope["payload"]["retried"] is True
        assert attempts == 2
        assert marker.exists()
    finally:
        backend.close()
        for proc in procs:
            proc.kill()


def test_crash_exhausts_retry_budget_to_crashed_envelope(tmp_path):
    backend = SocketWorkerBackend()
    procs = []
    try:
        # Crashes on *every* attempt; budget of 2 means two dead workers
        # and then a terminal "crashed" envelope.
        point = SweepPoint.selftest("crash")
        spec = ExecSpec(retry=RetryPolicy(max_attempts=2, backoff=0.01))

        box = {}

        def run():
            box["outcome"] = backend.run_point(point, spec)

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        for _ in range(3):
            procs.append(spawn_worker(backend.address))
        runner.join(timeout=30)
        assert "outcome" in box
        envelope, attempts = box["outcome"]
        assert envelope["status"] == "crashed"
        assert attempts == 2
        assert "worker process died" in envelope["error"]
    finally:
        backend.close()
        for proc in procs:
            proc.kill()


# ------------------------------------------------------------- reconnect


def test_reconnecting_worker_dials_until_server_appears():
    # Reserve a port, release it, and point a --reconnect worker at it
    # *before* the server exists: the worker must keep dialing.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    proc = spawn_worker(f"127.0.0.1:{port}", "--reconnect",
                        "--max-points", "1")
    backend = None
    try:
        time.sleep(0.3)  # worker is now in its redial loop
        backend = SocketWorkerBackend("127.0.0.1", port)
        point = SweepPoint.selftest("echo", value="late-server")
        envelope, attempts = backend.run_point(
            point, ExecSpec(retry=RetryPolicy(max_attempts=2)))
        assert envelope["status"] == "ok"
        assert envelope["payload"]["echo"] == "late-server"
        assert proc.wait(timeout=15) == 0  # max-points reached, clean exit
    finally:
        proc.kill()
        if backend is not None:
            backend.close()


def test_close_sends_shutdown_to_idle_worker():
    backend = SocketWorkerBackend()
    proc = spawn_worker(backend.address)
    try:
        assert backend.wait_for_workers(1, timeout=15) >= 1
        backend.close()
        # The idle worker's next pull gets a shutdown and it exits 0.
        assert proc.wait(timeout=15) == 0
    finally:
        proc.kill()
