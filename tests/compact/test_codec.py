"""Round-trip, framing and statistics tests for the VGVZ codec."""

import hashlib
import io

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compact import (
    CompactReader,
    CompactWriter,
    compress_trace,
    compress_trace_bytes,
    decompress_trace,
    expand_batch_pairs,
    measure_compact_bytes,
    record_key,
)
from repro.compact.varint import float_to_bits
from repro.vt import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
    ThreadTraceBuffer,
    TraceFile,
)


def build_trace():
    """A small trace touching every record type and two buffers."""
    trace = TraceFile("vgvz test app", record_bytes=24)
    trace.register_function(1, "main")
    trace.register_function(2, "solve me")
    b0 = ThreadTraceBuffer(0, 0)
    b0.enter(1, 0.0)
    b0.enter(2, 0.5)
    b0.leave(2, 1.5)
    b0.batch_pair(2, 100, 2.0, 1e-6, 5e-7)
    b0.message("send", 1, 7, 2048, 3.0)
    b0.collective("MPI_Allreduce", 4, 3.5, 3.6)
    b0.marker("suspended", 4.0, 5.0)
    b0.leave(1, 6.0)
    trace.add_buffer(b0)
    b1 = ThreadTraceBuffer(1, 2)
    b1.enter(1, 0.25)
    b1.message("recv", 0, 7, 2048, 0.5)
    b1.leave(1, 0.75)
    trace.add_buffer(b1)
    return trace


def records_equal(x, y):
    if type(x) is not type(y):
        return False
    for slot in x.__slots__:
        a, b = getattr(x, slot), getattr(y, slot)
        if isinstance(a, float):
            if float_to_bits(a) != float_to_bits(b):
                return False
        elif a != b:
            return False
    return True


def assert_same_traces(a, b):
    assert a.app_name == b.app_name
    assert a.record_bytes == b.record_bytes
    assert a.func_names == b.func_names
    assert sorted(a.buffers) == sorted(b.buffers)
    for key, buf in a.buffers.items():
        other = b.buffers[key]
        assert len(buf.records) == len(other.records)
        assert buf.raw_record_count == other.raw_record_count
        for x, y in zip(buf.records, other.records):
            assert records_equal(x, y), (x, y)


def test_roundtrip_every_record_type():
    trace = build_trace()
    data, stats = compress_trace_bytes(trace)
    assert_same_traces(trace, decompress_trace(data))
    assert stats.record_objects == 11
    assert stats.raw_records == trace.raw_record_count
    assert stats.model_bytes == trace.size_bytes
    assert stats.compact_bytes == len(data)


def test_compression_is_deterministic():
    trace = build_trace()
    first, _ = compress_trace_bytes(trace)
    second, _ = compress_trace_bytes(trace)
    assert first == second


def test_loop_heavy_stream_folds_and_shrinks():
    trace = TraceFile("loops")
    trace.register_function(1, "kernel")
    buf = ThreadTraceBuffer(0, 0)
    # Constant stride (leave is the period midpoint) — the shape a real
    # timestep loop approaches, and where the second-order delta codec
    # reaches its O(1)-bytes-per-iteration floor.
    t = 0.0
    for _ in range(5000):
        buf.enter(1, t)
        buf.leave(1, t + 0.5)
        t += 1.0
    trace.add_buffer(buf)
    data, stats = compress_trace_bytes(trace)
    assert stats.folds >= 1
    assert stats.folded_objects > 9000
    assert stats.bytes_per_record < 2.0  # the model charges 24
    assert stats.ratio > 12.0
    assert_same_traces(trace, decompress_trace(data))


def test_suppress_off_is_still_lossless_but_larger():
    trace = TraceFile("loops")
    trace.register_function(1, "kernel")
    buf = ThreadTraceBuffer(0, 0)
    for k in range(500):
        buf.enter(1, float(k))
        buf.leave(1, k + 0.5)
    trace.add_buffer(buf)
    on, stats_on = compress_trace_bytes(trace)
    off, stats_off = compress_trace_bytes(trace, suppress=False)
    assert stats_off.folds == 0
    assert len(off) > len(on)
    assert_same_traces(trace, decompress_trace(off))


def test_zero_duration_spans_roundtrip():
    trace = TraceFile("instant")
    trace.register_function(1, "f")
    buf = ThreadTraceBuffer(0, 0)
    for _ in range(10):
        buf.enter(1, 2.5)
        buf.leave(1, 2.5)  # zero-duration, zero-period: all equal stamps
    buf.marker("point", 3.0)  # t_end defaults to t_start
    trace.add_buffer(buf)
    data, _stats = compress_trace_bytes(trace)
    assert_same_traces(trace, decompress_trace(data))


def test_strict_time_rejects_out_of_order_records():
    fh = io.BytesIO()
    writer = CompactWriter(fh, strict_time=True)
    writer.begin_buffer(0, 0)
    writer.write(EnterRecord(1, 5.0))
    with pytest.raises(ValueError, match="out-of-order"):
        writer.write(EnterRecord(1, 4.0))


def test_default_mode_tolerates_out_of_order_records():
    trace = TraceFile("markers")
    buf = ThreadTraceBuffer(0, 0)
    buf.enter(1, 5.0)
    buf.leave(1, 6.0)
    buf.marker("suspended", 0.5, 1.0)  # finalisation appends out of order
    trace.add_buffer(buf)
    data, _stats = compress_trace_bytes(trace)
    assert_same_traces(trace, decompress_trace(data))


def test_writer_protocol_misuse_raises():
    writer = CompactWriter(io.BytesIO())
    with pytest.raises(ValueError, match="outside a buffer"):
        writer.write(EnterRecord(1, 0.0))
    with pytest.raises(ValueError, match="without an open buffer"):
        writer.end_buffer()
    writer.begin_buffer(0, 0)
    with pytest.raises(ValueError, match="inside an open buffer"):
        writer.begin_buffer(0, 1)


def test_reader_rejects_bad_magic_and_version():
    with pytest.raises(ValueError, match="not a VGVZ"):
        CompactReader(b"NOPE\x01rest")
    good, _ = compress_trace_bytes(build_trace())
    with pytest.raises(ValueError, match="version"):
        CompactReader(good[:4] + bytes([99]) + good[5:])


def test_reader_rejects_truncation():
    data, _ = compress_trace_bytes(build_trace())
    # Cutting the stream loses the END trailer (or corrupts its counts).
    with pytest.raises(ValueError):
        decompress_trace(data[: len(data) // 2])


def test_trailer_count_mismatch_detected():
    data, stats = compress_trace_bytes(build_trace())
    # The trailer is END + uvarint(objects) + uvarint(raw): bump the
    # object count byte and the decode must refuse.
    trailer_at = data.rindex(b"\x00", 0, len(data))
    corrupt = bytearray(data)
    corrupt[trailer_at + 1] ^= 0x01
    with pytest.raises(ValueError, match="trailer"):
        decompress_trace(bytes(corrupt))


def test_record_key_distinguishes_structures():
    assert record_key(EnterRecord(1, 0.0)) == record_key(EnterRecord(1, 9.9))
    assert record_key(EnterRecord(1, 0.0)) != record_key(LeaveRecord(1, 0.0))
    assert record_key(BatchPairRecord(1, 5, 0, 1, 1)) != \
        record_key(BatchPairRecord(1, 6, 0, 1, 1))


def test_expand_batch_pairs_yields_2n_pairs():
    batch = BatchPairRecord(3, 4, 10.0, 2.0, 0.5)
    out = list(expand_batch_pairs([EnterRecord(1, 0.0), batch]))
    assert len(out) == 1 + 8
    enters = [r for r in out[1:] if isinstance(r, EnterRecord)]
    leaves = [r for r in out[1:] if isinstance(r, LeaveRecord)]
    assert [r.t for r in enters] == [10.0, 12.0, 14.0, 16.0]
    assert [r.t for r in leaves] == [10.5, 12.5, 14.5, 16.5]


def test_measure_compact_bytes_excludes_file_overhead():
    records = []
    for k in range(100):
        records.append(EnterRecord(1, float(k)))
        records.append(LeaveRecord(1, k + 0.5))
    size = measure_compact_bytes(records)
    assert 0 < size < 200 * 24  # far below the analytic model
    assert measure_compact_bytes([]) < 16  # just buffer framing + trailer


def test_iter_records_is_streaming_and_tagged():
    trace = build_trace()
    data, _ = compress_trace_bytes(trace)
    seen = list(CompactReader(data).iter_records())
    assert {(p, t) for p, t, _r in seen} == {(0, 0), (1, 2)}
    assert sum(1 for _p, _t, _r in seen) == 11


GOLDEN_SHA256 = "9da77b29778e13b1bf694b4e1af1853036652725a76e0b4112eb28fdbe0944d9"


def test_golden_compressed_digest():
    """The byte stream for a fixed input is pinned.

    Any codec change that alters the format (opcode layout, interning,
    delta framing, suppression behaviour) must consciously update this
    digest — silent format drift would break archived traces.
    """
    data, stats = compress_trace_bytes(build_trace())
    assert hashlib.sha256(data).hexdigest() == GOLDEN_SHA256
    assert stats.raw_records == 210  # 10 singles + 2x100 batch


# -- property: arbitrary interleaved streams round-trip -----------------------


finite_ts = st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e9, max_value=1e9)
any_float = st.floats(allow_nan=True, allow_infinity=True)
fids = st.integers(min_value=0, max_value=50)

record_strategy = st.one_of(
    st.builds(EnterRecord, fids, any_float),
    st.builds(LeaveRecord, fids, any_float),
    st.builds(BatchPairRecord, fids, st.integers(min_value=0, max_value=30),
              finite_ts, finite_ts, finite_ts),
    st.builds(MsgRecord, st.sampled_from(["send", "recv"]),
              st.integers(min_value=-4, max_value=64),
              st.integers(min_value=-1, max_value=999),
              st.integers(min_value=0, max_value=2**32), any_float),
    st.builds(CollectiveRecord, st.sampled_from(["MPI_Barrier", "MPI_Bcast"]),
              st.integers(min_value=1, max_value=512), finite_ts, finite_ts),
    st.builds(MarkerRecord, st.sampled_from(["suspended", "flush", ""]),
              any_float, any_float),
)


@given(
    streams=st.lists(
        st.lists(record_strategy, max_size=40), min_size=1, max_size=3
    )
)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property_arbitrary_streams(streams):
    trace = TraceFile("prop", record_bytes=24)
    trace.register_function(1, "f")
    for process, records in enumerate(streams):
        buf = ThreadTraceBuffer(process, 0)
        for rec in records:
            buf.records.append(rec)
            buf._raw_count += rec.record_count()
        trace.add_buffer(buf)
    data, stats = compress_trace_bytes(trace)
    again = decompress_trace(data)
    assert stats.raw_records == trace.raw_record_count
    # Empty buffers vanish (no records to reconstruct them from); every
    # surviving record must match bit for bit, in order.
    for (process, thread), buf in trace.buffers.items():
        if not buf.records:
            assert (process, thread) not in again.buffers
            continue
        other = again.buffers[(process, thread)]
        assert len(other.records) == len(buf.records)
        for x, y in zip(buf.records, other.records):
            assert records_equal(x, y), (x, y)
