"""Tests for the integer/timestamp framing primitives."""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compact import (
    DeltaDecoder,
    DeltaEncoder,
    decode_uvarint,
    encode_uvarint,
    unzigzag,
    zigzag,
)
from repro.compact.varint import bits_to_float, float_to_bits


def uvarint_roundtrip(value):
    out = bytearray()
    encode_uvarint(value, out)
    decoded, pos = decode_uvarint(bytes(out), 0)
    assert pos == len(out)
    return decoded


def test_uvarint_small_values_cost_one_byte():
    for value in (0, 1, 42, 127):
        out = bytearray()
        encode_uvarint(value, out)
        assert len(out) == 1
        assert uvarint_roundtrip(value) == value


def test_uvarint_boundaries():
    for value in (127, 128, 16383, 16384, 2**32, 2**63, 2**64, 2**200):
        assert uvarint_roundtrip(value) == value


def test_uvarint_rejects_negative():
    with pytest.raises(ValueError, match="negative"):
        encode_uvarint(-1, bytearray())


def test_uvarint_truncated_raises():
    out = bytearray()
    encode_uvarint(300, out)
    with pytest.raises(ValueError, match="truncated"):
        decode_uvarint(bytes(out[:-1]), 0)


def test_uvarint_sequence_decoding_advances_position():
    out = bytearray()
    for value in (5, 300, 0):
        encode_uvarint(value, out)
    data = bytes(out)
    pos = 0
    decoded = []
    for _ in range(3):
        value, pos = decode_uvarint(data, pos)
        decoded.append(value)
    assert decoded == [5, 300, 0]
    assert pos == len(data)


def test_zigzag_interleaves_signs():
    assert [zigzag(n) for n in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]


@given(st.integers())
@settings(max_examples=200, deadline=None)
def test_zigzag_roundtrip_arbitrary_precision(n):
    z = zigzag(n)
    assert z >= 0
    assert unzigzag(z) == n


def test_float_bits_roundtrip_specials():
    for value in (0.0, -0.0, 1.0, -1.0, float("inf"), float("-inf"),
                  5e-324, -5e-324, 1.7976931348623157e308):
        bits = float_to_bits(value)
        back = bits_to_float(bits)
        assert math.copysign(1.0, back) == math.copysign(1.0, value)
        assert back == value or (back != back and value != value)


def test_float_bits_preserves_nan_payload():
    nan = bits_to_float(0x7FF8_0000_0000_0001)
    assert nan != nan
    assert float_to_bits(bits_to_float(float_to_bits(nan))) == float_to_bits(nan)


def delta_roundtrip(values):
    out = bytearray()
    encoder = DeltaEncoder()
    encoder.encode_many(values, out)
    data = bytes(out)
    decoder = DeltaDecoder()
    decoded = []
    pos = 0
    for _ in values:
        value, pos = decoder.decode(data, pos)
        decoded.append(value)
    assert pos == len(data)
    return decoded, data


def test_delta_roundtrip_is_bit_exact():
    values = [0.0, -0.0, 1.5, 1.5, -3.25, float("inf"), 2.0, 5e-324]
    decoded, _ = delta_roundtrip(values)
    assert [float_to_bits(v) for v in decoded] == [float_to_bits(v) for v in values]


def test_periodic_stream_costs_one_byte_after_warmup():
    # Constant step within one binade: the bit-pattern delta is
    # constant, so the second-order encoder emits a single zero byte
    # per timestamp from the third sample on.
    values = [1024.0 + 0.5 * k for k in range(100)]
    out = bytearray()
    encoder = DeltaEncoder()
    encoder.encode(values[0], out)
    encoder.encode(values[1], out)
    warmup = len(out)
    encoder.encode_many(values[2:], out)
    assert len(out) - warmup == 98  # one byte each
    decoded, _ = delta_roundtrip(values)
    assert decoded == values


@given(st.lists(st.floats(allow_nan=True, allow_infinity=True), max_size=80))
@settings(max_examples=100, deadline=None)
def test_delta_roundtrip_property(values):
    decoded, _ = delta_roundtrip(values)
    assert [float_to_bits(v) for v in decoded] == [float_to_bits(v) for v in values]
