"""Tests for the streaming tandem-repeat suppressor."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compact import Fold, RepeatSuppressor, fold_ring


def key_of(item):
    return item[0]


def time_of(item):
    return item[1]


def drain(suppressor, items):
    """Push everything, flush, return the flat element list."""
    out = []
    for item in items:
        out.extend(suppressor.push(item))
    out.extend(suppressor.flush())
    return out


def expand(elements):
    """The stream the elements stand for (folds expanded in order)."""
    flat = []
    for element in elements:
        if isinstance(element, Fold):
            flat.extend(element)
        else:
            flat.append(element)
    return flat


def test_fold_geometry():
    fold = Fold([["a0", "b0"], ["a1", "b1"], ["a2", "b2"]])
    assert fold.n == 3
    assert fold.width == 2
    assert fold.items == 6
    assert list(fold) == ["a0", "b0", "a1", "b1", "a2", "b2"]


def test_rejects_bad_window():
    with pytest.raises(ValueError, match="max_window"):
        RepeatSuppressor(key_of, max_window=0)


def test_simple_period_one_repeat_folds():
    items = [("x", float(t)) for t in range(10)]
    sup = RepeatSuppressor(key_of, time=time_of)
    out = drain(sup, items)
    folds = [e for e in out if isinstance(e, Fold)]
    assert len(folds) == 1
    assert folds[0].width == 1
    assert folds[0].n == 10
    assert expand(out) == items
    assert sup.folds == 1
    assert sup.folded_items == 10


def test_wider_loop_body_folds_as_a_unit():
    # enter/msg/leave repeated 20 times: one fold of width 3.
    body = ["enter", "msg", "leave"]
    items = []
    t = 0.0
    for _ in range(20):
        for k in body:
            items.append((k, t))
            t += 0.25
    out = drain(RepeatSuppressor(key_of, time=time_of), items)
    folds = [e for e in out if isinstance(e, Fold)]
    assert len(folds) == 1
    assert folds[0].width == 3
    assert folds[0].n == 20
    assert expand(out) == items


def test_non_repeating_stream_passes_through():
    items = [(f"k{i}", float(i)) for i in range(30)]
    out = drain(RepeatSuppressor(key_of, time=time_of), items)
    assert out == items


def test_backwards_time_blocks_folding():
    # Same structural keys but time runs backwards: suppression must
    # refuse (folding would reorder the timeline) and pass items through.
    items = [("x", float(-t)) for t in range(10)]
    out = drain(RepeatSuppressor(key_of, time=time_of), items)
    assert out == items


def test_backwards_time_mid_stream_closes_the_fold():
    items = [("x", float(t)) for t in range(8)]
    items.append(("x", 0.5))  # jumps backwards
    items.extend(("x", 10.0 + t) for t in range(3))
    out = drain(RepeatSuppressor(key_of, time=time_of), items)
    assert expand(out) == items
    # The pre-jump run folded; the jump item was not absorbed into it.
    first_fold = next(e for e in out if isinstance(e, Fold))
    assert all(time_of(i) < 8.0 for i in first_fold)


def test_without_time_fn_any_order_folds():
    items = [("x", float(-t)) for t in range(10)]
    out = drain(RepeatSuppressor(key_of), items)
    folds = [e for e in out if isinstance(e, Fold)]
    assert len(folds) == 1
    assert expand(out) == items


def test_output_lag_is_bounded():
    # Non-repeating stream: the suppressor may hold back at most
    # 2 * max_window items at any moment.
    sup = RepeatSuppressor(key_of, time=time_of, max_window=4)
    emitted = 0
    for i in range(100):
        emitted += len(sup.push((f"k{i}", float(i))))
        held = (i + 1) - emitted
        assert held <= 2 * sup.max_window


def test_repeat_longer_than_window_is_not_detected():
    body = [f"k{j}" for j in range(6)]
    items = []
    t = 0.0
    for _ in range(5):
        for k in body:
            items.append((k, t))
            t += 1.0
    out = drain(RepeatSuppressor(key_of, time=time_of, max_window=3), items)
    assert out == items  # body is wider than the window: untouched
    folded = drain(RepeatSuppressor(key_of, time=time_of, max_window=6), items)
    assert any(isinstance(e, Fold) for e in folded)


def test_fold_ring_merges_and_preserves_order():
    items = [("a", 0.0)] + [("x", float(t)) for t in range(50)] + [("b", 99.0)]

    def merge(fold):
        first = list(fold.iterations[0])
        return [(k, t, fold.n) for k, t in first]

    out = fold_ring(items, key_of, merge, max_window=4)
    assert out[0] == ("a", 0.0)
    assert out[-1] == ("b", 99.0)
    merged = [e for e in out if len(e) == 3]
    assert sum(e[2] for e in merged) == 50  # every occurrence accounted


@given(
    keys=st.lists(st.sampled_from("abc"), max_size=60),
    window=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=150, deadline=None)
def test_concatenation_identity_property(keys, window):
    """Outputs with folds expanded are exactly the input stream."""
    items = [(k, float(i)) for i, k in enumerate(keys)]
    sup = RepeatSuppressor(key_of, time=time_of, max_window=window)
    out = drain(sup, items)
    assert expand(out) == items
    folded_items = sum(e.items for e in out if isinstance(e, Fold))
    assert folded_items == sup.folded_items
