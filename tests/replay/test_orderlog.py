"""The RRLG order-log codec: round trips, truncation, b64, files."""

import pytest

from repro.replay.orderlog import (
    CH_DELIVER,
    CH_EVENT,
    CH_FAULT,
    CH_MATCH,
    Decision,
    OrderLog,
    bits_float,
    float_bits,
)


def sample_log():
    log = OrderLog(meta={"format": "repro.replay", "label": "t"})
    log.append(CH_EVENT, "P:rank0", 0, 0.0)
    log.append(CH_EVENT, "Timeout", 1, 0.5)
    log.append(CH_DELIVER, "0>1:7:world", -1, 0.5)
    log.append(CH_MATCH, "0>1:7:world", 3, 0.75)
    log.append(CH_FAULT, "loss.0.1", float_bits(0.123456), 1.25)
    log.append(CH_EVENT, "P:rank0", 0, 1.25)  # repeated key: interned
    return log


def test_roundtrip_is_exact():
    log = sample_log()
    data = log.to_bytes()
    back = OrderLog.from_bytes(data)
    assert back == log
    assert back.decisions == log.decisions
    assert back.meta == log.meta
    # Serialisation is deterministic: same log, same bytes.
    assert back.to_bytes() == data


def test_float_bits_round_trip():
    for value in (0.0, 1.0, -1.5, 0.1 + 0.2, 1e-300, float("inf")):
        assert bits_float(float_bits(value)) == value


def test_counts_by_channel():
    assert sample_log().counts() == {
        "event": 3, "deliver": 1, "match": 1, "fault": 1,
    }


def test_b64_round_trip():
    log = sample_log()
    assert OrderLog.from_b64(log.to_b64()) == log


def test_save_load_round_trip(tmp_path):
    log = sample_log()
    path = str(tmp_path / "run.order")
    log.save(path)
    assert OrderLog.load(path) == log


def test_bad_magic_rejected():
    with pytest.raises(ValueError, match="bad magic"):
        OrderLog.from_bytes(b"NOPE" + b"\x00" * 16)


def test_unsupported_version_rejected():
    data = bytearray(sample_log().to_bytes())
    data[4] = 99  # the version uvarint sits right after the magic
    with pytest.raises(ValueError, match="version"):
        OrderLog.from_bytes(bytes(data))


@pytest.mark.parametrize("cut", (6, 20, -5, -1))
def test_truncation_detected(cut):
    data = sample_log().to_bytes()
    with pytest.raises(ValueError, match="truncated or corrupt"):
        OrderLog.from_bytes(data[:cut])


def test_empty_log_round_trips():
    log = OrderLog(meta={})
    assert OrderLog.from_bytes(log.to_bytes()) == log
    assert len(log) == 0


def test_decision_to_dict_names_channel():
    d = Decision(CH_FAULT, "loss.0.1", 42, 1.5)
    doc = d.to_dict()
    assert doc["channel_name"] == "fault"
    assert doc["key"] == "loss.0.1"
    assert doc["value"] == 42
