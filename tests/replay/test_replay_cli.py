"""CLI surfaces: chaos/sweep --record/--replay and `replay verify|bisect`."""

import json
import os

import pytest

from repro.experiments.cli import chaos_main, main, sweep_main
from repro.replay.orderlog import OrderLog

ARGS = ["--cpus", "16", "--scale", "0.02"]


def record_chaos(tmp_path, seed=0):
    path = str(tmp_path / "run.order")
    rc = chaos_main([*ARGS, "--seed", str(seed), "--record", path])
    assert rc == 0
    assert os.path.exists(path)
    return path


# -- chaos --record / --replay ------------------------------------------------


def test_chaos_record_then_replay_roundtrip(tmp_path, capsys):
    path = record_chaos(tmp_path)
    assert "wrote order log" in capsys.readouterr().err
    rc = chaos_main([*ARGS, "--replay", path])
    assert rc == 0
    assert "replay: OK (bit-identical to" in capsys.readouterr().out


def test_chaos_record_replay_mutually_exclusive(tmp_path):
    path = str(tmp_path / "run.order")
    with pytest.raises(SystemExit) as err:
        chaos_main([*ARGS, "--record", path, "--replay", path])
    assert err.value.code == 2


def test_chaos_replay_perturbed_run_diverges(tmp_path, capsys):
    path = record_chaos(tmp_path, seed=0)
    capsys.readouterr()
    rc = chaos_main([*ARGS, "--seed", "3", "--replay", path])
    assert rc == 1
    captured = capsys.readouterr()
    assert "DIVERGED" in captured.err
    assert "decision #" in captured.err


def test_chaos_recording_leaves_payload_identical(tmp_path, capsys):
    rc = chaos_main([*ARGS, "--json"])
    assert rc == 0
    plain = json.loads(capsys.readouterr().out)
    rc = chaos_main([*ARGS, "--json", "--record",
                     str(tmp_path / "run.order")])
    assert rc == 0
    recorded = json.loads(capsys.readouterr().out)
    assert recorded == plain


# -- replay verify ------------------------------------------------------------


def test_replay_verify_ok(tmp_path, capsys):
    path = record_chaos(tmp_path)
    capsys.readouterr()
    rc = main(["replay", "verify", path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OK (" in out and "bit-identical" in out


def test_replay_verify_json(tmp_path, capsys):
    path = record_chaos(tmp_path)
    capsys.readouterr()
    rc = main(["replay", "verify", "--json", path])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["verified"] is True
    assert doc["status"] == "ok"
    assert doc["decisions"] == len(OrderLog.load(path))


def test_replay_verify_reports_divergence(tmp_path, capsys):
    path = record_chaos(tmp_path, seed=0)
    # Re-point the log at a different seed: the re-run must depart from
    # the recorded decisions and verify must say exactly where.
    log = OrderLog.load(path)
    log.meta["point"]["seed"] = 3
    log.save(path)
    capsys.readouterr()
    rc = main(["replay", "verify", path])
    assert rc == 1
    out = capsys.readouterr().out
    assert "DIVERGED" in out
    assert "first divergence: decision #" in out


def test_replay_verify_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.order"
    bad.write_bytes(b"not an order log")
    assert main(["replay", "verify", str(bad)]) == 1
    assert "bad magic" in capsys.readouterr().err
    assert main(["replay", "verify", str(tmp_path / "missing.order")]) == 1


def test_replay_unknown_subcommand(capsys):
    assert main(["replay", "bogus"]) == 2
    assert "usage:" in capsys.readouterr().err


# -- replay bisect ------------------------------------------------------------


def three_spec_plan_file(tmp_path):
    path = tmp_path / "plan3.json"
    path.write_text(json.dumps({"faults": [
        {"kind": "daemon_crash", "node": 1},
        {"kind": "message_loss", "probability": 0.0},
        {"kind": "rank_slowdown", "rank": 0, "factor": 2.0,
         "start": 1000000.0, "end": 1000001.0},
    ]}))
    return str(path)


def test_replay_bisect_cli_minimizes(tmp_path, capsys):
    plan = three_spec_plan_file(tmp_path)
    rc = main(["replay", "bisect", "--faults", plan,
               "--cpus", "16", "--scale", "0.05", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["mode"] == "effect"
    assert doc["original_size"] == 3
    assert doc["minimal_size"] == 1
    assert doc["minimal"]["faults"] == [{"kind": "daemon_crash", "node": 1}]
    assert doc["tests"] == 4
    assert doc["history"][0] == {"specs": [0, 1, 2], "interesting": True}


def test_replay_bisect_text_output(tmp_path, capsys):
    plan = three_spec_plan_file(tmp_path)
    rc = main(["replay", "bisect", "--faults", plan,
               "--cpus", "16", "--scale", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "3 spec(s) -> 1 (1-minimal) in 4 deterministic test run(s)" in out
    assert "daemon_crash" in out


def test_replay_bisect_requires_a_plan():
    with pytest.raises(SystemExit) as err:
        main(["replay", "bisect", "--cpus", "16", "--scale", "0.05"])
    assert err.value.code == 2


def test_replay_bisect_diverge_needs_against(tmp_path):
    plan = three_spec_plan_file(tmp_path)
    with pytest.raises(SystemExit) as err:
        main(["replay", "bisect", "--faults", plan, "--mode", "diverge"])
    assert err.value.code == 2
    # --against outside diverge mode is likewise refused.
    with pytest.raises(SystemExit) as err:
        main(["replay", "bisect", "--faults", plan,
              "--against", str(tmp_path / "x.order")])
    assert err.value.code == 2


# -- sweep --record / --replay ------------------------------------------------


SWEEP = ["--apps", "sweep3d", "--policies", "Dynamic", "--cpus", "4",
         "--scale", "0.05", "--no-cache", "--json"]


def test_sweep_record_then_replay(tmp_path, capsys):
    logs = str(tmp_path / "logs")
    rc = sweep_main([*SWEEP, "--record", logs])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    paths = doc["outputs"]["order_logs"]
    assert len(paths) == 1 and paths[0].endswith(".order")
    assert os.path.exists(paths[0])
    rc = sweep_main([*SWEEP, "--replay", logs])
    assert rc == 0
    replayed = json.loads(capsys.readouterr().out)
    assert replayed["sweep"][0]["status"] == "ok"


def test_sweep_recording_leaves_results_identical(tmp_path, capsys):
    rc = sweep_main(list(SWEEP))
    assert rc == 0
    plain = json.loads(capsys.readouterr().out)
    rc = sweep_main([*SWEEP, "--record", str(tmp_path / "logs")])
    assert rc == 0
    recorded = json.loads(capsys.readouterr().out)
    # Identical modulo the extra outputs section listing the log files.
    assert recorded["sweep"] == plain["sweep"]


def test_sweep_replay_perturbed_seed_diverges(tmp_path, capsys):
    logs = str(tmp_path / "logs")
    assert sweep_main([*SWEEP, "--record", logs]) == 0
    capsys.readouterr()
    # Same labels, different seed: every verified point must diverge.
    rc = sweep_main([*SWEEP, "--seed", "3", "--replay", logs])
    assert rc == 1
    captured = capsys.readouterr()
    assert "diverged from its replay log at decision #" in captured.err
    doc = json.loads(captured.out)
    assert doc["sweep"][0]["status"] == "diverged"


def test_sweep_record_replay_mutually_exclusive(tmp_path):
    with pytest.raises(SystemExit):
        sweep_main([*SWEEP, "--record", str(tmp_path / "a"),
                    "--replay", str(tmp_path / "b")])


def test_load_replay_logs_rejects_empty_dir(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(SystemExit, match="no .order files"):
        sweep_main([*SWEEP, "--replay", str(empty)])


def test_load_replay_logs_rejects_corrupt_file(tmp_path):
    bad = tmp_path / "bad.order"
    bad.write_bytes(b"RRLG but not really")
    with pytest.raises(SystemExit, match="order.log"):
        sweep_main([*SWEEP, "--replay", str(bad)])
