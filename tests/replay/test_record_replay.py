"""Record -> replay: bit-identity, divergence detection, envelope flow."""

import base64

import pytest

from repro.faults import canned_plan
from repro.replay import hooks
from repro.replay.errors import DivergenceError
from repro.replay.orderlog import OrderLog
from repro.runner import SweepPoint, SweepRunner
from repro.runner.worker import execute_point


def faulted_point(seed=0):
    return SweepPoint.policy_cell(
        "sweep3d", "Dynamic", 8, scale=0.02, seed=seed,
        faults=canned_plan("daemon-crash-attach"),
    )


def record(point):
    envelope = execute_point(point, record_order=True)
    assert envelope["status"] == "ok"
    return envelope


def test_hooks_install_restore():
    assert hooks.get() is hooks.NULL
    recorder = hooks.OrderRecorder()
    previous = hooks.install(recorder)
    assert hooks.get() is recorder
    hooks.uninstall(previous)
    assert hooks.get() is hooks.NULL


def test_recording_context_restores_on_error():
    with pytest.raises(RuntimeError):
        with hooks.recording():
            assert hooks.get().enabled
            raise RuntimeError("boom")
    assert hooks.get() is hooks.NULL


def test_recording_is_deterministic_and_rides_envelope():
    e1, e2 = record(faulted_point()), record(faulted_point())
    assert "order_log" in e1
    # Bit-identical logs for the same (point, seed).
    assert e1["order_log"] == e2["order_log"]
    log = OrderLog.from_b64(e1["order_log"])
    assert len(log) > 100
    counts = log.counts()
    assert counts["event"] > 0 and counts["fault"] > 0
    assert log.meta["label"] == faulted_point().label
    # Recording never perturbs the simulation.
    plain = execute_point(faulted_point())
    assert plain["payload"] == e1["payload"]
    assert "order_log" not in plain


def test_replay_of_identical_run_verifies():
    blob = record(faulted_point())["order_log"]
    envelope = execute_point(faulted_point(), replay_log=blob)
    assert envelope["status"] == "ok"
    assert "divergence" not in envelope


def test_replay_of_perturbed_run_pins_first_divergence():
    blob = record(faulted_point(seed=0))["order_log"]
    envelope = execute_point(faulted_point(seed=1), replay_log=blob)
    assert envelope["status"] == "diverged"
    divergence = envelope["divergence"]
    # The report identifies the first divergent decision precisely, and
    # deterministically: seeds shift the first fault draw's timing.
    assert divergence["index"] == 4
    assert divergence["expected"]["channel_name"] == "fault"
    assert divergence["expected"]["key"] == "loss.0.0"
    # The seed shifts the injector's draw: same stream, different bits.
    assert divergence["actual"]["channel_name"] == "fault"
    assert divergence["actual"]["key"] == "loss.0.0"
    assert divergence["actual"]["value"] != divergence["expected"]["value"]
    # Deterministic: the same perturbed replay diverges identically.
    again = execute_point(faulted_point(seed=1), replay_log=blob)
    assert again["divergence"] == divergence


def test_short_replay_raises_on_finish():
    log = OrderLog()
    log.append(0, "P:ghost", 0, 1.0)
    with pytest.raises(DivergenceError) as err:
        with hooks.replaying(log):
            pass  # run ends without consuming the recorded decision
    assert err.value.actual is None
    assert err.value.expected["key"] == "P:ghost"


def test_long_replay_raises_past_log_end():
    controller = hooks.ReplayController(OrderLog())
    with pytest.raises(DivergenceError) as err:
        controller.on_event(object(), 0.0, 0)
    assert err.value.index == 0
    assert err.value.expected is None


def test_divergence_error_round_trips_as_dict():
    blob = record(faulted_point(seed=0))["order_log"]
    envelope = execute_point(faulted_point(seed=1), replay_log=blob)
    err = DivergenceError.from_dict(envelope["divergence"])
    assert err.index == envelope["divergence"]["index"]
    assert "diverged at decision #" in str(err)


def test_runner_collects_order_logs_and_keeps_cache_clean(tmp_path):
    point = faulted_point()
    runner = SweepRunner(jobs=1, cache=str(tmp_path / "cache"),
                         record_order=True)
    results = runner.run([point])
    assert results[point].ok
    blob = runner.order_logs[point.label]
    OrderLog.from_bytes(base64.b64decode(blob))  # parses
    # The cached entry must not carry the log: cache entries stay
    # byte-identical with recording on or off.
    from repro.runner.cache import point_key

    entry = runner.cache.get(point_key(point))
    assert "order_log" not in entry
    assert "order_log" not in entry["payload"]
    # A cached re-run executes nothing, so nothing is recorded.
    rerun = SweepRunner(jobs=1, cache=str(tmp_path / "cache"),
                        record_order=True)
    rerun_results = rerun.run([point])
    assert rerun_results[point].cached
    assert rerun.order_logs == {}


def test_runner_replay_flags_divergence():
    point0, point1 = faulted_point(seed=0), faulted_point(seed=1)
    recording_runner = SweepRunner(jobs=1, record_order=True)
    recording_runner.run([point0])
    blob = recording_runner.order_logs[point0.label]
    # Same label -> verified clean; perturbed point -> diverged.
    ok = SweepRunner(jobs=1, replay_logs={point0.label: blob})
    assert ok.run([point0])[point0].ok
    bad = SweepRunner(jobs=1, replay_logs={point1.label: blob})
    result = bad.run([point1])[point1]
    assert result.status == "diverged"
    assert result.divergence["index"] == 4


def test_process_pool_records_identically():
    point = faulted_point()
    serial = SweepRunner(jobs=1, record_order=True)
    serial.run([point])
    pooled = SweepRunner(jobs=2, record_order=True)
    pooled.run([point])
    assert serial.order_logs[point.label] == pooled.order_logs[point.label]


def test_replay_obs_counters():
    point = faulted_point()
    inner = execute_point(point, collect_obs=True, record_order=True)
    blob = inner["order_log"]
    n = len(OrderLog.from_b64(blob))
    counters = inner["obs"]["counters"]
    assert counters["replay.recordings"] == 1
    assert counters["replay.recorded_decisions"] == n
    verified = execute_point(point, collect_obs=True, replay_log=blob)
    v = verified["obs"]["counters"]
    assert v["replay.verified_runs"] == 1
    assert v["replay.verified_decisions"] == n
    diverged = execute_point(faulted_point(seed=1), collect_obs=True,
                             replay_log=blob)
    d = diverged["obs"]["counters"]
    assert d["replay.divergences"] == 1
    assert "replay.verified_runs" not in d
