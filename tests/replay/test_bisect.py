"""ddmin fault-plan bisection: minimality, determinism, the oracles."""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.replay.bisect import bisect_plan, ddmin, point_with_faults
from repro.runner import SweepPoint
from repro.runner.worker import execute_point


def three_spec_plan():
    """One real culprit plus two inert specs — the CI smoke fixture."""
    return FaultPlan.of(
        FaultSpec("daemon_crash", node=1),
        FaultSpec("message_loss", probability=0.0),
        FaultSpec("rank_slowdown", rank=0, factor=2.0,
                  start=1_000_000.0, end=1_000_001.0),
    )


def bench_point(**kw):
    return SweepPoint.instrument("sweep3d", 16, scale=0.05, **kw)


# -- the ddmin core, against a pure predicate ---------------------------------


def test_ddmin_single_culprit():
    items = list(range(8))
    minimal = ddmin(items, lambda s: 5 in s)
    assert minimal == [5]


def test_ddmin_interacting_pair():
    items = list(range(8))
    minimal = ddmin(items, lambda s: 2 in s and 6 in s)
    assert sorted(minimal) == [2, 6]


def test_ddmin_is_one_minimal():
    items = list(range(10))
    culprits = {1, 4, 9}
    minimal = ddmin(items, lambda s: culprits <= set(s))
    assert sorted(minimal) == sorted(culprits)
    # 1-minimal: dropping any single remaining item loses the property.
    for drop in minimal:
        assert not culprits <= set(x for x in minimal if x != drop)


def test_ddmin_deterministic():
    items = list(range(12))
    runs = [ddmin(items, lambda s: 7 in s) for _ in range(3)]
    assert runs[0] == runs[1] == runs[2] == [7]


# -- point_with_faults --------------------------------------------------------


def test_point_with_faults_swaps_the_plan():
    point = bench_point(faults=three_spec_plan())
    clean = point_with_faults(point, None)
    assert clean.param("faults") is None
    assert clean.label != point.label or "faults" not in dict(point.params)
    rearmed = point_with_faults(clean, three_spec_plan())
    assert rearmed.param("faults") == point.param("faults")
    # Empty plans canonicalize away entirely (cache-key stability).
    assert point_with_faults(point, FaultPlan.empty()).param("faults") is None


# -- bisect_plan on the real simulation ---------------------------------------


def test_bisect_effect_mode_pins_the_culprit():
    result = bisect_plan(bench_point(), three_spec_plan(), mode="effect")
    assert len(result.minimal) == 1
    spec = result.minimal.specs[0]
    assert spec.kind == "daemon_crash" and spec.node == 1
    assert result.original_size == 3
    # Deterministic test trajectory: full plan, empty plan, first subset.
    assert result.tests == 4
    assert result.history == [
        {"specs": [0, 1, 2], "interesting": True},
        {"specs": [], "interesting": False},
        {"specs": [0], "interesting": True},
    ]
    doc = result.to_dict()
    assert doc["minimal_size"] == 1
    assert doc["original_size"] == 3
    assert doc["tests"] == 4


def test_bisect_is_deterministic():
    a = bisect_plan(bench_point(), three_spec_plan(), mode="effect")
    b = bisect_plan(bench_point(), three_spec_plan(), mode="effect")
    assert a.minimal == b.minimal
    assert a.history == b.history


def test_bisect_diverge_mode():
    point = SweepPoint.policy_cell("sweep3d", "Dynamic", 8, scale=0.02)
    clean = execute_point(point, record_order=True)
    assert clean["status"] == "ok"
    from repro.replay.orderlog import OrderLog

    against = OrderLog.from_b64(clean["order_log"])
    result = bisect_plan(point, three_spec_plan(), mode="diverge",
                         against=against)
    spec = result.minimal.specs[0]
    assert spec.kind == "daemon_crash"
    assert len(result.minimal) == 1


def test_bisect_rejects_uninteresting_plan():
    # A selftest point ignores fault plans entirely, so no plan can
    # perturb its payload: the full plan fails the effect oracle and
    # there is nothing to minimize.  (On real simulation points even a
    # never-firing plan is interesting — carrying a plan switches the
    # client into its degraded-mode protocol.)
    inert = FaultPlan.of(
        FaultSpec("message_loss", probability=0.9, start=0.0, end=0.0),
        FaultSpec("daemon_crash", node=1, start=5.0, end=5.0),
    )
    point = SweepPoint.selftest(mode="echo", value=7)
    with pytest.raises(ValueError, match="not interesting"):
        bisect_plan(point, inert, mode="effect")


def test_bisect_fail_mode_rejects_passing_plan():
    # The canned plan perturbs payloads but the run still succeeds, so
    # under the fail oracle there is nothing to minimize.
    with pytest.raises(ValueError, match="not interesting"):
        bisect_plan(bench_point(), three_spec_plan(), mode="fail")


def test_bisect_rejects_unknown_mode_and_missing_log():
    with pytest.raises(ValueError, match="unknown bisect mode"):
        bisect_plan(bench_point(), three_spec_plan(), mode="nope")
    with pytest.raises(ValueError, match="needs a recorded clean"):
        bisect_plan(bench_point(), three_spec_plan(), mode="diverge")
