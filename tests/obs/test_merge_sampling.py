"""merge_snapshot under sampling: two workers' sampled runs merge into
one registry whose totals equal what the sampled series telescope to.

The runner merges per-point obs snapshots (`SweepRunner._finish`), and
the sampler turns the same registries into windowed series; these tests
pin that the two views stay mutually consistent — counter deltas sum to
the merged counters, gauge high-water marks survive the merge, and
histogram bucket alignment is enforced, sampler on or off."""

import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.obs import timeseries
from repro.obs.timeseries import MetricsSampler, decode_series
from repro.simt import Environment


@pytest.fixture(autouse=True)
def _layers_stay_off():
    assert not obs.is_enabled() and not timeseries.is_enabled()
    yield
    obs.disable()
    timeseries.disable()


def _sampled_run(increments, depth, interval=0.5):
    """One simulated 'worker': counts, a gauge, a histogram — sampled.

    Returns (registry snapshot, recorder snapshot).
    """
    with obs.collecting() as reg, timeseries.sampling(
            interval=interval) as rec:
        env = Environment()

        def workload():
            for i, n in enumerate(increments):
                reg.inc("work.items", n)
                reg.gauge_max("work.depth", depth + i)
                reg.observe("work.sizes", float(n), edges=(2, 8))
                yield env.timeout(interval)

        env.process(workload())
        sampler = MetricsSampler.install(env)
        env.run(until=env.timeout(len(increments) * interval))
        sampler.stop()
        env.run()
        sampler.finish()
        return reg.snapshot(), rec.snapshot()


def test_counter_deltas_sum_to_merged_counters():
    snap_a, ts_a = _sampled_run([1, 2, 3], depth=1)
    snap_b, ts_b = _sampled_run([10, 0, 5], depth=1)

    merged = MetricsRegistry()
    merged.merge_snapshot(snap_a)
    merged.merge_snapshot(snap_b)

    total_from_series = 0.0
    for ts in (ts_a, ts_b):
        _, deltas = decode_series(ts["series"]["counter:work.items"])
        total_from_series += sum(deltas)
    assert total_from_series == merged.counters["work.items"] == 21


def test_gauge_high_water_survives_merge_and_matches_series_max():
    snap_a, ts_a = _sampled_run([1, 1], depth=3)      # peaks at 4
    snap_b, ts_b = _sampled_run([1, 1, 1], depth=5)   # peaks at 7

    merged = MetricsRegistry()
    merged.merge_snapshot(snap_a)
    merged.merge_snapshot(snap_b)
    assert merged.gauges["work.depth"] == 7

    peaks = []
    for ts in (ts_a, ts_b):
        _, levels = decode_series(ts["series"]["gauge:work.depth"])
        peaks.append(max(levels))
    assert max(peaks) == merged.gauges["work.depth"]


def test_histogram_buckets_stay_aligned_across_sampled_merges():
    snap_a, _ = _sampled_run([1, 5], depth=0)   # buckets: <=2, <=8
    snap_b, _ = _sampled_run([9, 1], depth=0)   # overflow + <=2

    merged = MetricsRegistry()
    merged.merge_snapshot(snap_a)
    merged.merge_snapshot(snap_b)
    hist = merged.snapshot()["histograms"]["work.sizes"]
    assert hist["edges"] == [2, 8]
    assert hist["counts"] == [2, 1, 1]
    assert hist["count"] == 4


def test_mismatched_histogram_edges_refuse_to_merge():
    snap_a, _ = _sampled_run([1], depth=0)
    b = MetricsRegistry()
    b.observe("work.sizes", 1.0, edges=(99,))
    merged = MetricsRegistry()
    merged.merge_snapshot(snap_a)
    with pytest.raises(ValueError, match="work.sizes"):
        merged.merge_snapshot(b.snapshot())


def test_sampler_tick_counter_merges_like_any_counter():
    snap_a, ts_a = _sampled_run([1, 1], depth=0)
    snap_b, ts_b = _sampled_run([1, 1, 1, 1], depth=0)
    merged = MetricsRegistry()
    merged.merge_snapshot(snap_a)
    merged.merge_snapshot(snap_b)
    # Every tick the sampler took is accounted once in the merge.
    assert merged.counters["obs.sampler_ticks"] == \
        ts_a["samples"] + ts_b["samples"]


def test_merge_is_indifferent_to_sampling():
    """Sampler on vs off must not change what a registry merges to."""
    snap_sampled, _ = _sampled_run([2, 4], depth=1)

    with obs.collecting() as reg:
        env = Environment()

        def workload():
            for i, n in enumerate([2, 4]):
                reg.inc("work.items", n)
                reg.gauge_max("work.depth", 1 + i)
                reg.observe("work.sizes", float(n), edges=(2, 8))
                yield env.timeout(0.5)

        env.process(workload())
        env.run()
        snap_plain = reg.snapshot()

    # Identical except for the sampler's own footprint: its tick
    # counter, and the engine's simt.* event accounting (the wakeups
    # are real simulated events — the documented visibility).
    def app_view(table):
        return {k: v for k, v in table.items()
                if not k.startswith(("obs.", "simt."))}

    assert app_view(snap_sampled["counters"]) == \
        app_view(snap_plain["counters"])
    assert app_view(snap_sampled["gauges"]) == app_view(snap_plain["gauges"])
    assert snap_sampled["histograms"] == snap_plain["histograms"]
