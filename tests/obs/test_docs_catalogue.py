"""Doc-drift guard: the metric catalogue in docs/observability.md and
the ``obs.*`` / ``svc.*`` / ``vt.*`` metrics the source actually emits
must stay in lockstep, both directions.

Source side: every registry call site (``.inc`` / ``.gauge_set`` /
``.gauge_max`` / ``.observe`` / ``.span`` / the scheduler's ``_count``
wrapper) whose name literal starts with one of the guarded prefixes.
Doc side: every `` `name` `` row of the catalogue tables with a guarded
prefix.  Dynamic f-string segments (``{tenant}``, ``{event}``...)
normalise to ``<>`` on both sides, so ``svc.tenant.<tenant>.points``
in the docs matches ``svc.tenant.{tenant}.points`` in the code.
"""

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"
DOC = REPO / "docs" / "observability.md"

GUARDED = ("obs.", "svc.", "vt.")

#: Registry emission call sites with a literal (or f-string) name as
#: the first argument.  `_count` is the scheduler's counter wrapper.
_EMIT = re.compile(
    r"(?:\.inc|\.gauge_set|\.gauge_max|\.observe|\.span|_count)"
    r"\(\s*f?\"([^\"]+)\""
)

#: A catalogue table row: | `name` | kind | ...
_DOC_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|", re.MULTILINE)

#: Any {placeholder} (code) or <placeholder> (docs) segment.
_CODE_DYNAMIC = re.compile(r"\{[^}]*\}")
_DOC_DYNAMIC = re.compile(r"<[^>]*>")

#: Names emitted through TraceFile record counting rather than the
#: registry: `trace.count(...)` events, documented in the trace-format
#: docs, not the metrics catalogue.
_TRACE_COUNTS = {"vt.probe_time", "vt.probe_events", "tramp.time"}


def emitted_metric_names():
    names = set()
    for path in SRC.rglob("*.py"):
        text = path.read_text(encoding="utf-8")
        for match in _EMIT.finditer(text):
            name = _CODE_DYNAMIC.sub("<>", match.group(1))
            if name.startswith(GUARDED):
                names.add(name)
    return names - _TRACE_COUNTS


def documented_metric_names():
    text = DOC.read_text(encoding="utf-8")
    names = set()
    for match in _DOC_ROW.finditer(text):
        name = _DOC_DYNAMIC.sub("<>", match.group(1))
        if name.startswith(GUARDED):
            names.add(name)
    return names


def test_every_emitted_metric_is_documented():
    missing = emitted_metric_names() - documented_metric_names()
    assert not missing, (
        "metrics emitted in src/ but absent from the docs/observability.md "
        f"catalogue: {sorted(missing)}"
    )


def test_every_documented_metric_is_emitted():
    stale = documented_metric_names() - emitted_metric_names()
    assert not stale, (
        "metrics documented in docs/observability.md but no longer emitted "
        f"anywhere in src/: {sorted(stale)}"
    )


def test_the_guard_actually_sees_both_sides():
    """A regex refactor that matches nothing would vacuously pass the
    two direction checks; pin a known name on each side instead."""
    emitted = emitted_metric_names()
    documented = documented_metric_names()
    assert "obs.sampler_ticks" in emitted
    assert "obs.sampler_ticks" in documented
    assert any(n.startswith("svc.") for n in emitted)
    assert any(n.startswith("vt.") for n in documented)
