"""The repro.obs metrics layer: registry semantics, null backend,
engine/runner integration, and the obs-on == obs-off guarantee."""

import io
import json

import pytest

from repro import obs
from repro.obs import Histogram, MetricsRegistry, NullRegistry, merge_snapshots
from repro.runner import SweepPoint, SweepRunner
from repro.runner.worker import execute_point
from repro.simt import Environment


@pytest.fixture(autouse=True)
def _obs_stays_off():
    """Every test must leave the process-local registry disabled."""
    assert not obs.is_enabled()
    yield
    obs.disable()
    assert not obs.is_enabled()


# -------------------------------------------------------------- the registry


def test_counters_and_gauges():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a")
    reg.inc("b", 5)
    reg.gauge_set("g", 3.0)
    reg.gauge_set("g", 1.0)
    reg.gauge_max("h", 3.0)
    reg.gauge_max("h", 1.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"a": 2, "b": 5}
    assert snap["gauges"] == {"g": 1.0, "h": 3.0}


def test_histogram_buckets_are_inclusive_upper_bounds():
    h = Histogram((10, 100))
    for v in (0, 10, 11, 100, 101, 5000):
        h.observe(v)
    # <=10: {0, 10}; <=100: {11, 100}; overflow: {101, 5000}
    assert h.counts == [2, 2, 2]
    assert h.count == 6 and h.total == sum((0, 10, 11, 100, 101, 5000))


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError):
        Histogram((10, 5))


def test_observe_ignores_edges_after_creation():
    reg = MetricsRegistry()
    reg.observe("x", 1.0, edges=(10, 100))
    reg.observe("x", 2.0, edges=(999,))  # ignored; same histogram
    assert reg.histograms["x"].edges == (10, 100)
    assert reg.histograms["x"].count == 2


def test_span_aggregates_count_total_max():
    reg = MetricsRegistry()
    for d in (1.0, 3.0, 2.0):
        reg.span("phase", d)
    snap = reg.snapshot()
    assert snap["spans"]["phase"] == {"count": 3, "total": 6.0, "max": 3.0}


def test_snapshot_is_json_safe_and_sorted():
    reg = MetricsRegistry()
    reg.inc("z")
    reg.inc("a")
    reg.observe("hist", 2.0, edges=(1, 4))
    reg.span("s", 0.5)
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "z"]
    assert json.loads(json.dumps(snap)) == snap


def test_merge_snapshot_semantics():
    a = MetricsRegistry()
    a.inc("n", 2)
    a.gauge_max("depth", 5)
    a.observe("sizes", 3.0, edges=(10,))
    a.span("wire", 1.0)

    b = MetricsRegistry()
    b.inc("n", 3)
    b.gauge_max("depth", 4)
    b.observe("sizes", 50.0, edges=(10,))
    b.span("wire", 2.5)

    a.merge_snapshot(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["n"] == 5  # counters add
    assert snap["gauges"]["depth"] == 5  # gauges keep the max
    assert snap["histograms"]["sizes"]["counts"] == [1, 1]
    assert snap["spans"]["wire"] == {"count": 2, "total": 3.5, "max": 2.5}


def test_merge_snapshot_rejects_mismatched_edges():
    a = MetricsRegistry()
    a.observe("sizes", 1.0, edges=(10,))
    b = MetricsRegistry()
    b.observe("sizes", 1.0, edges=(99,))
    with pytest.raises(ValueError, match="sizes"):
        a.merge_snapshot(b.snapshot())


def test_merge_snapshot_rejects_mismatched_bucket_counts():
    a = MetricsRegistry()
    a.observe("sizes", 1.0, edges=(10, 20))
    snap = MetricsRegistry().snapshot()
    # Same edges, truncated counts array: zip() would silently drop the
    # overflow bucket, so the merge must refuse instead.
    snap["histograms"] = {
        "sizes": {"edges": [10, 20], "counts": [1, 2], "count": 3, "total": 9.0}
    }
    with pytest.raises(ValueError, match="bucket counts"):
        a.merge_snapshot(snap)


def test_merge_empty_snapshot_is_identity():
    a = MetricsRegistry()
    a.inc("n", 2)
    a.gauge_max("depth", 5)
    a.observe("sizes", 3.0, edges=(10,))
    a.span("wire", 1.0)
    before = a.snapshot()
    a.merge_snapshot(MetricsRegistry().snapshot())
    assert a.snapshot() == before


def test_merge_snapshots_helper_and_reset():
    a = MetricsRegistry()
    a.inc("n")
    b = MetricsRegistry()
    b.inc("n", 9)
    assert merge_snapshots([a.snapshot(), b.snapshot()])["counters"]["n"] == 10
    a.reset()
    assert a.snapshot() == NullRegistry().snapshot()


def test_null_registry_is_inert():
    null = obs.NULL
    assert isinstance(null, NullRegistry) and not null.enabled
    null.inc("x")
    null.gauge_set("x", 1)
    null.gauge_max("x", 1)
    null.observe("x", 1, edges=(1,))
    null.span("x", 1)
    null.merge_snapshot({"counters": {"x": 1}})
    null.reset()
    assert null.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {}
    }


def test_enable_disable_and_collecting_restore():
    assert obs.get() is obs.NULL
    reg = obs.enable()
    assert obs.is_enabled() and obs.get() is reg
    assert obs.disable() is reg and obs.get() is obs.NULL

    with obs.collecting() as inner:
        assert obs.get() is inner and inner.enabled
        with obs.collecting() as nested:
            assert obs.get() is nested
        assert obs.get() is inner
    assert obs.get() is obs.NULL


# ----------------------------------------------------- engine instrumentation


def test_engine_counts_events_and_queue_depth():
    with obs.collecting() as reg:
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            yield env.timeout(1.0)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
    snap = reg.snapshot()
    assert snap["counters"]["simt.events"] == env.events_processed
    assert snap["gauges"]["simt.queue_depth_hwm"] >= 2


def test_environment_captures_registry_at_construction():
    env = Environment()  # built while observation is off
    with obs.collecting() as reg:

        def proc(env):
            yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
    assert "simt.events" not in reg.snapshot()["counters"]
    assert env.events_processed > 0


# ------------------------------------------------------- worker / runner path


def test_worker_envelope_carries_obs_snapshot():
    point = SweepPoint.confsync(2, reps=2)
    envelope = execute_point(point, collect_obs=True)
    assert envelope["status"] == "ok"
    counters = envelope["obs"]["counters"]
    assert counters["simt.events"] > 0
    assert counters["mpi.eager_sends"] > 0
    assert counters["vt.records"] > 0
    # Collection must not leak a live registry into the worker process.
    assert not obs.is_enabled()


def test_worker_envelope_has_no_obs_by_default():
    envelope = execute_point(SweepPoint.confsync(2, reps=2))
    assert envelope["status"] == "ok"
    assert "obs" not in envelope


def test_runner_merges_point_snapshots_and_reports_them():
    stream = io.StringIO()
    runner = SweepRunner(telemetry=stream, collect_obs=True)
    points = [SweepPoint.confsync(2, reps=2), SweepPoint.confsync(4, reps=2)]
    results = runner.run(points)
    assert all(r.ok for r in results.values())

    merged = runner.obs.snapshot()
    assert merged["counters"]["simt.events"] > 0
    assert merged["counters"]["vt.confsync_epochs"] >= 4  # 2 reps x 2 points

    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    point_events = [r for r in records if r.get("event") == "point"]
    assert len(point_events) == 2
    assert all("obs" in e for e in point_events)


def test_cached_points_contribute_no_obs(tmp_path):
    point = SweepPoint.confsync(2, reps=2)
    first = SweepRunner(cache=tmp_path, collect_obs=True)
    assert first.run([point])[point].ok
    assert first.obs.snapshot()["counters"]

    second = SweepRunner(cache=tmp_path, collect_obs=True)
    result = second.run([point])[point]
    assert result.ok and result.cached
    assert second.obs.snapshot()["counters"] == {}


def test_payloads_identical_with_and_without_obs():
    point = SweepPoint.confsync(2, reps=2)
    plain = SweepRunner().run([point])[point]
    observed = SweepRunner(collect_obs=True).run([point])[point]
    assert plain.payload == observed.payload


# ------------------------------------------------- figure-level equivalence


def test_fig7_bit_identical_with_obs_and_counters_cover_subsystems():
    """The acceptance criterion: observing a figure run changes nothing
    about the figure, and the snapshot covers simt, mpi and vt."""
    from repro.experiments.fig7 import run_fig7

    plain = run_fig7("smg98", cpu_counts=(1, 2), scale=0.02)
    runner = SweepRunner(collect_obs=True)
    observed = run_fig7("smg98", cpu_counts=(1, 2), scale=0.02, runner=runner)
    assert observed.to_dict() == plain.to_dict()

    counters = runner.obs.snapshot()["counters"]
    assert any(name.startswith("simt.") for name in counters)
    assert any(name.startswith("mpi.") for name in counters)
    assert any(name.startswith("vt.") for name in counters)
    assert any(name.startswith("dynprof.") for name in counters)


def test_cli_obs_flag_writes_metrics_document(tmp_path, capsys):
    from repro.experiments.cli import sweep_main

    out = tmp_path / "metrics.json"
    rc = sweep_main([
        "--apps", "smg98", "--policies", "None", "--cpus", "2",
        "--scale", "0.02", "--no-cache", "--obs", str(out),
    ])
    assert rc == 0
    capsys.readouterr()
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert set(doc) == {"version", "obs", "telemetry"}
    counters = doc["obs"]["counters"]
    assert counters["simt.events"] > 0
    assert any(name.startswith("mpi.") for name in counters)
    assert any(name.startswith("vt.") for name in counters)
    assert doc["telemetry"]["total"] == 1


def test_render_obs_report_lists_collected_metrics():
    from repro.analysis import render_obs_report

    reg = MetricsRegistry()
    reg.inc("simt.events", 1234)
    reg.gauge_max("simt.queue_depth_hwm", 17)
    reg.span("mpi.wire", 0.25)
    reg.observe("mpi.msg_bytes", 100.0, edges=(64, 256))
    text = render_obs_report(reg.snapshot())
    assert "simt.events" in text and "1,234" in text
    assert "high water" in text
    assert "mpi.wire" in text and "spans" in text
    assert "mpi.msg_bytes" in text

    assert "(no metrics collected)" in render_obs_report(obs.NULL.snapshot())
