"""The repro.obs.trace causal tracer: ring buffers, flow-edge
integrity, Chrome-trace export, critical-path / perturbation analysis,
and the tracing-on == tracing-off guarantee."""

import json

import pytest

from repro.obs import trace as obs_trace
from repro.obs.analysis import (
    critical_path,
    flow_pairs,
    perturbation_report,
    render_trace_summary,
    track_utilization,
)
from repro.obs.export import (
    to_chrome_trace,
    trace_to_svg,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import NullTracer, Tracer
from repro.runner import SweepPoint, SweepRunner
from repro.runner.worker import execute_point


@pytest.fixture(autouse=True)
def _tracing_stays_off():
    """Every test must leave the process-local tracer disabled."""
    assert not obs_trace.is_enabled()
    yield
    obs_trace.disable()
    assert not obs_trace.is_enabled()


def _traced_policy_run(policy="Dynamic", app="smg98", cpus=2, scale=0.02):
    point = SweepPoint.policy_cell(app, policy, cpus, scale=scale)
    envelope = execute_point(point, collect_trace=True)
    assert envelope["status"] == "ok", envelope.get("error")
    return envelope


# ------------------------------------------------------------------ the tracer


def test_spans_instants_flows_and_aggregates():
    t = Tracer()
    t.begin(0, 0, "outer", "app", 1.0)
    t.begin(0, 0, "inner", "app", 2.0)
    t.end(0, 0, 3.0)
    t.end(0, 0, 5.0)
    t.instant(1, 0, "mark", "vt.confsync", 2.5)
    flow = t.new_flow()
    t.flow_start(0, 0, flow, "send", "mpi", 2.0)
    t.flow_end(1, 0, flow, "recv", "mpi", 2.2)
    t.count("vt.records", 7)

    snap = t.snapshot()
    assert snap["kind"] == "repro.trace" and snap["version"] == 1
    assert snap["dropped_events"] == 0
    assert snap["totals"]["app"] == {"count": 2, "total": pytest.approx(5.0)}
    assert snap["counts"]["vt.records"] == 7
    track0 = next(tr for tr in snap["tracks"] if tr["pid"] == 0)
    spans = [e for e in track0["events"] if e["ph"] == "span"]
    # LIFO close order: inner lands before outer.
    assert [e["name"] for e in spans] == ["inner", "outer"]
    assert spans[1]["dur"] == pytest.approx(4.0)


def test_unmatched_end_is_ignored_and_open_spans_reported():
    t = Tracer()
    t.end(0, 0, 1.0)  # nothing open: tolerated, not an error
    t.begin(0, 0, "left-open", "app", 0.5)
    snap = t.snapshot()
    assert snap["tracks"][0]["events"] == []
    assert snap["tracks"][0]["open_spans"] == 1


def test_ring_buffer_bounds_and_drop_counter():
    roomy = Tracer(capacity=100)
    for i in range(50):
        roomy.complete(0, 0, f"e{i}", "app", float(i), float(i) + 0.5)
    assert roomy.dropped_events == 0
    assert len(roomy.tracks[(0, 0)]) == 50

    tight = Tracer(capacity=8)
    for i in range(50):
        tight.complete(0, 0, f"e{i}", "app", float(i), float(i) + 0.5)
    assert tight.dropped_events == 50 - 8
    assert len(tight.tracks[(0, 0)]) == 8
    # Aggregates are drop-immune: all 50 spans survive in totals.
    assert tight.totals["app"][0] == 50

    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_detail_knob_and_null_tracer():
    assert Tracer(detail="fine").fine
    assert not Tracer(detail="coarse").fine
    with pytest.raises(ValueError):
        Tracer(detail="loud")

    null = NullTracer()
    assert not null.enabled and not null.fine
    null.begin(0, 0, "x", "app", 0.0)
    null.end(0, 0, 1.0)
    null.count("n")
    assert null.new_flow() == 0
    assert null.snapshot()["tracks"] == []


def test_enable_disable_and_tracing_context_restore():
    assert isinstance(obs_trace.get(), NullTracer)
    live = obs_trace.enable()
    assert obs_trace.get() is live and obs_trace.is_enabled()
    assert obs_trace.disable() is live
    assert not obs_trace.is_enabled()

    with obs_trace.tracing(capacity=32, detail="coarse") as t:
        assert obs_trace.get() is t
        assert t.capacity == 32 and not t.fine
    assert not obs_trace.is_enabled()


# ------------------------------------------------- flow / span integrity


def test_flow_edges_and_span_nesting_integrity():
    """Property test over a real traced run: every recv-side flow edge
    has exactly one matching send, and per-track spans never partially
    overlap (they nest or are disjoint)."""
    doc = _traced_policy_run()["trace"]
    assert doc["dropped_events"] == 0

    pairs = flow_pairs(doc)
    assert pairs, "a 2-rank MPI run must record flow edges"
    for fid, pair in pairs.items():
        assert len(pair["starts"]) == 1, f"flow {fid} has multiple sends"
        assert len(pair["ends"]) >= 1, f"flow {fid} was never delivered"
        start = pair["starts"][0]
        for end in pair["ends"]:
            assert end["ts"] >= start["ts"], "effect precedes cause"

    eps = 1e-9
    for track in doc["tracks"]:
        spans = sorted(
            ((e["ts"], e["ts"] + e["dur"]) for e in track["events"]
             if e["ph"] == "span"),
            key=lambda iv: (iv[0], -iv[1]),
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            nested = e2 <= e1 + eps
            disjoint = s2 >= e1 - eps
            assert nested or disjoint, (
                f"{track['name']}: spans ({s1},{e1}) and ({s2},{e2}) "
                f"partially overlap"
            )


def test_dropped_events_positive_when_capacity_exceeded():
    point = SweepPoint.policy_cell("smg98", "Full", 2, scale=0.02)
    envelope = execute_point(point, collect_trace=True, trace_capacity=16)
    doc = envelope["trace"]
    assert doc["dropped_events"] > 0
    for track in doc["tracks"]:
        assert len(track["events"]) <= 16


# ------------------------------------------------------------- worker / runner


def test_worker_envelope_has_no_trace_by_default():
    envelope = execute_point(SweepPoint.confsync(2, reps=2))
    assert "trace" not in envelope


def test_payloads_identical_with_and_without_tracing():
    point = SweepPoint.policy_cell("smg98", "Dynamic", 2, scale=0.02)
    plain = execute_point(point)
    traced = execute_point(point, collect_trace=True)
    assert plain["payload"] == traced["payload"]


def test_runner_keeps_traces_out_of_cache(tmp_path):
    point = SweepPoint.confsync(2, reps=2)
    first = SweepRunner(cache=tmp_path, collect_trace=True)
    assert first.run([point])[point].ok
    assert point.label in first.traces

    # The cache entry carries no trace, so a cache-served re-run has none.
    second = SweepRunner(cache=tmp_path, collect_trace=True)
    result = second.run([point])[point]
    assert result.ok and result.cached
    assert second.traces == {}


def test_runner_collects_confsync_epoch_events():
    runner = SweepRunner(collect_trace=True)
    point = SweepPoint.confsync(2, reps=2)
    assert runner.run([point])[point].ok
    doc = runner.traces[point.label]
    names = {
        e["name"] for tr in doc["tracks"] for e in tr["events"]
    }
    assert "VT_confsync" in names


# ------------------------------------------------------------------- exporters


def test_chrome_trace_round_trip_is_schema_valid(tmp_path):
    doc = _traced_policy_run()["trace"]
    path = tmp_path / "run.chrome.json"
    write_chrome_trace(doc, str(path))
    loaded = json.loads(path.read_text(encoding="utf-8"))
    validate_chrome_trace(loaded)

    events = loaded["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "s", "f"} <= phases
    # Simulated seconds scaled to microseconds.
    spans = [e for e in events if e["ph"] == "X"]
    assert max(e["ts"] for e in spans) > 1e3


def test_chrome_validator_rejects_malformed_documents():
    with pytest.raises(ValueError):
        validate_chrome_trace({"events": []})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [{"ph": "??"}]})
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": [
            {"ph": "f", "name": "n", "cat": "c", "pid": 0, "tid": 0,
             "ts": 1.0, "id": 9, "bp": "e"},
        ]})  # flow finish without a start
    with pytest.raises(ValueError):
        to_chrome_trace({"kind": "something-else"})


def test_svg_timeline_renders_tracks_and_flows():
    doc = _traced_policy_run()["trace"]
    svg = trace_to_svg(doc, title="smoke")
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "smoke" in svg
    assert "rank 0" in svg and "dynprof" in svg


# -------------------------------------------------------------------- analysis


def test_track_utilization_unions_overlapping_spans():
    t = Tracer()
    t.complete(0, 0, "a", "app", 0.0, 2.0)
    t.complete(0, 0, "b", "app", 1.0, 3.0)  # overlaps a
    t.complete(0, 0, "c", "app", 5.0, 6.0)
    rows = track_utilization(t.snapshot())
    assert rows[0]["busy"] == pytest.approx(4.0)  # [0,3] + [5,6]
    assert rows[0]["elapsed"] == pytest.approx(6.0)


def test_critical_path_follows_flow_edges_across_tracks():
    t = Tracer()
    t.complete(0, 0, "compute0", "app", 0.0, 1.0)
    flow = t.new_flow()
    t.flow_start(0, 0, flow, "send", "mpi", 1.0)
    t.flow_end(1, 0, flow, "recv", "mpi", 1.5)
    t.complete(1, 0, "compute1", "app", 1.5, 4.0)
    cp = critical_path(t.snapshot())
    assert cp["tracks_visited"] == 2
    assert [e["name"] for e in cp["path"]] == [
        "compute0", "send", "recv", "compute1",
    ]
    assert cp["elapsed"] == pytest.approx(4.0)
    # Deterministic: same document, same path.
    again = critical_path(t.snapshot())
    assert again["path"] == cp["path"]


def test_critical_path_on_real_run_spans_multiple_ranks():
    doc = _traced_policy_run()["trace"]
    cp = critical_path(doc)
    assert cp["path"] and cp["tracks_visited"] >= 2
    ts = [e["ts"] for e in cp["path"]]
    assert ts == sorted(ts)


def test_perturbation_report_fig8_ordering():
    """The Figure 8 story: dynamic instrumentation perturbs far less
    than full static instrumentation."""
    shares = {}
    for policy in ("Full", "Dynamic", "None"):
        env = _traced_policy_run(policy=policy)
        rep = perturbation_report(env["trace"],
                                  elapsed=env["payload"]["time"])
        shares[policy] = rep["instrumented_share"]
    assert shares["None"] == 0.0
    assert shares["Dynamic"] < shares["Full"] / 100
    assert 0.0 < shares["Full"] < 1.0


def test_render_trace_summary_sections():
    env = _traced_policy_run()
    text = render_trace_summary(env["trace"], elapsed=env["payload"]["time"])
    assert "critical path:" in text
    assert "perturbation attribution" in text
    assert "instrumentation share:" in text

    from repro.analysis import render_causal_trace_report

    assert render_causal_trace_report(
        env["trace"], elapsed=env["payload"]["time"]
    ) == text


# ------------------------------------------------------- trace-volume model


def test_tracer_volume_matches_analytic_model_on_two_apps():
    from repro.experiments.tracevol import run_tracevol_crosscheck

    rows = run_tracevol_crosscheck(apps=["sweep3d", "sppm"], n_cpus=2,
                                   scale=0.02)
    assert len(rows) == 2
    for row in rows:
        assert row["analytic_bytes"] > 0
        assert row["rel_err"] < 0.02, row


# ------------------------------------------------------------------ CLI level


def test_cli_outputs_bit_identical_with_and_without_trace(tmp_path, capsys):
    from repro.experiments.cli import sweep_main

    argv = ["--apps", "smg98", "--policies", "Dynamic", "--cpus", "2",
            "--scale", "0.02", "--no-cache"]
    assert sweep_main(list(argv)) == 0
    plain = capsys.readouterr().out
    assert sweep_main(argv + ["--trace", str(tmp_path)]) == 0
    traced = capsys.readouterr().out
    assert plain == traced


def test_cli_trace_dir_writes_schema_valid_documents(tmp_path, capsys):
    from repro.experiments.cli import sweep_main

    trace_dir = tmp_path / "traces"
    rc = sweep_main([
        "--apps", "smg98", "--policies", "Dynamic", "--cpus", "2",
        "--scale", "0.02", "--no-cache", "--json",
        "--trace", str(trace_dir),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    # --json keeps stderr clean of the output notes.
    assert "wrote" not in captured.err

    doc = json.loads(captured.out)
    paths = doc["outputs"]["traces"]
    assert len(paths) == 1 and paths[0].endswith(".trace.json")
    trace_doc = json.loads(
        (trace_dir / paths[0].split("/")[-1]).read_text(encoding="utf-8")
    )
    assert trace_doc["kind"] == "repro.trace"
    validate_chrome_trace(to_chrome_trace(trace_doc))


def test_cli_trace_subcommand_prints_summary(tmp_path, capsys):
    from repro.experiments.cli import trace_main

    chrome = tmp_path / "t.chrome.json"
    svg = tmp_path / "t.svg"
    rc = trace_main([
        "--app", "smg98", "--policy", "Dynamic", "--cpus", "2",
        "--scale", "0.02", "--chrome", str(chrome), "--svg", str(svg),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path:" in out
    assert "perturbation attribution" in out
    validate_chrome_trace(json.loads(chrome.read_text(encoding="utf-8")))
    assert svg.read_text(encoding="utf-8").startswith("<svg")


def test_telemetry_reports_full_cache_key():
    import io

    stream = io.StringIO()
    runner = SweepRunner(telemetry=stream)
    point = SweepPoint.confsync(2, reps=2)
    assert runner.run([point])[point].ok
    events = [json.loads(line) for line in stream.getvalue().splitlines()]
    pt = next(e for e in events if e["event"] == "point")
    assert len(pt["cache_key"]) == 64
    assert pt["cache_key"].startswith(pt["key"])


# ------------------------------------------------------------ ring compaction


def _looping_tracer(capacity, compact, iterations=400):
    """A synthetic timestep loop against a tight ring."""
    tracer = Tracer(capacity=capacity, compact=compact)
    t = 0.0
    for _ in range(iterations):
        tracer.complete(0, 0, "kernel", "vt.func", t, t + 0.4)
        tracer.instant(0, 0, "tick", "app", t + 0.5)
        t += 1.0
    return tracer


def test_compact_ring_folds_instead_of_dropping():
    plain = _looping_tracer(capacity=16, compact=False)
    folding = _looping_tracer(capacity=16, compact=True)
    # Same capacity, same stream: folding sheds redundancy, not data.
    assert plain.dropped_events > 0
    assert folding.dropped_events < plain.dropped_events
    assert folding.folded_events > 0
    assert plain.folded_events == 0


def test_compact_ring_preserves_occurrence_counts():
    tracer = _looping_tracer(capacity=16, compact=True, iterations=400)
    assert tracer.dropped_events == 0
    buf = tracer.tracks[(0, 0)]
    by_name = {"kernel": 0, "tick": 0}
    for event in buf.events:
        count = (event.args or {}).get("folded", 1)
        by_name[event.name] += count
    # Every one of the 400 iterations is accounted for: survivors carry
    # args["folded"] sums, nothing was evicted.
    assert by_name == {"kernel": 400, "tick": 400}


def test_folded_span_stretches_to_cover_the_interval():
    tracer = _looping_tracer(capacity=16, compact=True, iterations=100)
    spans = [e for e in tracer.tracks[(0, 0)].events if e.ph == "span"]
    widest = max(spans, key=lambda e: e.dur)
    folded = (widest.args or {}).get("folded", 1)
    assert folded > 1
    # A fold of k iterations starting at its first ts must span to the
    # last iteration's end: (k - 1) whole periods plus the span body.
    assert widest.dur == pytest.approx((folded - 1) * 1.0 + 0.4)


def test_unfoldable_stream_still_drops_honestly():
    tracer = Tracer(capacity=8, compact=True)
    for i in range(50):
        tracer.complete(0, 0, f"unique{i}", "app", float(i), i + 0.5)
    assert tracer.folded_events == 0
    assert tracer.dropped_events == 50 - 8


def test_snapshot_reports_compaction_state():
    doc = _looping_tracer(capacity=16, compact=True).snapshot()
    assert doc["compact"] is True
    assert doc["folded_events"] == doc["tracks"][0]["folded"] > 0
    plain = Tracer().snapshot()
    assert plain["compact"] is False and plain["folded_events"] == 0
    null = NullTracer().snapshot()
    assert null["compact"] is False and null["folded_events"] == 0


def test_tracing_context_threads_compact_through():
    with obs_trace.tracing(capacity=16, compact=True) as tracer:
        assert tracer.compact
        assert obs_trace.get() is tracer
    with obs_trace.tracing(capacity=16) as tracer:
        assert not tracer.compact


def test_real_run_drops_less_with_ring_compaction():
    point = SweepPoint.policy_cell("smg98", "Full", 2, scale=0.05)
    plain = execute_point(point, collect_trace=True, trace_capacity=256)
    folding = execute_point(point, collect_trace=True, trace_capacity=256,
                            trace_compact=True)
    assert plain["status"] == folding["status"] == "ok"
    d_plain = plain["trace"]["dropped_events"]
    d_fold = folding["trace"]["dropped_events"]
    assert d_plain > 0
    assert d_fold < d_plain
    assert folding["trace"]["folded_events"] > 0
    # The simulation itself is untouched: identical payloads.
    assert plain["payload"] == folding["payload"]
