"""repro.obs.prom: the text exposition renderer, checked by a
dependency-free validator of format 0.0.4 (no prometheus client
library — the parser below is the test's own)."""

import re

import pytest

from repro.obs import MetricsRegistry
from repro.obs.prom import (
    CONTENT_TYPE,
    format_value,
    render_family,
    render_snapshot,
    sanitize_name,
)

_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>-?\d+(?:\.\d+)?(?:e[+-]?\d+)?|[+]Inf|-Inf|NaN)$"
)
_LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def parse_exposition(text):
    """Validate an exposition document; returns {family: (type, {name+labels: value})}.

    Enforces the 0.0.4 shape: every sample line parses, every sample's
    family was TYPE-declared above it, names are valid, no family is
    declared twice.
    """
    families = {}
    types = {}
    current = None
    assert text == "" or text.endswith("\n"), "document must end in newline"
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name = line.split()[2]
            assert _NAME.match(name), f"bad family name {name!r}"
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            assert kind in ("counter", "gauge", "histogram", "summary",
                            "untyped"), f"bad type {kind!r}"
            assert name not in types, f"family {name} TYPE-declared twice"
            types[name] = kind
            families[name] = {}
            current = name
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        m = _SAMPLE.match(line)
        assert m, f"unparseable sample line {line!r}"
        sample_name = m.group("name")
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                assert _LABEL.match(pair), f"bad label pair {pair!r}"
        # A sample belongs to the most recent TYPE'd family (suffixes
        # _bucket/_sum/_count/_max included).
        assert current is not None and sample_name.startswith(current.rstrip(
            "_")) or any(sample_name.startswith(f) for f in families), \
            f"sample {sample_name} precedes any TYPE declaration"
        value = m.group("value")
        v = {"Inf": float("inf"), "+Inf": float("inf"),
             "-Inf": float("-inf")}.get(value, None)
        if v is None:
            v = float("nan") if value == "NaN" else float(value)
        key = sample_name + ("{" + m.group("labels") + "}"
                             if m.group("labels") else "")
        families.setdefault(current, {})[key] = v
    return {name: (types[name], families.get(name, {})) for name in types}


# ------------------------------------------------------------------ helpers


def test_sanitize_name_and_values():
    assert sanitize_name("vt.flush") == "repro_vt_flush"
    assert sanitize_name("svc.cache.http.degraded") == \
        "repro_svc_cache_http_degraded"
    assert sanitize_name("9lives", prefix="") == "_9lives"
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("nan")) == "NaN"
    assert "version=0.0.4" in CONTENT_TYPE


def test_render_family_shape():
    lines = render_family("repro_x", "counter", "help text",
                          [("_total", None, 2.0)])
    assert lines == ["# HELP repro_x help text",
                     "# TYPE repro_x counter",
                     "repro_x_total 2"]


# ----------------------------------------------------------- full snapshots


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.inc("vt.records", 1200)
    reg.inc("svc.points_served", 3)
    reg.gauge_max("svc.queue_depth", 7)
    reg.observe("msg.bytes", 8.0, edges=(16, 256))
    reg.observe("msg.bytes", 300.0, edges=(16, 256))
    reg.observe("msg.bytes", 20.0, edges=(16, 256))
    reg.span("vt.flush", 0.5)
    reg.span("vt.flush", 1.5)
    return reg


def test_snapshot_renders_and_validates(registry):
    text = render_snapshot(registry.snapshot())
    fams = parse_exposition(text)
    assert fams["repro_vt_records_total"] == (
        "counter", {"repro_vt_records_total": 1200.0})
    assert fams["repro_svc_queue_depth"] == (
        "gauge", {"repro_svc_queue_depth": 7.0})


def test_histogram_buckets_are_cumulative_and_end_at_inf(registry):
    text = render_snapshot(registry.snapshot())
    fams = parse_exposition(text)
    kind, samples = fams["repro_msg_bytes"]
    assert kind == "histogram"
    assert samples['repro_msg_bytes_bucket{le="16"}'] == 1.0
    assert samples['repro_msg_bytes_bucket{le="256"}'] == 2.0
    assert samples['repro_msg_bytes_bucket{le="+Inf"}'] == 3.0
    # +Inf bucket == _count (the format's own invariant).
    assert samples["repro_msg_bytes_count"] == 3.0
    assert samples["repro_msg_bytes_sum"] == 328.0


def test_spans_render_as_summary_plus_max_gauge(registry):
    text = render_snapshot(registry.snapshot())
    fams = parse_exposition(text)
    kind, samples = fams["repro_vt_flush"]
    assert kind == "summary"
    assert samples["repro_vt_flush_count"] == 2.0
    assert samples["repro_vt_flush_sum"] == 2.0
    assert fams["repro_vt_flush_max"] == (
        "gauge", {"repro_vt_flush_max": 1.5})


def test_spans_accept_live_list_form():
    text = render_snapshot({"spans": {"w": [2, 3.5, 2.5]}})
    fams = parse_exposition(text)
    assert fams["repro_w"][1]["repro_w_sum"] == 3.5
    assert fams["repro_w_max"][1]["repro_w_max"] == 2.5


def test_empty_snapshot_renders_empty_document():
    assert render_snapshot({}) == ""
    assert parse_exposition("") == {}


def test_extra_help_overrides_generic_line():
    text = render_snapshot({"counters": {"a.b": 1}},
                           extra_help={"a.b": "my help"})
    assert "# HELP repro_a_b_total my help" in text
