"""repro.obs.timeseries: rings, the lossless codec, sampler semantics,
and the disabled-mode zero-cost guarantee."""

import math

import pytest

from repro import obs
from repro.obs import timeseries
from repro.obs.timeseries import (
    MetricsSampler,
    NULL_RECORDER,
    SeriesRing,
    TimeSeriesRecorder,
    decode_series,
    overhead_series,
    series_rows,
    timeseries_to_csv,
)
from repro.simt import Environment


@pytest.fixture(autouse=True)
def _sampling_stays_off():
    assert not timeseries.is_enabled()
    yield
    timeseries.disable()
    assert not timeseries.is_enabled()


# ------------------------------------------------------------------ the ring


def test_ring_bounds_and_counts_evictions():
    ring = SeriesRing("delta", capacity=3)
    for i in range(5):
        ring.append(float(i), 1.0)
    assert len(ring) == 3
    assert ring.dropped == 2
    assert ring.times == [2.0, 3.0, 4.0]
    # The running total survives eviction.
    assert ring.total == 5.0


def test_ring_codec_round_trips_bit_for_bit():
    ring = SeriesRing("rate", capacity=100)
    values = [0.0, 1e-300, math.pi, -2.5, 1e17, 0.1 + 0.2]
    for i, v in enumerate(values):
        ring.append(i * 0.25, v)
    doc = ring.to_dict()
    assert doc["codec"] == "dod-varint-b64"
    times, decoded = decode_series(doc)
    assert times == [i * 0.25 for i in range(len(values))]
    # Bit-exact, not approximately equal.
    assert [v.hex() for v in decoded] == [v.hex() for v in values]


def test_decode_rejects_unknown_codec_and_trailing_bytes():
    ring = SeriesRing("delta", capacity=4)
    ring.append(1.0, 2.0)
    doc = ring.to_dict()
    with pytest.raises(ValueError, match="codec"):
        decode_series({**doc, "codec": "gzip"})
    with pytest.raises(ValueError, match="trailing"):
        # Claiming fewer samples than were encoded leaves bytes behind.
        decode_series({**doc, "n": 0})


def test_recorder_snapshot_round_trips_through_rows():
    rec = TimeSeriesRecorder(interval=0.5, capacity=16)
    rec.record("counter:x", "delta", 0.5, 3.0)
    rec.record("counter:x", "delta", 1.0, 2.0)
    rec.record("gauge:y", "level", 1.0, 7.0)
    rec.samples = 2
    doc = rec.snapshot()
    rows = list(series_rows(doc))
    assert rows == [
        ("counter:x", "delta", 0.5, 3.0),
        ("counter:x", "delta", 1.0, 2.0),
        ("gauge:y", "level", 1.0, 7.0),
    ]
    csv = timeseries_to_csv({"cell": doc})
    assert csv.splitlines()[0] == "label,series,kind,t,value"
    assert "cell,counter:x,delta,0.5,3.0" in csv


def test_recorder_validates_parameters():
    with pytest.raises(ValueError):
        TimeSeriesRecorder(interval=0.0)
    with pytest.raises(ValueError):
        TimeSeriesRecorder(capacity=0)


# ------------------------------------------------------- lifecycle discipline


def test_null_recorder_is_the_default_and_inert():
    rec = timeseries.get()
    assert rec is NULL_RECORDER
    assert not rec.enabled
    rec.record("counter:x", "delta", 1.0, 1.0)  # no-op, no error
    assert rec.snapshot()["series"] == {}


def test_sampling_context_restores_previous_recorder():
    with timeseries.sampling(interval=0.1) as rec:
        assert timeseries.get() is rec
        assert timeseries.is_enabled()
        with timeseries.sampling(interval=0.2) as inner:
            assert timeseries.get() is inner
        assert timeseries.get() is rec
    assert timeseries.get() is NULL_RECORDER


def test_install_returns_none_and_schedules_nothing_when_disabled():
    env = Environment()
    assert MetricsSampler.install(env) is None
    # Nothing pending: the sampler-off simulation is event-free.
    assert env.run() is None
    assert env.now == 0.0


# ------------------------------------------------------------- the sampler


def _drive(env, sampler, ticks=8, dt=0.25):
    """Run a toy workload, then the documented shutdown sequence."""
    env.run(until=env.timeout(ticks * dt))
    sampler.stop()
    env.run()
    sampler.finish()


def test_sampler_diffs_counters_gauges_spans():
    with obs.collecting() as reg, timeseries.sampling(interval=1.0) as rec:
        env = Environment()

        def workload():
            for i in range(4):
                reg.inc("work.items", 2)
                reg.gauge_set("work.depth", i)
                reg.span("work.busy", 0.125)
                yield env.timeout(1.0)

        env.process(workload())
        sampler = MetricsSampler.install(env)
        assert sampler is not None
        _drive(env, sampler, ticks=4, dt=1.0)

        doc = rec.snapshot()
        t, v = decode_series(doc["series"]["counter:work.items"])
        assert sum(v) == reg.counters["work.items"] == 8
        assert all(x > 0 for x in v)  # deltas, not cumulative levels
        _, levels = decode_series(doc["series"]["gauge:work.depth"])
        assert levels[-1] == reg.gauges["work.depth"]
        _, busy = decode_series(doc["series"]["span:work.busy"])
        assert sum(busy) == pytest.approx(reg.spans["work.busy"][1])
        # The sampler observes itself in the registry it samples.
        assert reg.counters["obs.sampler_ticks"] == doc["samples"]


def test_sampler_probe_series_telescope_to_cumulative_totals():
    stats = {"f": [0, 0.0, 0.0], "g": [0, 0.0, 0.0]}

    def probe_stats():
        return [(name, row[0], row[1], row[2])
                for name, row in sorted(stats.items())]

    with obs.collecting(), timeseries.sampling(interval=0.5) as rec:
        env = Environment()

        def workload():
            for i in range(6):
                stats["f"][0] += 1
                stats["f"][2] += 0.01
                if i % 2:
                    stats["g"][0] += 3
                    stats["g"][2] += 0.05
                yield env.timeout(0.5)

        env.process(workload())
        sampler = MetricsSampler.install(env, probe_stats=probe_stats)
        _drive(env, sampler, ticks=6, dt=0.5)

        doc = rec.snapshot()
        _, f_deltas = decode_series(doc["series"]["probe:f"])
        assert sum(f_deltas) == pytest.approx(stats["f"][2])
        assert doc["probes"]["f"] == {"count": 6, "time": 0.0,
                                      "overhead": pytest.approx(0.06)}
        times, cumulative = overhead_series(doc)
        assert cumulative[-1] == pytest.approx(stats["f"][2] + stats["g"][2])
        assert times == sorted(times)
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))


def test_finish_is_idempotent_and_captures_the_tail():
    with obs.collecting() as reg, timeseries.sampling(interval=10.0) as rec:
        env = Environment()

        def workload():
            yield env.timeout(1.0)
            reg.inc("late.events", 7)  # after the last regular tick

        env.process(workload())
        sampler = MetricsSampler.install(env)
        # interval=10 means no regular tick ever fires before the
        # workload ends at t=1; only the terminal sample sees it.
        env.run(until=env.timeout(1.0))
        sampler.stop()
        env.run()
        sampler.finish()
        sampler.finish()  # idempotent
        doc = rec.snapshot()
        _, v = decode_series(doc["series"]["counter:late.events"])
        assert sum(v) == 7  # the terminal sample caught it
        assert doc["samples"] == rec.samples


def test_sampler_ring_wrap_is_counted_never_silent():
    with obs.collecting() as reg:
        with timeseries.sampling(interval=0.1, capacity=4) as rec:
            env = Environment()

            def workload():
                for _ in range(12):
                    reg.inc("hot")
                    yield env.timeout(0.1)

            env.process(workload())
            sampler = MetricsSampler.install(env)
            _drive(env, sampler, ticks=12, dt=0.1)
            doc = rec.snapshot()
            ring = doc["series"]["counter:hot"]
            assert ring["n"] == 4
            assert ring["dropped"] > 0
            # The running total still carries the exact cumulative sum.
            assert ring["total"] == reg.counters["hot"]
