"""Tests for the postmortem analysis layer (timeline/profile/report)."""

import pytest

from repro.analysis import ProfileView, Timeline, render_profile, render_timeline, render_trace_report
from repro.vt import ThreadTraceBuffer, TraceFile


def build_trace():
    """Hand-built trace: main(0..10) calling solve(2..6) on p0, batch
    records on p1, a suspension on p0."""
    trace = TraceFile("toy")
    trace.register_function(1, "main")
    trace.register_function(2, "solve")
    trace.register_function(3, "kernel")

    b0 = ThreadTraceBuffer(0, 0)
    b0.enter(1, 0.0)
    b0.enter(2, 2.0)
    b0.leave(2, 6.0)
    b0.leave(1, 10.0)
    b0.message("send", 1, 7, 100, 1.0)
    b0.marker("suspended", 7.0, 9.0)
    trace.add_buffer(b0)

    b1 = ThreadTraceBuffer(1, 0)
    b1.enter(1, 0.0)
    b1.batch_pair(3, 100, 1.0, 0.01, 0.008)
    b1.leave(1, 10.0)
    trace.add_buffer(b1)
    return trace


def test_timeline_builds_bars_and_intervals():
    tl = Timeline(build_trace())
    assert tl.n_bars == 2
    bar0 = tl.bar(0)
    names = [(iv.name, iv.depth) for iv in bar0.intervals]
    assert ("main", 0) in names
    assert ("solve", 1) in names
    assert bar0.messages[0].kind == "send"
    assert len(bar0.inactivity) == 1
    assert bar0.inactivity[0].duration == pytest.approx(2.0)


def test_timeline_batch_aggregation():
    tl = Timeline(build_trace(), expand_batches_up_to=50)
    bar1 = tl.bar(1)
    kernel = [iv for iv in bar1.intervals if iv.name == "kernel"]
    assert len(kernel) == 1  # 100 > 50: kept aggregated
    assert kernel[0].count == 100

    tl2 = Timeline(build_trace(), expand_batches_up_to=200)
    kernels = [iv for iv in tl2.bar(1).intervals if iv.name == "kernel"]
    assert len(kernels) == 100  # expanded
    assert kernels[0].start == pytest.approx(1.0)
    assert kernels[1].start == pytest.approx(1.01)


def test_timeline_span_and_inactivity():
    tl = Timeline(build_trace())
    t0, t1 = tl.span
    assert t0 == 0.0 and t1 == pytest.approx(10.0)
    assert tl.total_inactivity() == pytest.approx(2.0)


def test_profile_inclusive_exclusive():
    pv = ProfileView(build_trace())
    main = pv.of("main")
    solve = pv.of("solve")
    # p0 main: 10s inclusive, 6s exclusive (solve takes 4s);
    # p1 main: 10s inclusive, 10 - 100*0.008 exclusive.
    assert main.inclusive == pytest.approx(20.0)
    assert main.exclusive == pytest.approx(6.0 + (10.0 - 0.8))
    assert solve.inclusive == pytest.approx(4.0)
    kernel = pv.of("kernel")
    assert kernel.count == 100
    assert kernel.inclusive == pytest.approx(0.8)
    assert kernel.exclusive == pytest.approx(0.8)


def test_profile_excludes_suspension():
    """Section 5.1: analysis must disregard suspension periods."""
    pv = ProfileView(build_trace(), exclude_inactivity=True)
    main = pv.of("main")
    # p0 main loses the 2s suspension: 8s inclusive there + 10s on p1.
    assert main.inclusive == pytest.approx(18.0)
    # solve (2..6) does not overlap the suspension (7..9).
    assert pv.of("solve").inclusive == pytest.approx(4.0)


def test_profile_table_sorted_by_exclusive():
    pv = ProfileView(build_trace())
    table = pv.table()
    assert table[0].name == "main"
    assert pv.top(1) == [table[0]]
    with pytest.raises(KeyError):
        pv.of("nonexistent")


def test_render_timeline_contains_lanes():
    text = render_timeline(Timeline(build_trace()), width=60)
    assert "p0" in text and "p1" in text
    assert "#" in text and "m" in text
    assert "legend" in text


def test_render_profile_table():
    text = render_profile(ProfileView(build_trace()))
    assert "main" in text and "solve" in text and "excl%" in text


def test_render_trace_report_rates():
    trace = build_trace()
    text = render_trace_report(trace, wall_time=10.0)
    assert "raw records" in text
    assert "MB/s" in text


def test_empty_timeline_renders():
    trace = TraceFile("empty")
    assert "empty" in render_timeline(Timeline(trace))


def test_integration_with_dynamic_run():
    """Timeline over a real dynprof-instrumented run shows the solver."""
    from repro.apps import SWEEP3D
    from repro.cluster import Cluster, POWER3_SP
    from repro.dynprof import DynProf
    from repro.jobs import MpiJob
    from repro.simt import Environment

    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=5)
    exe = SWEEP3D.build_exe(False)
    job = MpiJob(env, cluster, exe, 2, SWEEP3D.make_program(2, 0.05),
                 start_suspended=True)
    tool = DynProf(env, cluster, job,
                   file_contents={"t.txt": "sweep\noctant\ninner\n"})
    proc = tool.run_script("insert-file t.txt\nstart\nquit\n")
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()

    tl = Timeline(job.trace)
    assert tl.n_bars == 2
    pv = ProfileView(job.trace)
    assert pv.of("inner").count >= 1
    assert pv.of("sweep").count >= 8
    # inner includes sweep: inclusive ordering holds.
    assert pv.of("inner").inclusive >= pv.of("sweep").inclusive


# ------------------------------------------------------- message statistics


def test_message_stats_from_trace():
    from repro.analysis import MessageStats, render_message_matrix
    from repro.vt import ThreadTraceBuffer, TraceFile

    trace = TraceFile("msgs")
    b0 = ThreadTraceBuffer(0, 0)
    b0.message("send", 1, 0, 1000, 0.1)
    b0.message("send", 1, 0, 2000, 0.2)
    b0.message("recv", 1, 1, 500, 0.3)
    trace.add_buffer(b0)
    b1 = ThreadTraceBuffer(1, 0)
    b1.message("recv", 0, 0, 1000, 0.15)
    b1.message("recv", 0, 0, 2000, 0.25)
    b1.message("send", 0, 1, 500, 0.28)
    trace.add_buffer(b1)

    stats = MessageStats(trace)
    assert stats.total_messages == 3
    assert stats.total_bytes == 3500
    assert stats.between(0, 1) == (2, 3000)
    assert stats.between(1, 0) == (1, 500)
    assert stats.between(0, 0) == (0, 0)
    assert stats.sent_by(0) == (2, 3000)
    assert stats.received_by(0) == (1, 500)
    assert stats.is_balanced()
    assert stats.heaviest_pairs(1) == [((0, 1), 3000)]
    text = render_message_matrix(stats)
    assert "message matrix" in text and "2.9" in text  # 3000/1024 KB


def test_message_stats_unbalanced_truncated_trace():
    from repro.analysis import MessageStats
    from repro.vt import ThreadTraceBuffer, TraceFile

    trace = TraceFile("cut")
    b0 = ThreadTraceBuffer(0, 0)
    b0.message("send", 1, 0, 100, 0.1)  # never received: in flight
    trace.add_buffer(b0)
    assert not MessageStats(trace).is_balanced()


def test_message_stats_on_real_run():
    from repro.analysis import MessageStats
    from repro.apps import SWEEP3D
    from repro.cluster import Cluster, POWER3_SP
    from repro.jobs import MpiJob
    from repro.simt import Environment

    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=3)
    exe = SWEEP3D.build_exe(True)
    job = MpiJob(env, cluster, exe, 4, SWEEP3D.make_program(4, 0.05))
    job.run()
    env.run()
    stats = MessageStats(job.trace)
    # Wavefront traffic exists and every sent message was received.
    assert stats.total_messages > 0
    assert stats.is_balanced()
    # Sweep traffic flows between grid neighbours only (2x2 grid).
    assert stats.between(0, 3) == (0, 0)
    assert stats.between(0, 1)[0] > 0


# ------------------------------------------------------- SVG export


def test_svg_export_is_wellformed_xml():
    import xml.etree.ElementTree as ET

    from repro.analysis import Timeline, timeline_to_svg

    tl = Timeline(build_trace())
    svg = timeline_to_svg(tl, title="toy run")
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    ns = "{http://www.w3.org/2000/svg}"
    rects = root.iter(f"{ns}rect")
    assert sum(1 for _ in rects) > 4  # lanes + intervals + hatch
    assert "toy run" in svg
    assert "suspended" in svg  # the inactivity tooltip


def test_svg_matches_send_recv_pairs():
    from repro.analysis import Timeline
    from repro.analysis.svg_export import _match_messages
    from repro.vt import ThreadTraceBuffer, TraceFile

    trace = TraceFile("m")
    b0 = ThreadTraceBuffer(0, 0)
    b0.message("send", 1, 5, 100, 1.0)
    b0.message("send", 1, 5, 100, 2.0)
    trace.add_buffer(b0)
    b1 = ThreadTraceBuffer(1, 0)
    b1.message("recv", 0, 5, 100, 1.2)
    b1.message("recv", 0, 5, 100, 2.3)
    trace.add_buffer(b1)
    lines = _match_messages(Timeline(trace))
    assert lines == [(0, 1.0, 1, 1.2), (0, 2.0, 1, 2.3)]


def test_save_timeline_html(tmp_path):
    from repro.analysis import Timeline, save_timeline_html

    path = tmp_path / "run.html"
    save_timeline_html(Timeline(build_trace()), str(path), title="my run")
    doc = path.read_text()
    assert doc.startswith("<!doctype html>")
    assert "my run" in doc and "<svg" in doc
    assert "hatched = suspended" in doc


def test_svg_export_of_real_instrumented_run(tmp_path):
    import xml.etree.ElementTree as ET

    from repro.analysis import Timeline, timeline_to_svg
    from repro.apps import SWEEP3D
    from repro.cluster import Cluster, POWER3_SP
    from repro.jobs import MpiJob
    from repro.simt import Environment

    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=8)
    exe = SWEEP3D.build_exe(True)
    job = MpiJob(env, cluster, exe, 4, SWEEP3D.make_program(4, 0.05))
    job.run()
    env.run()
    svg = timeline_to_svg(Timeline(job.trace))
    ET.fromstring(svg)  # parses
    assert "sweep" in svg
