"""Tests for machine specs and the cost model."""

import pytest

from repro.cluster import IA32_LINUX, POWER3_SP, get_machine


def test_power3_matches_paper_testbed():
    # Section 4.1: 144 SMP nodes, 8 x 375 MHz Power3 each.
    assert POWER3_SP.n_nodes == 144
    assert POWER3_SP.cores_per_node == 8
    assert POWER3_SP.cpu_mhz == 375
    assert POWER3_SP.total_cores() == 144 * 8


def test_ia32_matches_paper_testbed():
    # Section 5: 16-node Pentium III Linux cluster.
    assert IA32_LINUX.n_nodes == 16


def test_get_machine_by_name():
    assert get_machine("power3-sp") is POWER3_SP
    assert get_machine("ia32-linux") is IA32_LINUX


def test_get_machine_unknown_raises():
    with pytest.raises(KeyError, match="unknown machine"):
        get_machine("cray-t3e")


def test_message_time_intra_vs_inter():
    spec = POWER3_SP
    intra = spec.message_time(1024, intra_node=True)
    inter = spec.message_time(1024, intra_node=False)
    assert intra < inter


def test_message_time_scales_with_size():
    spec = POWER3_SP
    small = spec.message_time(100, intra_node=False)
    large = spec.message_time(10_000_000, intra_node=False)
    assert large > small
    # Large message dominated by bandwidth term.
    assert large == pytest.approx(
        spec.net_latency + 10_000_000 / spec.net_bandwidth
    )


def test_active_probe_costs_more_than_lookup():
    # Core premise of the cost model (Section 4.2 of the paper): a
    # deactivated probe still costs a table lookup, an active one costs
    # more (timestamp + record).
    for spec in (POWER3_SP, IA32_LINUX):
        assert spec.vt_active_event_cost > spec.vt_lookup_cost > 0.0


def test_with_overrides_is_a_modified_copy():
    modified = POWER3_SP.with_overrides(net_latency=1e-3)
    assert modified.net_latency == 1e-3
    assert POWER3_SP.net_latency != 1e-3
    assert modified.n_nodes == POWER3_SP.n_nodes


def test_spec_is_frozen():
    with pytest.raises(Exception):
        POWER3_SP.net_latency = 0.0  # type: ignore[misc]
