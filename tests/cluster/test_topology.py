"""Tests for cluster topology, placement, and the interconnect."""

import pytest

from repro.cluster import Cluster, IA32_LINUX, POWER3_SP
from repro.simt import Channel, Environment


def test_nodes_materialize_lazily():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    assert cluster.materialized_nodes == []
    n3 = cluster.node(3)
    assert n3.hostname == "node003"
    assert len(cluster.materialized_nodes) == 1
    assert cluster.node(3) is n3


def test_node_index_bounds():
    env = Environment()
    cluster = Cluster(env, IA32_LINUX, seed=0)
    with pytest.raises(IndexError):
        cluster.node(16)
    with pytest.raises(IndexError):
        cluster.node(-1)


def test_block_placement_fills_nodes():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    placement = cluster.place(16)  # 8 cores/node -> 2 nodes
    assert placement.n_procs == 16
    assert len(placement.nodes_used()) == 2
    assert placement.node_of(0).index == 0
    assert placement.node_of(7).index == 0
    assert placement.node_of(8).index == 1


def test_placement_with_threads_reserves_cores():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    # 4 threads per rank on 8-core nodes -> 2 ranks per node.
    placement = cluster.place(8, threads_per_proc=4)
    assert len(placement.nodes_used()) == 4


def test_placement_rejects_too_many_threads():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    with pytest.raises(ValueError, match="threads per process"):
        cluster.place(1, threads_per_proc=9)


def test_placement_rejects_oversubscription():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    with pytest.raises(ValueError, match="oversubscribes"):
        cluster.place(8, procs_per_node=4, threads_per_proc=4)


def test_placement_rejects_jobs_larger_than_machine():
    env = Environment()
    cluster = Cluster(env, IA32_LINUX, seed=0)
    with pytest.raises(ValueError, match="has only"):
        cluster.place(33, procs_per_node=2)


def test_placement_validation():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    with pytest.raises(ValueError):
        cluster.place(0)
    with pytest.raises(ValueError):
        cluster.place(1, threads_per_proc=0)


def test_interconnect_intra_node_faster_than_inter():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    a, b = cluster.node(0), cluster.node(1)
    intra = cluster.interconnect.transfer_time(a, a, 1024)
    inter = cluster.interconnect.transfer_time(a, b, 1024)
    assert intra < inter


def test_interconnect_jitter_is_deterministic():
    def sample():
        env = Environment()
        cluster = Cluster(env, POWER3_SP, seed=7)
        a, b = cluster.node(0), cluster.node(1)
        return [cluster.interconnect.transfer_time(a, b, 4096) for _ in range(5)]

    assert sample() == sample()


def test_interconnect_deliver_schedules_after_wire_time():
    env = Environment()
    cluster = Cluster(env, POWER3_SP.with_overrides(net_jitter=0.0), seed=0)
    a, b = cluster.node(0), cluster.node(1)
    ch = Channel(env)
    delay = cluster.interconnect.deliver(a, b, 1000, ch, "hello")
    assert delay == pytest.approx(cluster.spec.message_time(1000, False))

    def getter(env):
        v = yield ch.get()
        return (v, env.now)

    p = env.process(getter(env))
    value, when = env.run(until=p)
    assert value == "hello"
    assert when == pytest.approx(delay)


def test_interconnect_counts_traffic():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    a, b = cluster.node(0), cluster.node(1)
    ch = Channel(env)
    cluster.interconnect.deliver(a, b, 500, ch, 1)
    cluster.interconnect.deliver(a, b, 700, ch, 2)
    assert cluster.interconnect.messages_sent == 2
    assert cluster.interconnect.bytes_sent == 1200


def test_negative_message_size_rejected():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    a = cluster.node(0)
    with pytest.raises(ValueError):
        cluster.interconnect.transfer_time(a, a, -1)
