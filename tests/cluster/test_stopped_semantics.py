"""Edge cases of the stopped/blocked semantics behind blocking suspend."""

import pytest

from repro.cluster import Cluster, POWER3_SP, Task
from repro.simt import Channel, Environment


def make_task(env, name="t"):
    cluster = Cluster(env, POWER3_SP.with_overrides(compute_quantum=0.01), seed=1)
    return Task(env, cluster.node(0), name, cluster.spec)


def test_blocked_task_counts_as_stopped_when_suspended():
    env = Environment()
    task = make_task(env)
    ch = Channel(env)

    def body():
        item = yield from task.blocked_wait(ch.get())
        return (item, env.now)

    def controller(env):
        yield env.timeout(1.0)
        task.request_suspend()
        # The task is blocked on the channel: stopped immediately.
        assert task.is_stopped
        ev = task.when_stopped()
        assert ev.triggered
        yield env.timeout(2.0)
        ch.put("wake")       # arrives while still suspended...
        yield env.timeout(2.0)
        task.resume()        # ...and only now may it proceed

    proc = task.start(body())
    env.process(controller(env))
    item, when = env.run(until=proc)
    assert item == "wake"
    # Woke at t=3 but parked until resume at t=5.
    assert when == pytest.approx(5.0)
    assert task.total_suspended_time == pytest.approx(2.0)


def test_when_stopped_fires_on_park():
    env = Environment()
    task = make_task(env)

    def body():
        yield from task.compute(3.0)

    def controller(env):
        yield env.timeout(1.0)
        task.request_suspend()
        stopped = task.when_stopped()
        assert not stopped.triggered  # mid-compute: not yet parked
        yield stopped
        parked_at = env.now
        task.resume()
        return parked_at

    task.start(body())
    c = env.process(controller(env))
    parked_at = env.run(until=c)
    env.run()
    assert 1.0 <= parked_at <= 1.02  # within one (tiny) quantum


def test_when_stopped_fires_on_task_completion():
    env = Environment()
    task = make_task(env)

    def body():
        yield from task.compute(1.0)

    def controller(env):
        yield env.timeout(0.5)
        ev = task.when_stopped()
        yield ev
        return env.now

    task.start(body())
    c = env.process(controller(env))
    # The task never suspends; the watcher releases when it finishes.
    assert env.run(until=c) == pytest.approx(1.0)


def test_stopped_task_executes_nothing_until_resume():
    """The guarantee blocking suspend needs before patching: a stopped
    task runs no application code, even across its wake event."""
    env = Environment()
    task = make_task(env)
    ch = Channel(env)
    executed = []

    def body():
        yield from task.blocked_wait(ch.get())
        executed.append(env.now)  # first app action after the wait

    def controller(env):
        yield env.timeout(1.0)
        task.request_suspend()
        ch.put("x")
        yield env.timeout(5.0)
        assert executed == []  # six seconds later: still nothing ran
        task.resume()

    task.start(body())
    env.process(controller(env))
    env.run()
    assert executed == [pytest.approx(6.0)]


def test_nested_blocked_waits_track_depth():
    env = Environment()
    task = make_task(env)
    outer, inner = Channel(env), Channel(env)

    def body():
        def wait_inner():
            return (yield from task.blocked_wait(inner.get()))

        # blocked_wait nested inside another event wait path.
        yield from task.blocked_wait(env.process(wait_inner()))
        return env.now

    def controller(env):
        yield env.timeout(1.0)
        assert task._blocked_depth >= 1
        inner.put("go")

    proc = task.start(body())
    env.process(controller(env))
    assert env.run(until=proc) == pytest.approx(1.0)
    assert task._blocked_depth == 0
