"""Property-based tests for Task: compute conservation under suspension."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, POWER3_SP, Task
from repro.simt import Environment

SETTINGS = dict(max_examples=25, deadline=None)


@given(
    chunks=st.lists(st.floats(0.01, 2.0), min_size=1, max_size=10),
    suspend_at=st.floats(0.05, 3.0),
    hold=st.floats(0.01, 2.0),
)
@settings(**SETTINGS)
def test_total_time_is_compute_plus_suspension(chunks, suspend_at, hold):
    """However a suspension interleaves with compute, the task's finish
    time equals its total compute plus its total suspended time."""
    env = Environment()
    spec = POWER3_SP.with_overrides(compute_quantum=0.05)
    cluster = Cluster(env, spec, seed=1)
    task = Task(env, cluster.node(0), "t", spec)
    total = sum(chunks)

    def body():
        for c in chunks:
            yield from task.compute(c)
        return env.now

    def controller(env):
        yield env.timeout(suspend_at)
        if task.proc.is_alive:
            task.request_suspend()
            yield env.timeout(hold)
            task.resume()

    proc = task.start(body())
    env.process(controller(env))
    finish = env.run(until=proc)
    env.run()
    assert abs(task.compute_time - total) < 1e-9
    assert abs(finish - (total + task.total_suspended_time)) < 1e-9
    # If the suspension landed while computing, it was observed in full
    # (within one quantum of landing slack).
    if task.suspensions:
        observed = task.total_suspended_time
        assert observed <= hold + 1e-9


@given(
    n_suspends=st.integers(1, 4),
    gap=st.floats(0.2, 1.0),
    hold=st.floats(0.05, 0.5),
)
@settings(**SETTINGS)
def test_repeated_suspensions_accumulate(n_suspends, gap, hold):
    env = Environment()
    spec = POWER3_SP.with_overrides(compute_quantum=0.02)
    cluster = Cluster(env, spec, seed=1)
    task = Task(env, cluster.node(0), "t", spec)
    work = n_suspends * (gap + 1.0)

    def body():
        yield from task.compute(work)
        return env.now

    def controller(env):
        for _ in range(n_suspends):
            yield env.timeout(gap)
            if not task.proc.is_alive:
                return
            task.request_suspend()
            yield task.when_parked()
            yield env.timeout(hold)
            task.resume()

    proc = task.start(body())
    env.process(controller(env))
    finish = env.run(until=proc)
    env.run()
    assert abs(finish - (work + task.total_suspended_time)) < 1e-9
    assert len(task.suspensions) <= n_suspends


@given(offsets=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=5))
@settings(**SETTINGS)
def test_offset_clock_advances_now_not_compute(offsets):
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=1)
    task = Task(env, cluster.node(0), "t", POWER3_SP)
    for off in offsets:
        task.offset_clock(off)
    assert task.compute_time == 0.0
    assert abs(task.now - sum(offsets)) < 1e-9
