"""Tests for the Task execution context: clocks, flushing, suspension."""

import pytest

from repro.cluster import Cluster, POWER3_SP, Task
from repro.simt import Environment


def make_task(env, name="t0", spec=None, node_index=0, bind_core=True):
    cluster = Cluster(env, spec or POWER3_SP, seed=1)
    node = cluster.node(node_index)
    return Task(env, node, name, cluster.spec, bind_core=bind_core), cluster


def test_charge_accrues_locally_without_engine_time():
    env = Environment()
    task, _ = make_task(env)
    task.charge(0.5)
    assert task.pending == 0.5
    assert task.now == 0.5
    assert env.now == 0.0


def test_negative_charge_rejected():
    env = Environment()
    task, _ = make_task(env)
    with pytest.raises(ValueError):
        task.charge(-1.0)


def test_flush_converts_pending_to_engine_time():
    env = Environment()
    task, _ = make_task(env)

    def body():
        task.charge(1.25)
        yield from task.flush()
        return env.now

    p = task.start(body())
    assert env.run(until=p) == pytest.approx(1.25)
    assert task.pending == 0.0


def test_compute_is_charge_plus_flush():
    env = Environment()
    task, _ = make_task(env)

    def body():
        yield from task.compute(2.0)
        yield from task.compute(3.0)
        return env.now

    p = task.start(body())
    assert env.run(until=p) == pytest.approx(5.0)
    assert task.compute_time == pytest.approx(5.0)


def test_task_holds_a_core_for_its_lifetime():
    env = Environment()
    task, cluster = make_task(env)
    node = cluster.node(0)

    def body():
        assert node.cores.in_use == 1
        yield from task.compute(1.0)

    p = task.start(body())
    env.run(until=p)
    env.run()
    assert node.cores.in_use == 0
    assert task.name not in node.tasks


def test_oversubscription_is_an_error():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=1)
    node = cluster.node(0)
    tasks = [
        Task(env, node, f"t{i}", cluster.spec)
        for i in range(node.n_cores + 1)
    ]

    def hold(task):
        yield from task.compute(10.0)

    for t in tasks:
        t.start(hold(t))

    # The 9th task cannot get a core: strict mode surfaces the crash.
    with pytest.raises(Exception) as excinfo:
        env.run()
    assert "oversubscribed" in str(excinfo.getrepr())


def test_suspend_lands_within_one_quantum():
    env = Environment()
    spec = POWER3_SP.with_overrides(compute_quantum=0.1)
    cluster = Cluster(env, spec, seed=1)
    node = cluster.node(0)
    task = Task(env, node, "victim", spec)

    def body():
        yield from task.compute(10.0)
        return env.now

    def suspender(env):
        yield env.timeout(1.0)
        task.request_suspend()
        yield task.when_parked()
        parked_at = env.now
        yield env.timeout(2.0)
        task.resume()
        return parked_at

    p = task.start(body())
    s = env.process(suspender(env))
    parked_at = env.run(until=s)
    # Suspend requested at t=1.0 must land within one quantum (0.1s).
    assert 1.0 <= parked_at <= 1.1 + 1e-9
    total = env.run(until=p)
    # The task still does its full 10s of compute, plus 2s suspended.
    assert total == pytest.approx(12.0)
    assert task.total_suspended_time == pytest.approx(2.0)
    assert len(task.suspensions) == 1


def test_nested_suspend_requires_matching_resumes():
    env = Environment()
    task, _ = make_task(env)

    def body():
        yield from task.compute(5.0)
        return env.now

    def controller(env):
        yield env.timeout(0.5)
        task.request_suspend()
        task.request_suspend()
        yield task.when_parked()
        yield env.timeout(1.0)
        task.resume()  # still suspended: one request outstanding
        yield env.timeout(1.0)
        assert task.is_parked
        task.resume()

    p = task.start(body())
    env.process(controller(env))
    total = env.run(until=p)
    assert total == pytest.approx(7.0, abs=0.06)


def test_resume_without_suspend_raises():
    env = Environment()
    task, _ = make_task(env)
    with pytest.raises(RuntimeError):
        task.resume()


def test_checkpoint_noop_when_not_suspended():
    env = Environment()
    task, _ = make_task(env)

    def body():
        yield from task.checkpoint()
        return env.now

    p = task.start(body())
    assert env.run(until=p) == 0.0
    assert env.events_processed < 10  # no parking machinery engaged


def test_observer_sees_suspension_interval():
    env = Environment()
    task, _ = make_task(env)
    seen = []

    class Obs:
        def on_suspended(self, t, start):
            seen.append(("stop", start))

        def on_resumed(self, t, start, end):
            seen.append(("go", start, end))

    task.observers.append(Obs())

    def body():
        yield from task.compute(1.0)
        yield from task.checkpoint()
        yield from task.compute(1.0)

    def controller(env):
        yield env.timeout(0.98)
        task.request_suspend()
        yield task.when_parked()
        yield env.timeout(0.5)
        task.resume()

    p = task.start(body())
    env.process(controller(env))
    env.run(until=p)
    assert seen[0][0] == "stop"
    assert seen[1][0] == "go"
    start, end = seen[1][1], seen[1][2]
    assert end - start == pytest.approx(0.5, abs=0.05)


def test_start_twice_is_an_error():
    env = Environment()
    task, _ = make_task(env)

    def body():
        yield from task.compute(0.1)

    task.start(body())
    with pytest.raises(RuntimeError, match="already started"):
        task.start(body())
