"""SweepRunner mechanics: fan-out, dedup, failures, retry, telemetry."""

import io
import json

import pytest

from repro.runner import (
    SweepError,
    SweepPoint,
    SweepRunner,
    SweepTelemetry,
    default_jobs,
)


# ----------------------------------------------------------- basic execution


@pytest.mark.parametrize("jobs", [1, 3])
def test_selftest_echo_round_trip(jobs):
    points = [SweepPoint.selftest("echo", value=i) for i in range(5)]
    payloads = SweepRunner(jobs=jobs).run_grid(points)
    assert [p["echo"] for p in payloads] == list(range(5))


def test_duplicate_points_computed_once():
    p = SweepPoint.selftest("echo", value=42)
    telemetry = SweepTelemetry()
    runner = SweepRunner(jobs=1, telemetry=telemetry)
    payloads = runner.run_grid([p, p, p])
    assert len(payloads) == 3 and all(x["echo"] == 42 for x in payloads)
    assert telemetry.total == 1  # one distinct point, one execution


def test_jobs_zero_means_machine_sized_pool():
    assert SweepRunner(jobs=0).jobs == default_jobs() >= 1
    with pytest.raises(ValueError):
        SweepRunner(jobs=-1)


# ----------------------------------------------------------- failure semantics


@pytest.mark.parametrize("jobs", [1, 2])
def test_point_error_is_contained_and_reported(jobs):
    good = SweepPoint.selftest("echo", value=1)
    bad = SweepPoint.selftest("raise")
    results = SweepRunner(jobs=jobs).run([good, bad])
    assert results[good].ok
    assert results[bad].status == "error"
    assert "deliberate failure" in results[bad].error
    with pytest.raises(SweepError) as exc:
        SweepRunner(jobs=jobs).run_grid([good, bad])
    assert "1 sweep point(s) failed" in str(exc.value)


@pytest.mark.parametrize("jobs", [1, 2])
def test_per_point_timeout(jobs):
    slow = SweepPoint.selftest("sleep", seconds=30.0)
    result = SweepRunner(jobs=jobs, timeout=0.3).run([slow])[slow]
    assert result.status == "timeout"
    assert "budget" in result.error


def test_worker_crash_is_retried_once_then_succeeds(tmp_path):
    marker = tmp_path / "crashed-once"
    point = SweepPoint.selftest("crash_once", marker=str(marker))
    result = SweepRunner(jobs=2).run([point])[point]
    assert result.ok
    assert result.payload["retried"] is True
    assert result.attempts == 2
    assert marker.exists()


def test_persistent_worker_crash_fails_after_retry_budget():
    point = SweepPoint.selftest("crash")
    result = SweepRunner(jobs=2).run([point])[point]
    assert result.status == "crashed"
    assert result.attempts == 2  # initial run + one retry


def test_crash_does_not_sink_innocent_points(tmp_path):
    marker = tmp_path / "m"
    crasher = SweepPoint.selftest("crash_once", marker=str(marker))
    bystanders = [SweepPoint.selftest("echo", value=i) for i in range(4)]
    results = SweepRunner(jobs=2).run([crasher] + bystanders)
    assert all(results[p].ok for p in bystanders)
    assert results[crasher].ok


# ----------------------------------------------------------- telemetry


def test_telemetry_json_lines_and_hit_rate(tmp_path):
    points = [SweepPoint.confsync(n, reps=2) for n in (2, 3)]

    out1 = io.StringIO()
    SweepRunner(jobs=1, cache=tmp_path, telemetry=out1).run_grid(points)
    events1 = [json.loads(line) for line in out1.getvalue().splitlines()]
    assert events1[0]["event"] == "sweep_start"
    assert events1[0] == {"event": "sweep_start", "seq": 1, "total": 2,
                          "cached": 0, "jobs": 1}
    # seq is monotonic and gap-free across the whole run.
    assert [e["seq"] for e in events1] == list(range(1, len(events1) + 1))
    point_events = [e for e in events1 if e["event"] == "point"]
    assert len(point_events) == 2
    assert all(e["status"] == "ok" and e["cached"] is False
               and e["sim_time"] > 0 for e in point_events)
    assert events1[-1]["event"] == "sweep_end"
    assert events1[-1]["hit_rate"] == 0.0

    # Acceptance: a second invocation with the same config is served
    # entirely from the cache, and the telemetry proves it.
    out2 = io.StringIO()
    runner = SweepRunner(jobs=1, cache=tmp_path, telemetry=out2)
    runner.run_grid(points)
    events2 = [json.loads(line) for line in out2.getvalue().splitlines()]
    assert events2[-1]["cached"] == 2
    assert events2[-1]["hit_rate"] == 1.0
    assert all(e["cached"] is True for e in events2 if e["event"] == "point")
    assert runner.telemetry.summary()["hit_rate"] == 1.0


def test_cached_payloads_equal_computed_payloads(tmp_path):
    points = [SweepPoint.confsync(n, reps=2) for n in (2, 4)]
    fresh = SweepRunner(jobs=1, cache=tmp_path).run_grid(points)
    cached = SweepRunner(jobs=1, cache=tmp_path).run_grid(points)
    assert fresh == cached
