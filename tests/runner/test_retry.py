"""RetryPolicy semantics and the cache-write degradation path."""

import io
import json

import pytest

from repro.runner import RetryPolicy, SweepPoint, SweepRunner


# ----------------------------------------------------------- policy object


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.0)


def test_should_retry_counts_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1)
    assert policy.should_retry(2)
    assert not policy.should_retry(3)


def test_delay_grows_by_multiplier():
    policy = RetryPolicy(max_attempts=4, backoff=0.1, multiplier=2.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)


def test_delay_jitter_is_keyed_and_reproducible():
    policy = RetryPolicy(max_attempts=2, backoff=0.1, jitter=0.05)
    a = policy.delay(1, key="pointA")
    b = policy.delay(1, key="pointB")
    assert a != b                       # distinct points decorrelate
    assert policy.delay(1, key="pointA") == a   # but each is deterministic
    assert 0.1 <= a <= 0.15
    assert policy.delay(1) == policy.delay(1)


def test_zero_backoff_fast_path():
    assert RetryPolicy(max_attempts=5).delay(4) == 0.0


def test_runner_legacy_retries_maps_to_policy():
    assert SweepRunner(jobs=1, retries=3).retry == RetryPolicy(max_attempts=4)
    assert SweepRunner(jobs=1, retries=3).retries == 3
    custom = RetryPolicy(max_attempts=2, backoff=0.01)
    assert SweepRunner(jobs=1, retry=custom).retry is custom


# ----------------------------------------------------------- crash retries


def test_crash_recovers_under_budgeted_policy(tmp_path):
    marker = tmp_path / "crashed-once"
    point = SweepPoint.selftest("crash_once", marker=str(marker))
    out = io.StringIO()
    runner = SweepRunner(
        jobs=2, telemetry=out,
        retry=RetryPolicy(max_attempts=3, backoff=0.01),
    )
    result = runner.run([point])[point]
    assert result.ok
    assert result.attempts == 2
    events = [json.loads(line) for line in out.getvalue().splitlines()]
    retry_events = [e for e in events if e["event"] == "retry"]
    assert len(retry_events) == 1
    assert retry_events[0]["attempt"] == 2
    assert retry_events[0]["delay"] == pytest.approx(0.01)
    assert runner.telemetry.retries == 1


def test_single_attempt_policy_never_retries():
    point = SweepPoint.selftest("crash")
    runner = SweepRunner(jobs=2, retry=RetryPolicy(max_attempts=1))
    result = runner.run([point])[point]
    assert result.status == "crashed"
    assert result.attempts == 1


# ------------------------------------------------- cache-write degradation


def test_cache_write_failure_degrades_to_uncached(tmp_path):
    """An unwritable cache must cost a warning, not the sweep."""
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("a regular file where the cache root should be")
    out = io.StringIO()
    runner = SweepRunner(jobs=1, cache=blocker / "cache", telemetry=out)
    point = SweepPoint.selftest("echo", value=7)
    result = runner.run([point])[point]
    # The result still came back fine; only caching was lost.
    assert result.ok
    assert result.payload["echo"] == 7
    assert not result.cached
    events = [json.loads(line) for line in out.getvalue().splitlines()]
    warnings = [e for e in events if e["event"] == "warning"]
    assert len(warnings) == 1
    assert "cache write failed" in warnings[0]["message"]
    assert warnings[0]["label"] == point.label
    assert runner.telemetry.warnings == 1
    # Nothing was cached: a fresh runner recomputes rather than hits.
    rerun = SweepRunner(jobs=1, cache=blocker / "cache")
    assert not rerun.run([point])[point].cached
