"""Cache-key stability and on-disk cache robustness."""

import json
import os
import subprocess
import sys

import pytest

from repro.cluster import IA32_LINUX, POWER3_SP
from repro.runner import ResultCache, SweepPoint, SweepRunner, point_key


def _cell(**overrides):
    kw = dict(app="smg98", policy="Full", procs=4, scale=0.05, seed=3)
    kw.update(overrides)
    return SweepPoint.policy_cell(
        kw["app"], kw["policy"], kw["procs"],
        scale=kw["scale"], seed=kw["seed"],
        machine=kw.get("machine", POWER3_SP),
    )


# ----------------------------------------------------------- key stability


def test_key_stable_for_equal_points():
    assert point_key(_cell()) == point_key(_cell())
    assert _cell() == _cell() and hash(_cell()) == hash(_cell())


def test_key_stable_across_processes():
    code = (
        "from repro.runner import SweepPoint, point_key;"
        "p = SweepPoint.policy_cell('smg98', 'Full', 4, scale=0.05, seed=3);"
        "print(point_key(p))"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    )
    assert out.stdout.strip() == point_key(_cell())


@pytest.mark.parametrize("change", [
    {"seed": 4},
    {"scale": 0.1},
    {"procs": 8},
    {"policy": "None"},
    {"app": "sweep3d"},
    {"machine": IA32_LINUX},
])
def test_key_changes_with_any_config_input(change):
    assert point_key(_cell(**change)) != point_key(_cell())


def test_key_changes_with_cost_model_override():
    ablated = POWER3_SP.with_overrides(vt_active_event_cost=3.2e-6)
    assert point_key(_cell(machine=ablated)) != point_key(_cell())


def test_key_changes_with_package_version():
    p = _cell()
    assert point_key(p, version="1.0.0") != point_key(p, version="9.9.9")


def test_confsync_params_are_order_canonical():
    a = SweepPoint("confsync", 8,
                   params=(("stats", True), ("change", False), ("reps", 4)))
    b = SweepPoint("confsync", 8,
                   params=(("reps", 4), ("change", False), ("stats", True)))
    assert a == b and point_key(a) == point_key(b)


def test_key_distinguishes_confsync_params():
    a = SweepPoint.confsync(8, change=False, reps=4)
    b = SweepPoint.confsync(8, change=True, reps=4)
    c = SweepPoint.confsync(8, change=False, reps=8)
    assert len({point_key(p) for p in (a, b, c)}) == 3


# ----------------------------------------------------------- the store


def test_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    p = _cell()
    key = point_key(p)
    assert cache.get(key) is None
    cache.put(key, p, {"time": 1.25, "trace_records": 7})
    entry = cache.get(key)
    assert entry["payload"] == {"time": 1.25, "trace_records": 7}
    assert entry["point"]["app"] == "smg98"
    assert key in cache and len(cache) == 1
    assert cache.clear() == 1 and len(cache) == 0


def test_corrupted_entry_is_a_miss_and_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    p = _cell()
    key = point_key(p)
    cache.put(key, p, {"time": 1.0})
    path = cache._path(key)
    path.write_text("{ not json !!", encoding="utf-8")
    assert cache.get(key) is None
    assert not path.exists()


def test_entry_with_mismatched_key_is_discarded(tmp_path):
    cache = ResultCache(tmp_path)
    p = _cell()
    key = point_key(p)
    cache.put(key, p, {"time": 1.0})
    path = cache._path(key)
    entry = json.loads(path.read_text(encoding="utf-8"))
    entry["key"] = "0" * 64
    path.write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(key) is None
    assert not path.exists()


def test_contains_is_consistent_with_get_on_corruption(tmp_path):
    """Regression: ``key in cache`` only checked ``is_file()``, so a
    corrupted entry read as present while ``get`` treated it as a miss."""
    cache = ResultCache(tmp_path)
    p = _cell()
    key = point_key(p)
    cache.put(key, p, {"time": 1.0})
    assert key in cache
    path = cache._path(key)
    path.write_text("{ not json !!", encoding="utf-8")
    assert key not in cache
    # Containment validates like get: the corrupt file has been discarded.
    assert not path.exists()
    assert cache.get(key) is None


def test_tmp_droppings_are_not_entries(tmp_path):
    """Regression: interrupted-write ``.tmp`` files (and any dotfile)
    under a bucket directory must not count as entries."""
    cache = ResultCache(tmp_path)
    p = _cell()
    key = point_key(p)
    cache.put(key, p, {"time": 1.0})
    bucket = cache._path(key).parent
    orphan_tmp = bucket / f".{key[:8]}-orphan.tmp"
    orphan_tmp.write_text("partial write", encoding="utf-8")
    hidden_json = bucket / ".hidden.json"
    hidden_json.write_text("{}", encoding="utf-8")

    assert len(cache) == 1
    assert key in cache
    assert cache.clear() == 1
    assert len(cache) == 0
    # clear() also sweeps the stale temp files.
    assert not orphan_tmp.exists()


def test_corrupt_discards_are_counted(tmp_path):
    from repro import obs

    cache = ResultCache(tmp_path)
    p = _cell()
    key = point_key(p)
    cache.put(key, p, {"time": 1.0})
    assert cache.corrupt_discards == 0
    cache._path(key).write_text("{ not json !!", encoding="utf-8")
    with obs.collecting() as registry:
        assert cache.get(key) is None
    assert cache.corrupt_discards == 1
    assert registry.counters.get("runner.cache_corrupt_discards") == 1

    # The mismatched-key corruption path counts too.
    cache.put(key, p, {"time": 1.0})
    entry = json.loads(cache._path(key).read_text(encoding="utf-8"))
    entry["key"] = "0" * 64
    cache._path(key).write_text(json.dumps(entry), encoding="utf-8")
    assert cache.get(key) is None
    assert cache.corrupt_discards == 2


def test_telemetry_summary_surfaces_corrupt_discards(tmp_path):
    point = SweepPoint.confsync(2, reps=2)
    SweepRunner(cache=tmp_path).run([point])
    path = ResultCache(tmp_path)._path(point_key(point))
    path.write_bytes(b"\x00\xffgarbage")

    runner = SweepRunner(cache=tmp_path)
    runner.run([point])
    summary = runner.telemetry.summary()
    assert summary["corrupt_discards"] == 1

    # A clean rerun reports zero even though the cache object remembers.
    rerun = SweepRunner(cache=tmp_path)
    rerun.run([point])
    assert rerun.telemetry.summary()["corrupt_discards"] == 0


def test_repr_is_constant_time(tmp_path, monkeypatch):
    """Regression: ``repr(cache)`` used to report ``len(self)``, which
    walks every entry on disk — logging a runner scanned the cache."""
    cache = ResultCache(tmp_path)
    p = _cell()
    cache.put(point_key(p), p, {"time": 1.0})

    def boom(self):
        raise AssertionError("repr must not scan the cache directory")

    monkeypatch.setattr(ResultCache, "__len__", boom)
    monkeypatch.setattr(ResultCache, "_iter_paths", boom)
    text = repr(cache)
    assert str(tmp_path) in text


def test_runner_recovers_from_corrupted_entry(tmp_path):
    """A damaged cache degrades to recomputation, not to a crash."""
    point = SweepPoint.confsync(2, reps=2)
    first = SweepRunner(cache=tmp_path).run([point])[point]
    assert first.ok and not first.cached

    path = ResultCache(tmp_path)._path(point_key(point))
    assert path.exists()
    path.write_bytes(b"\x00\xffgarbage")

    again = SweepRunner(cache=tmp_path).run([point])[point]
    assert again.ok and not again.cached
    assert again.payload == first.payload

    # ...and the recomputed entry is cached cleanly once more.
    third = SweepRunner(cache=tmp_path).run([point])[point]
    assert third.ok and third.cached
    assert third.payload == first.payload
