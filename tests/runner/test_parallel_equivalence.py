"""Parallel == serial: determinism is the subsystem's acceptance test.

The simulations are pure functions of their configuration, so fanning a
grid over worker processes — or serving it from the cache — must
reproduce the serial figures bit-for-bit (``to_dict`` equality covers
every float; ``render`` equality covers the byte-identical text form).
"""

import json

import pytest

from repro.apps import SMG98, SWEEP3D
from repro.experiments import run_fig7, run_fig8a, run_fig9, run_tracevol
from repro.runner import SweepRunner

SCALE = 0.02
SEED = 2


@pytest.mark.parametrize("app,cpus", [
    (SMG98, (1, 4)),
    (SWEEP3D, (2, 4)),
])
def test_fig7_parallel_identical_to_serial(app, cpus):
    serial = run_fig7(app, cpu_counts=cpus, scale=SCALE, seed=SEED, jobs=1)
    parallel = run_fig7(app, cpu_counts=cpus, scale=SCALE, seed=SEED, jobs=4)
    assert parallel.to_dict() == serial.to_dict()
    assert parallel.render() == serial.render()
    assert parallel.to_csv() == serial.to_csv()


def test_fig7_collect_identical_across_paths():
    serial_raw, parallel_raw = {}, {}
    run_fig7(SWEEP3D, cpu_counts=(2, 4), scale=SCALE, seed=SEED,
             collect=serial_raw, jobs=1)
    run_fig7(SWEEP3D, cpu_counts=(2, 4), scale=SCALE, seed=SEED,
             collect=parallel_raw, jobs=3)
    assert serial_raw == parallel_raw


def test_fig7_cached_rerun_identical_and_fully_hit(tmp_path):
    first = run_fig7(SMG98, cpu_counts=(1, 4), scale=SCALE, seed=SEED,
                     runner=SweepRunner(jobs=4, cache=tmp_path))
    rerun_runner = SweepRunner(jobs=1, cache=tmp_path)
    second = run_fig7(SMG98, cpu_counts=(1, 4), scale=SCALE, seed=SEED,
                      runner=rerun_runner)
    assert second.to_dict() == first.to_dict()
    assert second.render() == first.render()
    assert rerun_runner.telemetry.summary()["hit_rate"] == 1.0


def test_fig8a_parallel_identical_to_serial():
    serial = run_fig8a(proc_counts=(2, 8), seed=1, jobs=1)
    parallel = run_fig8a(proc_counts=(2, 8), seed=1, jobs=2)
    assert parallel.to_dict() == serial.to_dict()


def test_fig9_parallel_identical_to_serial():
    serial = run_fig9(cpu_counts=(1, 2), apps=("sweep3d", "umt98"), jobs=1)
    parallel = run_fig9(cpu_counts=(1, 2), apps=("sweep3d", "umt98"), jobs=2)
    assert parallel.to_dict() == serial.to_dict()
    # The None placement (no 1-CPU Sweep3d point) survives the fan-out.
    assert parallel.get("Sweep3d").values[0] is None


def test_tracevol_parallel_identical_to_serial():
    serial = run_tracevol(apps=["sweep3d"], n_cpus=4, scale=SCALE, seed=1,
                          jobs=1)
    parallel = run_tracevol(apps=["sweep3d"], n_cpus=4, scale=SCALE, seed=1,
                            jobs=2)
    assert parallel == serial


def test_fig7_and_tracevol_share_cache_entries(tmp_path):
    """Identical (app, policy, cpus) cells hit the same cache slots."""
    warm = SweepRunner(jobs=1, cache=tmp_path)
    run_tracevol(apps=["sweep3d"], n_cpus=4, scale=SCALE, seed=SEED,
                 runner=warm)
    reader = SweepRunner(jobs=1, cache=tmp_path)
    run_fig7(SWEEP3D, cpu_counts=(4,), scale=SCALE, seed=SEED, runner=reader)
    assert reader.telemetry.summary()["hit_rate"] == 1.0


# ----------------------------------------------------------- CLI acceptance


def test_cli_fig7a_jobs_rerun_fully_cached(tmp_path, capsys):
    """`repro-experiments fig7a --jobs 4` twice: identical figure, and
    the second invocation completes with 100% cache hits."""
    from repro.experiments.cli import main

    argv = ["fig7a", "--quick", "--scale", "0.02", "--jobs", "4",
            "--cache-dir", str(tmp_path), "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(argv) == 0
    second = json.loads(capsys.readouterr().out)

    assert second["results"] == first["results"]
    assert first["telemetry"]["hit_rate"] == 0.0
    assert second["telemetry"]["hit_rate"] == 1.0
    assert second["telemetry"]["failed"] == 0
    fig = first["results"][0]
    assert fig["type"] == "figure" and fig["figure_id"] == "fig7a"


def test_cli_sweep_subcommand(tmp_path, capsys):
    from repro.experiments.cli import main

    argv = ["sweep", "--apps", "sweep3d", "--policies", "Full,None",
            "--cpus", "2,4", "--scale", "0.02", "--jobs", "2",
            "--cache-dir", str(tmp_path), "--json"]
    assert main(argv) == 0
    doc = json.loads(capsys.readouterr().out)
    rows = doc["sweep"]
    assert [(r["app"], r["policy"], r["cpus"]) for r in rows] == [
        ("sweep3d", "Full", 2), ("sweep3d", "Full", 4),
        ("sweep3d", "None", 2), ("sweep3d", "None", 4),
    ]
    assert all(r["status"] == "ok" and r["payload"]["time"] > 0 for r in rows)
    assert doc["telemetry"]["failed"] == 0

    # Second invocation: fully cached.
    assert main(argv) == 0
    doc2 = json.loads(capsys.readouterr().out)
    assert doc2["telemetry"]["hit_rate"] == 1.0
    assert [r["payload"] for r in doc2["sweep"]] == [r["payload"] for r in rows]


def test_cli_sweep_text_table(tmp_path, capsys):
    from repro.experiments.cli import main

    assert main(["sweep", "--apps", "sweep3d", "--policies", "None",
                 "--cpus", "2", "--scale", "0.02",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "sweep3d" in out and "hit rate" in out
