"""Telemetry durability: per-line flushes and the tolerant reader."""

import io
import json

import pytest

from repro.runner import SweepPoint, SweepRunner, read_telemetry
from repro.runner.telemetry import SweepTelemetry


def run_sweep(stream):
    runner = SweepRunner(jobs=1, telemetry=stream)
    points = [SweepPoint.selftest(mode="echo", value=i) for i in range(3)]
    assert all(r.ok for r in runner.run(points).values())


# -- the writer ---------------------------------------------------------------


def test_every_event_is_one_flushed_line():
    class CountingStream(io.StringIO):
        def __init__(self):
            super().__init__()
            self.flushes = 0
            self.writes = []

        def write(self, text):
            self.writes.append(text)
            return super().write(text)

        def flush(self):
            self.flushes += 1
            super().flush()

    stream = CountingStream()
    run_sweep(stream)
    # One write + one flush per event: a tailing consumer never sees a
    # partial record followed by more output.
    assert all(w.endswith("\n") and w.count("\n") == 1 for w in stream.writes)
    assert stream.flushes == len(stream.writes)


def test_sweep_end_survives_fsyncless_streams():
    # StringIO has no file descriptor; the sweep_end fsync is skipped,
    # not fatal.
    stream = io.StringIO()
    run_sweep(stream)
    events = read_telemetry(io.StringIO(stream.getvalue()))
    assert events[-1]["event"] == "sweep_end"


def test_sweep_log_round_trips_through_a_file(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        run_sweep(fh)
    events = read_telemetry(str(path))
    assert events[0]["event"] == "sweep_start"
    assert events[-1]["event"] == "sweep_end"
    assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
    assert sum(1 for e in events if e["event"] == "point") == 3


# -- the reader ---------------------------------------------------------------


def sample_lines(n=4):
    telemetry = SweepTelemetry()
    telemetry.sweep_start(total=n, cached=0, jobs=1)
    for i in range(n - 2):
        telemetry.emit("point", label=f"p{i}", status="ok")
    telemetry.sweep_end()
    return [json.dumps(e) for e in telemetry.events]


def test_reader_drops_truncated_last_line():
    lines = sample_lines()
    truncated = lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]
    events = read_telemetry(truncated)
    assert len(events) == len(lines) - 1
    assert events == [json.loads(line) for line in lines[:-1]]


def test_reader_ignores_trailing_blank_lines():
    events = read_telemetry(sample_lines() + ["", ""])
    assert len(events) == len(sample_lines())


def test_reader_rejects_mid_file_corruption():
    lines = sample_lines()
    lines[1] = lines[1][:10]  # corrupt record with valid ones after it
    with pytest.raises(ValueError, match="corrupt record with valid"):
        read_telemetry(lines)


def test_reader_rejects_blank_line_inside_log():
    lines = sample_lines()
    lines.insert(1, "")
    with pytest.raises(ValueError, match="blank line"):
        read_telemetry(lines)


def test_reader_rejects_seq_gap():
    lines = sample_lines()
    del lines[1]  # seq jumps 1 -> 3: events were lost
    with pytest.raises(ValueError, match="missing events"):
        read_telemetry(lines)


def test_reader_rejects_non_event_records():
    with pytest.raises(ValueError, match="not a telemetry event"):
        read_telemetry(['{"no": "seq"}'])
    with pytest.raises(ValueError, match="not a telemetry event"):
        read_telemetry(["[1, 2, 3]", '{"seq": 1}'])


def test_reader_allows_concatenated_runs():
    lines = sample_lines() + sample_lines(3)
    events = read_telemetry(lines)
    assert len(events) == len(lines)
    restarts = [i for i, e in enumerate(events) if e["seq"] == 1]
    assert len(restarts) == 2


def test_reader_accepts_stream_and_path(tmp_path):
    lines = sample_lines()
    blob = "\n".join(lines) + "\n"
    from_stream = read_telemetry(io.StringIO(blob))
    path = tmp_path / "log.jsonl"
    path.write_text(blob)
    assert read_telemetry(str(path)) == from_stream
    assert from_stream == [json.loads(line) for line in lines]
