"""Tests for the job assembly layer (MpiJob / OmpJob)."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.jobs import MpiJob, OmpJob
from repro.program import ExecutableImage
from repro.simt import Environment
from repro.vt import VTConfig

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def simple_mpi_program(pctx):
    yield from pctx.call("MPI_Init")
    yield from pctx.compute(0.5)
    yield from pctx.call("MPI_Finalize")
    return pctx.mpi.rank


def simple_omp_program(pctx):
    yield from pctx.call("VT_init")
    yield from pctx.compute(0.5)
    return "done"


def test_mpi_job_builds_per_rank_state():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("app")
    job = MpiJob(env, cluster, exe, 6, simple_mpi_program)
    assert job.n_procs == 6
    assert len(job.images) == 6
    assert len({id(im) for im in job.images}) == 6  # independent images
    assert "MPI_Init" in exe  # symbols installed automatically
    assert all(vt is not None for vt in job.vt_states)
    assert all(vt.n_cotracers == 6 for vt in job.vt_states)
    # Shared registry: same names -> same fids across ranks.
    assert job.vt_states[0].registry is job.vt_states[5].registry


def test_mpi_job_run_returns_makespan():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("app")
    job = MpiJob(env, cluster, exe, 2, simple_mpi_program)
    makespan = job.run()
    assert makespan > 0.5
    assert [p.value for p in job.procs] == [0, 1]


def test_mpi_job_without_vt():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("app")
    job = MpiJob(env, cluster, exe, 2, simple_mpi_program, link_vt=False)
    job.run()
    assert job.vt_states == [None, None]
    assert job.trace.raw_record_count == 0


def test_mpi_job_double_start_rejected():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("app")
    job = MpiJob(env, cluster, exe, 2, simple_mpi_program)
    job.start()
    with pytest.raises(RuntimeError, match="already started"):
        job.start()
    env.run()


def test_mpi_job_completion_before_start_rejected():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    job = MpiJob(env, cluster, ExecutableImage("app"), 2, simple_mpi_program)
    with pytest.raises(RuntimeError, match="not started"):
        job.completion()


def test_start_suspended_parks_until_release():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("app")
    job = MpiJob(env, cluster, exe, 2, simple_mpi_program, start_suspended=True)
    job.start()
    env.run(until=5.0)
    assert all(t.is_parked for t in job.tasks)

    job.resume_all()
    env.run(until=job.completion())
    assert all(p.value in (0, 1) for p in job.procs)
    # resume_all is idempotent.
    job.resume_all()


def test_daemon_host_registration_shared_across_jobs():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    job1 = MpiJob(env, cluster, ExecutableImage("a"), 2, simple_mpi_program)
    job2 = MpiJob(env, cluster, ExecutableImage("b"), 2, simple_mpi_program)
    assert job1.daemon_host is job2.daemon_host
    assert job1.daemon_host.lookup("a[0]") is not None
    assert job1.daemon_host.lookup("b[1]") is not None


def test_vt_config_applied_per_rank():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("cfg")
    exe.define("f")
    exe.instrument_statically()
    cfg = VTConfig.all_off()
    job = MpiJob(env, cluster, exe, 2, simple_mpi_program, vt_config=cfg)
    job.run()
    for vt in job.vt_states:
        assert not vt.is_fid_active(job.images[0].func("f").fid)


def test_omp_job_lifecycle():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("ompapp")
    job = OmpJob(env, cluster, exe, 4, simple_omp_program)
    assert "VT_init" in exe
    makespan = job.run()
    assert job.proc.value == "done"
    assert makespan >= 0.5
    assert job.vt.initialized  # VT_init ran


def test_omp_job_thread_limit():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    with pytest.raises(ValueError, match="cores"):
        OmpJob(env, cluster, ExecutableImage("x"), 16, simple_omp_program)


def test_omp_job_start_suspended():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    job = OmpJob(env, cluster, ExecutableImage("x"), 2, simple_omp_program,
                 start_suspended=True)
    job.start()
    env.run(until=2.0)
    assert job.task.is_parked
    job.resume_all()
    env.run(until=job.completion())
    assert job.proc.value == "done"


def test_omp_job_flushes_trace_at_end():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = ExecutableImage("traced")
    exe.define("f")
    exe.instrument_statically()

    def program(pctx):
        yield from pctx.call("VT_init")
        yield from pctx.call("f")
        return None

    job = OmpJob(env, cluster, exe, 2, program)
    job.run()
    assert job.trace.raw_record_count == 2  # one enter+leave pair


def test_omp_job_tasks_images_accessors():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    job = OmpJob(env, cluster, ExecutableImage("x"), 2, simple_omp_program)
    assert job.tasks == [job.task]
    assert job.images == [job.image]
    assert job.n_threads == 2
    with pytest.raises(RuntimeError, match="not started"):
        job.completion()
