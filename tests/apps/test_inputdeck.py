"""Tests for application input decks."""

import pytest

from repro.apps import ITERATION_KEYS, InputDeck, SMG98, SPPM, SWEEP3D, UMT98, deck_scale


def test_parse_key_value_forms():
    deck = InputDeck.parse("""
    # sweep3d-style deck
    itm = 6
    dx  = 0.25        ! fortran comment
    name = run_A
    """)
    assert deck.get_int("itm") == 6
    assert deck.get("dx") == 0.25
    assert deck.get("name") == "run_A"
    assert len(deck) == 3
    assert "ITM" in deck  # keys are case-insensitive


def test_parse_errors():
    with pytest.raises(ValueError, match="key = value"):
        InputDeck.parse("just a token")
    with pytest.raises(ValueError, match="empty"):
        InputDeck.parse("x =")
    with pytest.raises(ValueError, match="empty"):
        InputDeck.parse("= 5")


def test_get_int_coercion():
    deck = InputDeck.parse("a = 5\nb = 5.0\nc = text\n")
    assert deck.get_int("a") == 5
    assert deck.get_int("b") == 5
    assert deck.get_int("missing", 9) == 9
    with pytest.raises(ValueError, match="not an integer"):
        deck.get_int("c")


@pytest.mark.parametrize("app,key,paper", [
    (SMG98, "maxiter", 10),
    (SPPM, "nstop", 20),
    (SWEEP3D, "itm", 12),
    (UMT98, "niter", 10),
])
def test_native_iteration_keys(app, key, paper):
    assert ITERATION_KEYS[app.name] == (key, paper)
    deck = InputDeck.parse(f"{key} = {paper}")
    assert deck_scale(app, deck) == pytest.approx(1.0)
    deck_half = InputDeck.parse(f"{key} = {paper // 2}")
    assert deck_scale(app, deck_half) == pytest.approx(0.5, abs=0.1)


def test_deck_scale_fallback_and_explicit():
    deck = InputDeck.parse("unrelated = 1")
    assert deck_scale(SMG98, deck, default_scale=0.3) == 0.3
    deck = InputDeck.parse("scale = 0.25\nmaxiter = 100")
    assert deck_scale(SMG98, deck) == 0.25  # explicit scale wins


def test_deck_scale_validation():
    with pytest.raises(ValueError, match="must be >= 1"):
        deck_scale(SMG98, InputDeck.parse("maxiter = 0"))
    with pytest.raises(ValueError, match="positive"):
        deck_scale(SMG98, InputDeck.parse("scale = -1"))


def test_deck_drives_program_iterations():
    """A deck's iteration count reaches the actual program."""
    from repro.cluster import Cluster, POWER3_SP
    from repro.jobs import MpiJob
    from repro.simt import Environment

    deck = InputDeck.parse("itm = 2")
    scale = deck_scale(SWEEP3D, deck)
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=1)
    job = MpiJob(env, cluster, SWEEP3D.build_exe(False), 2,
                 SWEEP3D.make_program(2, scale))
    job.run()
    env.run()
    state = job.pctxs[0].props["sweep"]
    assert state.iterations == 2


def test_cli_accepts_input_deck(tmp_path):
    from repro.dynprof.cli import main

    deck = tmp_path / "input"
    deck.write_text("itm = 1\nncpus = 2\n")
    script = tmp_path / "s.dp"
    script.write_text("start\nquit\n")
    out = tmp_path / "o.txt"
    rc = main([str(script), str(out), "-", "sweep3d", "--input", str(deck)])
    assert rc == 0
    assert "2 process(es)" in out.read_text()
