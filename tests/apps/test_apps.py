"""Application-analog tests: inventories, numerics, scaling shapes."""

import pytest

from repro.apps import ALL_APPS, SMG98, SPPM, SWEEP3D, UMT98, get_app
from repro.cluster import Cluster, POWER3_SP
from repro.jobs import MpiJob, OmpJob
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.02)


def run_app(app, n_cpus, scale=0.05, link_vt=True, vt_config=None, instrument=False, seed=0):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=seed)
    exe = app.build_exe(instrument)
    program = app.make_program(n_cpus, scale)
    if app.kind == "mpi":
        job = MpiJob(env, cluster, exe, n_cpus, program,
                     link_vt=link_vt, vt_config=vt_config)
        job.start()
        env.run(until=job.completion())
        env.run()
        elapsed = max(p.value for p in job.procs)
        return job, elapsed
    job = OmpJob(env, cluster, exe, n_cpus, program,
                 link_vt=link_vt, vt_config=vt_config)
    job.start()
    env.run(until=job.completion())
    env.run()
    return job, job.proc.value


# ------------------------------------------------------------- inventories


def test_function_counts_match_paper():
    # Section 4.3 gives exact inventories.
    assert len(SMG98.functions) == 199 and len(SMG98.subset) == 62
    assert len(SPPM.functions) == 22 and len(SPPM.subset) == 7
    assert len(SWEEP3D.functions) == 21 and len(SWEEP3D.dynamic_targets) == 21
    assert len(UMT98.functions) == 44 and len(UMT98.subset) == 6


def test_table2_metadata():
    assert SMG98.lang == "MPI/C"
    assert SPPM.lang == "MPI/F77"
    assert SWEEP3D.lang == "MPI/F77"
    assert UMT98.lang == "OMP/F77"
    assert UMT98.kind == "omp"


def test_sweep3d_has_no_subset_policy_and_no_1cpu():
    assert not SWEEP3D.has_subset_policy
    assert 1 not in SWEEP3D.cpu_counts  # does not run on one processor


def test_get_app_lookup():
    assert get_app("SMG98") is SMG98
    with pytest.raises(KeyError):
        get_app("linpack")


def test_exes_define_full_inventory():
    for app in ALL_APPS.values():
        exe = app.build_exe(False)
        for fn in app.functions:
            assert fn in exe
        assert not any(s.static_instrumented for s in exe.symbols.values())
        exe2 = app.build_exe(True)
        n_instr = sum(s.static_instrumented for s in exe2.symbols.values())
        assert n_instr >= len(app.functions)


# ------------------------------------------------------------- numerics


def test_smg98_residual_decreases():
    job, _ = run_app(SMG98, 4, scale=0.3)
    residuals = job.pctxs[0].props["residuals"]
    assert len(residuals) >= 2
    assert residuals[-1] < residuals[0]
    # Monotone decrease cycle over cycle.
    assert all(b <= a * 1.0001 for a, b in zip(residuals, residuals[1:]))


def test_sppm_conserves_mass():
    job, _ = run_app(SPPM, 4, scale=0.15)
    state = job.pctxs[0].props["sppm"]
    for mass in state.mass_history:
        assert mass == pytest.approx(state.initial_mass, rel=1e-12)


def test_sweep3d_flux_converges():
    job, _ = run_app(SWEEP3D, 4, scale=0.3)
    state = job.pctxs[0].props["sweep"]
    hist = state.err_history
    assert len(hist) >= 2
    # Attenuation beats the constant source: the error metric settles.
    assert hist[-1] == pytest.approx(hist[-2], rel=0.5)


def test_umt98_runs_and_iterates():
    job, elapsed = run_app(UMT98, 4, scale=0.2)
    state = job.pctx.props["umt"]
    assert len(state.err_history) == state.iterations
    assert elapsed > 0


# ------------------------------------------------------------- scaling shapes


def test_smg98_weak_scaling_time_grows_with_cpus():
    _j1, t1 = run_app(SMG98, 1, scale=0.1)
    _j2, t16 = run_app(SMG98, 16, scale=0.1)
    assert t16 > t1 * 1.1


def test_sweep3d_strong_scaling_time_shrinks():
    _j1, t2 = run_app(SWEEP3D, 2, scale=0.1)
    _j2, t16 = run_app(SWEEP3D, 16, scale=0.1)
    assert t16 < t2 / 3


def test_umt98_strong_scaling_time_shrinks():
    _j1, t1 = run_app(UMT98, 1, scale=0.1)
    _j2, t8 = run_app(UMT98, 8, scale=0.1)
    assert t8 < t1 / 3


def test_all_ranks_report_similar_elapsed():
    job, _ = run_app(SMG98, 8, scale=0.1)
    times = [p.value for p in job.procs]
    assert max(times) < min(times) * 1.2


# ------------------------------------------------------------- tracing


def test_instrumented_run_produces_trace_records():
    from repro.vt import VTConfig

    job, _ = run_app(SMG98, 2, scale=0.05, instrument=True,
                     vt_config=VTConfig.all_on())
    assert job.trace.raw_record_count > 10_000
    assert job.trace.size_bytes > 0


def test_uninstrumented_run_produces_only_mpi_records():
    job, _ = run_app(SMG98, 2, scale=0.05, instrument=False)
    # No subroutine probes: records are only MPI message/collective events.
    from repro.vt import CollectiveRecord, MsgRecord

    for _p, _t, rec in job.trace.all_records():
        assert isinstance(rec, (MsgRecord, CollectiveRecord))


# ------------------------------------------------------- call-count asymmetry


def test_smg98_call_asymmetry_premise():
    """The structural fact behind Figure 7(a): the non-subset utility
    functions carry almost all calls, the subset carries the time.
    (Subset ~ Full-Off and Dynamic ~ None are only possible this way.)"""
    job, _ = run_app(SMG98, 2, scale=0.1)
    image = job.images[0]
    subset = set(SMG98.subset)
    subset_calls = sum(
        fi.call_count for n, fi in image.functions.items() if n in subset
    )
    noise_calls = sum(
        fi.call_count for n, fi in image.functions.items()
        if n in set(SMG98.functions) - subset
    )
    assert noise_calls > 100 * subset_calls
    assert subset_calls > 0


def test_sweep3d_low_call_intensity():
    """Figure 7(c)'s premise: few calls relative to compute."""
    job, elapsed = run_app(SWEEP3D, 4, scale=0.1)
    total_calls = sum(
        fi.call_count for im in job.images for fi in im.functions.values()
    )
    # Calls per second of computation, per rank: orders of magnitude
    # below Smg98's ~600k/s.
    per_rank_per_sec = total_calls / 4 / elapsed
    assert per_rank_per_sec < 20_000


def test_umt98_produces_per_thread_timeline_bars():
    from repro.analysis import Timeline
    from repro.vt import VTConfig

    job, _ = run_app(UMT98, 4, scale=0.1, instrument=True,
                     vt_config=VTConfig.all_on())
    tl = Timeline(job.trace)
    # One bar per OpenMP thread of the single process.
    threads = {t for (_p, t) in tl.bars}
    assert threads == {0, 1, 2, 3}
