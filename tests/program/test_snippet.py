"""Tests for the snippet AST: evaluation, costs, blocking calls."""

import pytest

from repro.program import (
    Arith,
    Assign,
    CallFunc,
    Compare,
    Const,
    If,
    Nop,
    Sequence,
    SnippetError,
    SpinWait,
    VarRef,
)

from .conftest import run_ctx


def execute(env, pctx, snippet):
    def driver():
        result = yield from snippet.execute(pctx)
        yield from pctx.flush()
        return result

    return run_ctx(env, pctx, driver())


def test_const_evaluates_to_value(env, make_pctx):
    pctx = make_pctx()
    assert execute(env, pctx, Const(42)) == 42


def test_var_read_write(env, make_pctx):
    pctx = make_pctx()
    pctx.image.write_variable("flag", 7)
    assert execute(env, pctx, VarRef("flag")) == 7


def test_unset_variable_defaults_to_zero(env, make_pctx):
    pctx = make_pctx()
    assert execute(env, pctx, VarRef("nothing")) == 0


def test_assign_stores_into_address_space(env, make_pctx):
    pctx = make_pctx()
    execute(env, pctx, Assign("x", Arith("+", Const(2), Const(3))))
    assert pctx.image.read_variable("x") == 5


def test_arith_operators(env, make_pctx):
    pctx = make_pctx()
    snip = Sequence([
        Assign("mul", Arith("*", Const(6), Const(7))),
        Assign("sub", Arith("-", Const(6), Const(7))),
        Assign("div", Arith("/", Const(8), Const(2))),
    ])
    execute(env, pctx, snip)
    assert pctx.image.read_variable("mul") == 42
    assert pctx.image.read_variable("sub") == -1
    assert pctx.image.read_variable("div") == 4


def test_unknown_operator_rejected():
    with pytest.raises(SnippetError):
        Arith("%", Const(1), Const(2))
    with pytest.raises(SnippetError):
        Compare("~", Const(1), Const(2))


def test_compare_operators(env, make_pctx):
    pctx = make_pctx()
    snip = Sequence([
        Assign("lt", Compare("<", Const(1), Const(2))),
        Assign("eq", Compare("==", Const(1), Const(2))),
    ])
    execute(env, pctx, snip)
    assert pctx.image.read_variable("lt") is True
    assert pctx.image.read_variable("eq") is False


def test_if_takes_then_branch(env, make_pctx):
    pctx = make_pctx()
    snip = If(Const(True), Assign("y", Const(1)), Assign("y", Const(2)))
    execute(env, pctx, snip)
    assert pctx.image.read_variable("y") == 1


def test_if_takes_else_branch(env, make_pctx):
    pctx = make_pctx()
    snip = If(Const(False), Assign("y", Const(1)), Assign("y", Const(2)))
    execute(env, pctx, snip)
    assert pctx.image.read_variable("y") == 2


def test_if_without_else_returns_none(env, make_pctx):
    pctx = make_pctx()
    assert execute(env, pctx, If(Const(False), Const(1))) is None


def test_sequence_runs_in_order_returns_last(env, make_pctx):
    pctx = make_pctx()
    snip = Sequence([Assign("a", Const(1)), Assign("b", Const(2)), Const("last")])
    assert execute(env, pctx, snip) == "last"
    assert pctx.image.read_variable("a") == 1
    assert pctx.image.read_variable("b") == 2


def test_callfunc_invokes_runtime_registry(env, make_pctx):
    pctx = make_pctx()
    calls = []
    pctx.image.register_runtime("start_timer", lambda ctx, *a: calls.append(a) or "rv")
    assert execute(env, pctx, CallFunc("start_timer", [Const(5)])) == "rv"
    assert calls == [(5,)]


def test_callfunc_unresolved_raises(env, make_pctx):
    pctx = make_pctx()
    with pytest.raises(Exception):
        execute(env, pctx, CallFunc("missing_fn"))


def test_callfunc_blocking_callee(env, make_pctx):
    """A snippet callee may be a generator that blocks (e.g. MPI_Barrier)."""
    pctx = make_pctx()

    def blocking(ctx):
        yield ctx.env.timeout(2.5)
        return "after-block"

    pctx.image.register_runtime("MPI_Barrier", blocking)
    assert execute(env, pctx, CallFunc("MPI_Barrier")) == "after-block"
    assert env.now == pytest.approx(2.5)


def test_snippets_charge_op_costs(env, make_pctx, spec):
    pctx = make_pctx()
    snip = Sequence([Assign("x", Arith("+", Const(1), Const(2)))])
    execute(env, pctx, snip)
    expected_ops = snip.op_count()
    assert expected_ops == 4  # assign + arith + 2 consts
    assert env.now == pytest.approx(expected_ops * spec.snippet_op_cost)


def test_nop_costs_nothing(env, make_pctx):
    pctx = make_pctx()
    assert execute(env, pctx, Nop()) is None
    assert env.now == 0.0
    assert Nop().op_count() == 0


def test_spinwait_blocks_until_variable_set(env, make_pctx):
    pctx = make_pctx()

    def flipper(env):
        yield env.timeout(4.0)
        pctx.image.write_variable("go", 1)

    env.process(flipper(env))
    assert execute(env, pctx, SpinWait("go")) == 1
    assert env.now == pytest.approx(4.0)


def test_spinwait_passes_if_already_set(env, make_pctx):
    pctx = make_pctx()
    pctx.image.write_variable("go", 1)
    assert execute(env, pctx, SpinWait("go")) == 1
    assert env.now < 1e-6


def test_describe_is_readable():
    snip = Sequence([
        CallFunc("MPI_Barrier"),
        CallFunc("DPCL_callback", [Const(1)]),
        SpinWait("dynvt_go"),
        CallFunc("MPI_Barrier"),
    ])
    text = snip.describe()
    assert "MPI_Barrier()" in text
    assert "spin_until(dynvt_go)" in text


def test_op_count_recursion():
    inner = Arith("+", Const(1), VarRef("x"))
    snip = If(Compare(">", VarRef("x"), Const(0)), Assign("y", inner), Nop())
    # if(1) + cmp(1)+var(1)+const(1) + assign(1)+arith(1)+const(1)+var(1) + nop(0)
    assert snip.op_count() == 8


def test_increment_var_counts(env, make_pctx):
    from repro.program import IncrementVar

    pctx = make_pctx()
    snip = IncrementVar("hits")
    execute(env, pctx, Sequence([snip]))
    assert pctx.image.read_variable("hits") == 1
    assert "hits += 1" in snip.describe()


def test_increment_var_is_batchable(env, make_pctx):
    """A counting probe must not break the leaf batching fast path."""
    from repro.program import ENTRY, ExecutableImage, IncrementVar

    exe = ExecutableImage("app")
    exe.define("leaf")
    pctx = make_pctx(exe)
    pctx.image.install_probe("leaf", ENTRY, IncrementVar("calls"))

    def driver():
        yield from pctx.call_batch("leaf", 5000, 1e-7)
        yield from pctx.flush()

    run_ctx(env, pctx, driver())
    assert pctx.image.read_variable("calls") == 5000
    # The fast path ran: far fewer engine events than 5000 calls.
    assert env.events_processed < 200


def test_increment_batch_and_loop_charge_identically(env, make_pctx):
    from repro.program import ENTRY, ExecutableImage, IncrementVar

    exe = ExecutableImage("app")
    exe.define("a")
    exe.define("b")
    pctx = make_pctx(exe)
    pctx.image.install_probe("a", ENTRY, IncrementVar("ca"))
    pctx.image.install_probe("b", ENTRY, IncrementVar("cb"))
    n = 300

    def driver():
        t0 = pctx.task.now
        yield from pctx.call_batch("a", n, 1e-6)
        t_batch = pctx.task.now - t0
        t1 = pctx.task.now
        yield from pctx._call_loop(pctx.fn("b"), n, 1e-6, None)
        t_loop = pctx.task.now - t1
        return t_batch, t_loop

    t_batch, t_loop = run_ctx(env, pctx, driver())
    assert t_batch == pytest.approx(t_loop, rel=1e-9)
    assert pctx.image.read_variable("ca") == n
    assert pctx.image.read_variable("cb") == n
