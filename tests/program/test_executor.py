"""Tests for the call-tree executor: probe ordering, costs, batching."""

import pytest

from repro.program import (
    ENTRY,
    EXIT,
    CallFunc,
    Const,
    ExecutableImage,
    Sequence,
)

from .conftest import run_ctx


def test_call_plain_body(env, make_pctx):
    exe = ExecutableImage("app")
    exe.define("work", body=lambda ctx, x: x * 2)
    pctx = make_pctx(exe)

    def driver():
        result = yield from pctx.call("work", 21)
        return result

    assert run_ctx(env, pctx, driver()) == 42
    assert pctx.fn("work").call_count == 1


def test_call_generator_body_can_block(env, make_pctx):
    exe = ExecutableImage("app")

    def body(ctx):
        yield ctx.env.timeout(3.0)
        return "blocked-ok"

    exe.define("waiter", body=body)
    pctx = make_pctx(exe)

    def driver():
        return (yield from pctx.call("waiter"))

    assert run_ctx(env, pctx, driver()) == "blocked-ok"
    assert env.now == pytest.approx(3.0)


def test_nested_calls_count_each_level(env, make_pctx):
    exe = ExecutableImage("app")

    def outer(ctx):
        yield from ctx.call("inner")
        yield from ctx.call("inner")

    exe.define("outer", body=outer)
    exe.define("inner", body=lambda ctx: None)
    pctx = make_pctx(exe)

    def driver():
        yield from pctx.call("outer")

    run_ctx(env, pctx, driver())
    assert pctx.fn("outer").call_count == 1
    assert pctx.fn("inner").call_count == 2


def test_dynamic_probes_fire_around_body(env, make_pctx):
    exe = ExecutableImage("app")
    order = []
    exe.define("f", body=lambda ctx: order.append("body"))
    pctx = make_pctx(exe)
    pctx.image.register_runtime("log_entry", lambda ctx: order.append("entry"))
    pctx.image.register_runtime("log_exit", lambda ctx: order.append("exit"))
    pctx.image.install_probe("f", ENTRY, CallFunc("log_entry"))
    pctx.image.install_probe("f", EXIT, CallFunc("log_exit"))

    def driver():
        yield from pctx.call("f")

    run_ctx(env, pctx, driver())
    assert order == ["entry", "body", "exit"]


def test_inactive_probe_does_not_run_snippet(env, make_pctx):
    exe = ExecutableImage("app")
    hits = []
    exe.define("f", body=lambda ctx: None)
    pctx = make_pctx(exe)
    pctx.image.register_runtime("log", lambda ctx: hits.append(1))
    h = pctx.image.install_probe("f", ENTRY, CallFunc("log"), activate=False)

    def driver():
        yield from pctx.call("f")

    run_ctx(env, pctx, driver())
    assert hits == []
    # But the base trampoline still costs time (jump + save/restore).
    assert pctx.task.compute_time == pytest.approx(pctx.spec.tramp_base_cost)


def test_trampoline_costs_charged(env, make_pctx, spec):
    exe = ExecutableImage("app")
    exe.define("f", body=lambda ctx: None)
    pctx = make_pctx(exe)
    pctx.image.register_runtime("noop", lambda ctx: None)
    snippet = CallFunc("noop")
    pctx.image.install_probe("f", ENTRY, snippet)

    def driver():
        yield from pctx.call("f")
        yield from pctx.flush()

    run_ctx(env, pctx, driver())
    expected = (
        spec.tramp_base_cost
        + spec.tramp_mini_cost
        + snippet.op_count() * spec.snippet_op_cost
    )
    assert env.now == pytest.approx(expected)


def test_chained_minis_all_fire_in_insertion_order(env, make_pctx):
    exe = ExecutableImage("app")
    order = []
    exe.define("f", body=lambda ctx: None)
    pctx = make_pctx(exe)
    for tag in ("first", "second", "third"):
        pctx.image.register_runtime(tag, lambda ctx, t=tag: order.append(t))
        pctx.image.install_probe("f", ENTRY, CallFunc(tag))

    def driver():
        yield from pctx.call("f")

    run_ctx(env, pctx, driver())
    assert order == ["first", "second", "third"]


def test_call_batch_requires_leaf(env, make_pctx):
    exe = ExecutableImage("app")
    exe.define("has_body", body=lambda ctx: None)
    pctx = make_pctx(exe)

    def driver():
        yield from pctx.call_batch("has_body", 10, 1e-6)

    with pytest.raises(ValueError, match="leaf"):
        run_ctx(env, pctx, driver())


def test_call_batch_charges_n_times_cost(env, make_pctx):
    exe = ExecutableImage("app")
    exe.define("leaf")  # no body: cost-only leaf
    pctx = make_pctx(exe)

    def driver():
        yield from pctx.call_batch("leaf", 1000, 2e-6)
        yield from pctx.flush()

    run_ctx(env, pctx, driver())
    assert env.now == pytest.approx(1000 * 2e-6)
    assert pctx.fn("leaf").call_count == 1000


def test_call_batch_zero_is_noop(env, make_pctx):
    exe = ExecutableImage("app")
    exe.define("leaf")
    pctx = make_pctx(exe)

    def driver():
        yield from pctx.call_batch("leaf", 0, 1e-6)
        try:
            yield from pctx.call_batch("leaf", -1, 1e-6)
        except ValueError:
            return "rejected"

    assert run_ctx(env, pctx, driver()) == "rejected"
    assert pctx.fn("leaf").call_count == 0


def test_call_batch_runs_real_work_once(env, make_pctx):
    exe = ExecutableImage("app")
    exe.define("leaf")
    pctx = make_pctx(exe)
    ran = []

    def driver():
        yield from pctx.call_batch("leaf", 50, 1e-6, work=lambda: ran.append(1))

    run_ctx(env, pctx, driver())
    assert ran == [1]


def test_call_batch_falls_back_on_unbatchable_probe(env, make_pctx):
    """A non-VT snippet forces the per-call loop, same call_count."""
    exe = ExecutableImage("app")
    exe.define("leaf")
    pctx = make_pctx(exe)
    hits = []
    pctx.image.register_runtime("custom", lambda ctx: hits.append(1))
    pctx.image.install_probe("leaf", ENTRY, CallFunc("custom"))

    def driver():
        yield from pctx.call_batch("leaf", 7, 1e-6)

    run_ctx(env, pctx, driver())
    assert len(hits) == 7
    assert pctx.fn("leaf").call_count == 7


def test_leaf_batch_cost_equals_loop_cost(env, make_pctx, spec):
    """Batched and looped execution charge identical time (no probes)."""
    exe = ExecutableImage("app")
    exe.define("leafA")
    exe.define("leafB")
    pctx = make_pctx(exe)

    def driver():
        yield from pctx.call_batch("leafA", 500, 3e-6)
        t_batch = pctx.task.now
        yield from pctx._call_loop(pctx.fn("leafB"), 500, 3e-6, None)
        t_loop = pctx.task.now - t_batch
        return t_batch, t_loop

    t_batch, t_loop = run_ctx(env, pctx, driver())
    assert t_batch == pytest.approx(t_loop)


def test_unbatched_charges_identical_time(env, make_pctx):
    from repro.program import set_batching, unbatched

    exe = ExecutableImage("app")
    exe.define("leaf")
    pctx = make_pctx(exe)

    def driver():
        with unbatched():
            yield from pctx.call_batch("leaf", 500, 2e-6)
        yield from pctx.flush()

    run_ctx(env, pctx, driver())
    assert env.now == pytest.approx(500 * 2e-6)
    assert pctx.fn("leaf").call_count == 500
    # The context manager restored the fast path.
    assert set_batching(True) is True


def test_set_batching_returns_previous_state():
    from repro.program import set_batching

    assert set_batching(False) is True
    try:
        assert set_batching(False) is False
    finally:
        assert set_batching(True) is False
