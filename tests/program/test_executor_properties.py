"""Property tests for the executor: random call trees with random probe
configurations always produce well-formed traces."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import ProfileView, Timeline
from repro.cluster import Cluster, POWER3_SP, Task
from repro.program import ENTRY, EXIT, ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment
from repro.vt import BEGIN, END, FunctionRegistry, TraceFile, VTProbeSnippet, VTProcessState

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)

N_FUNCS = 5

# A "call tree program" is a list of ops walked depth-first:
#   (fn_index, [children...]) with bounded depth/size.
call_node = st.deferred(
    lambda: st.tuples(
        st.integers(0, N_FUNCS - 1),
        st.lists(call_node, max_size=3),
    )
)
programs = st.lists(call_node, min_size=1, max_size=6)
probe_config = st.lists(
    st.tuples(st.integers(0, N_FUNCS - 1), st.booleans()),  # (fn, dynamic?)
    max_size=N_FUNCS,
)


def build(static_instrumented, dynamic_probes):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=3)
    exe = ExecutableImage("prop")

    def make_body(i):
        def body(pctx, children):
            pctx.charge(1e-4)
            for child_idx, grand in children:
                yield from pctx.call(f"fn{child_idx}", grand)
            pctx.charge(1e-4)

        return body

    for i in range(N_FUNCS):
        exe.define(f"fn{i}", body=make_body(i))
    if static_instrumented:
        exe.instrument_statically()
    task = Task(env, cluster.node(0), "p0", SPEC)
    image = ProcessImage(env, exe, "p0")
    pctx = ProgramContext(env, task, image, SPEC)
    vt = VTProcessState(env, SPEC, image, 0, FunctionRegistry())
    vt.initialize(task)
    for fn_idx in dynamic_probes:
        fi = image.func(f"fn{fn_idx}")
        vt.funcdef(task, fi.name)
        image.install_probe(fi.name, ENTRY, VTProbeSnippet(fi, BEGIN))
        image.install_probe(fi.name, EXIT, VTProbeSnippet(fi, END))
    return env, task, pctx, vt


@given(prog=programs, static=st.booleans(), probes=probe_config)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_any_probe_mix_yields_wellformed_trace(prog, static, probes):
    dynamic = [fn for fn, dyn in probes if dyn]
    env, task, pctx, vt = build(static, dynamic)

    def driver():
        for fn_idx, children in prog:
            yield from pctx.call(f"fn{fn_idx}", children)
        yield from pctx.flush()

    proc = task.start(driver())
    env.run(until=proc)
    env.run()

    trace = TraceFile("prop")
    vt.flush_to(trace)
    timeline = Timeline(trace)
    # Balanced nesting on every bar.
    for bar in timeline.bars.values():
        assert bar.unmatched_enters == 0
        # Intervals are properly nested: children lie inside parents.
        for iv in bar.intervals:
            for other in bar.intervals:
                if other.depth == iv.depth + 1 and iv.start <= other.start < iv.end:
                    assert other.end <= iv.end + 1e-12

    def count_calls(nodes):
        total = 0
        for fn_idx, children in nodes:
            total += 1 + count_calls(children)
        return total

    n_calls = count_calls(prog)
    if static and not dynamic:
        # Exactly one enter+leave pair per call.
        assert trace.raw_record_count == 2 * n_calls
    if not static and not dynamic:
        assert trace.raw_record_count == 0

    # Profile inclusive time can never be less than exclusive.
    pv = ProfileView(trace)
    for p in pv.table():
        assert p.inclusive >= p.exclusive - 1e-12


@given(prog=programs, probes=probe_config, seed=st.integers(0, 99))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_executor_deterministic(prog, probes, seed):
    dynamic = [fn for fn, dyn in probes if dyn]

    def run_once():
        env, task, pctx, vt = build(True, dynamic)

        def driver():
            for fn_idx, children in prog:
                yield from pctx.call(f"fn{fn_idx}", children)
            yield from pctx.flush()

        proc = task.start(driver())
        env.run(until=proc)
        env.run()
        return env.now, task.compute_time

    assert run_once() == run_once()
