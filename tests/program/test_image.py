"""Tests for executable/process images, symbols, variables, patching."""

import pytest

from repro.program import (
    ENTRY,
    EXIT,
    Const,
    ExecutableImage,
    FunctionSymbol,
    ProcessImage,
)
from repro.simt import Environment


def build_exe():
    exe = ExecutableImage("app")
    exe.define("main")
    exe.define("solve_pressure")
    exe.define("solve_energy")
    exe.define("io_dump")
    return exe


def test_duplicate_symbol_rejected():
    exe = ExecutableImage("app")
    exe.define("f")
    with pytest.raises(ValueError, match="duplicate"):
        exe.define("f")


def test_function_names_listed():
    exe = build_exe()
    assert set(exe.function_names()) == {
        "main", "solve_pressure", "solve_energy", "io_dump",
    }
    assert "main" in exe


def test_static_instrumentation_marks_all():
    exe = build_exe()
    n = exe.instrument_statically()
    assert n == 4
    assert all(s.static_instrumented for s in exe.symbols.values())
    # Idempotent: second call instruments nothing new.
    assert exe.instrument_statically() == 0


def test_static_instrumentation_subset():
    exe = build_exe()
    assert exe.instrument_statically(["solve_pressure"]) == 1
    assert exe.symbols["solve_pressure"].static_instrumented
    assert not exe.symbols["main"].static_instrumented


def test_non_instrumentable_functions_skipped():
    exe = ExecutableImage("app")
    exe.add_function(FunctionSymbol("_stub", instrumentable=False))
    assert exe.instrument_statically() == 0


def test_process_image_has_instance_per_symbol():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    assert pim.func("main").symbol.name == "main"
    with pytest.raises(KeyError):
        pim.func("nope")


def test_find_functions_glob():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    names = sorted(fi.name for fi in pim.find_functions("solve_*"))
    assert names == ["solve_energy", "solve_pressure"]
    assert pim.find_functions("zzz*") == []


def test_install_and_remove_probe():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    handle = pim.install_probe("solve_pressure", ENTRY, Const(0))
    assert pim.installed_probes == 1
    assert pim.probes_installed_at("solve_pressure", ENTRY) == 1
    assert pim.func("solve_pressure").entry is not None

    assert pim.remove_probe(handle) is True
    assert pim.installed_probes == 0
    # Empty trampoline is torn down (jump patched back out).
    assert pim.func("solve_pressure").entry is None
    # Removing twice is a no-op returning False.
    assert pim.remove_probe(handle) is False


def test_multiple_probes_chain_at_one_point():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    h1 = pim.install_probe("main", EXIT, Const(1))
    h2 = pim.install_probe("main", EXIT, Const(2))
    assert pim.probes_installed_at("main", EXIT) == 2
    pim.remove_probe(h1)
    assert pim.probes_installed_at("main", EXIT) == 1
    assert pim.func("main").exit is not None  # one mini left
    pim.remove_probe(h2)
    assert pim.func("main").exit is None


def test_probe_activation_toggle():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    h = pim.install_probe("main", ENTRY, Const(1), activate=False)
    assert not h.mini.active
    pim.set_probe_active(h, True)
    assert h.mini.active


def test_install_on_bad_location_rejected():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    with pytest.raises(ValueError):
        pim.install_probe("main", "callsite", Const(1))


def test_install_on_non_instrumentable_rejected():
    env = Environment()
    exe = ExecutableImage("app")
    exe.add_function(FunctionSymbol("locked", instrumentable=False))
    pim = ProcessImage(env, exe, "app[0]")
    with pytest.raises(ValueError, match="not instrumentable"):
        pim.install_probe("locked", ENTRY, Const(1))


def test_variable_cells_notify_watchers():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    cell = pim.variable_cell("spin")
    ev = cell.changed()
    assert not ev.triggered
    pim.write_variable("spin", 99)
    assert ev.triggered and ev._value == 99
    assert pim.read_variable("spin") == 99


def test_runtime_registry():
    env = Environment()
    pim = ProcessImage(env, build_exe(), "app[0]")
    def fn(ctx):
        return None

    pim.register_runtime("VT_begin", fn)
    assert pim.resolve_runtime("VT_begin") is fn
    assert pim.resolve_runtime("VT_end") is None


def test_images_are_independent_across_processes():
    """Each MPI rank's image is patched independently (Fig. 9 premise)."""
    env = Environment()
    exe = build_exe()
    a = ProcessImage(env, exe, "app[0]")
    b = ProcessImage(env, exe, "app[1]")
    a.install_probe("main", ENTRY, Const(1))
    assert a.installed_probes == 1
    assert b.installed_probes == 0
    assert b.func("main").entry is None
