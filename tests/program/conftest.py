"""Shared fixtures for program-layer tests."""

import pytest

from repro.cluster import Cluster, POWER3_SP, Task
from repro.program import ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment


@pytest.fixture
def spec():
    # No jitter/noise for exact-arithmetic tests.
    return POWER3_SP.with_overrides(net_jitter=0.0, os_noise=0.0)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def make_pctx(env, spec):
    """Factory: a ProgramContext over a fresh image with given symbols."""

    def _make(exe=None, name="proc0"):
        if exe is None:
            exe = ExecutableImage("testapp")
        cluster = Cluster(env, spec, seed=3)
        node = cluster.node(0)
        task = Task(env, node, name, spec)
        image = ProcessImage(env, exe, name)
        return ProgramContext(env, task, image, spec)

    return _make


def run_ctx(env, pctx, gen):
    """Drive a generator on the context's task and return its value."""
    proc = pctx.task.start(gen)
    return env.run(until=proc)
