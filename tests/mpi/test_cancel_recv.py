"""Mailbox.cancel_recv: withdrawing posted receives (MPI_Cancel)."""

from repro.mpi.messages import ANY_SOURCE, ANY_TAG, P2P, Envelope
from repro.mpi.transport import Mailbox
from repro.simt import Environment


def make_envelope(env, src=0, tag=1, payload="x", size=8):
    return Envelope(src, 1, tag, P2P, payload, size, env.now)


def test_cancel_posted_unmatched_recv():
    env = Environment()
    box = Mailbox(env, rank=1)
    ev = box.post_recv(0, 1, P2P)
    assert box.cancel_recv(ev) is True
    # A later matching delivery lands in the unexpected queue instead.
    box.deliver(make_envelope(env))
    assert not ev.triggered
    assert box.unexpected_count == 1


def test_cancel_matched_unprocessed_recv_refiles_envelope():
    """Regression: a receive that matched but whose completion event is
    still riding the queue could not be withdrawn — the envelope rode a
    cancelled event into oblivion.  Undoing the match must re-file it."""
    env = Environment()
    box = Mailbox(env, rank=1)
    box.deliver(make_envelope(env, payload="precious"))
    ev = box.post_recv(0, 1, P2P)
    assert ev.triggered and not ev.processed  # matched the unexpected one
    assert box.cancel_recv(ev) is True
    assert box.unexpected_count == 1
    # The message is not lost: a new receive still matches it.
    ev2 = box.post_recv(0, 1, P2P)
    assert ev2.triggered
    assert ev2._value.payload == "precious"
    # The cancelled event never completes.
    env.run()
    assert not ev.processed


def test_cancel_completed_recv_returns_false():
    env = Environment()
    box = Mailbox(env, rank=1)
    box.deliver(make_envelope(env))
    ev = box.post_recv(0, 1, P2P)
    env.run()
    assert ev.processed
    assert box.cancel_recv(ev) is False


def test_cancel_foreign_event_returns_false():
    env = Environment()
    box = Mailbox(env, rank=1)
    assert box.cancel_recv(env.event()) is False


def test_refiled_envelope_keeps_arrival_order():
    """The undone match slots back by arrival time, so wildcard receives
    still see messages oldest-first."""
    env = Environment()
    box = Mailbox(env, rank=1)
    box.deliver(make_envelope(env, tag=1, payload="first"))
    env.run(until=1.0)
    box.deliver(make_envelope(env, tag=2, payload="second"))
    env.run(until=2.0)
    box.deliver(make_envelope(env, tag=1, payload="third"))

    ev = box.post_recv(0, 2, P2P)  # matches "second" (arrived at t=1)
    assert box.cancel_recv(ev) is True
    got = [box.post_recv(ANY_SOURCE, ANY_TAG, P2P)._value.payload
           for _ in range(3)]
    assert got == ["first", "second", "third"]


def test_cancel_recv_counts_in_obs():
    from repro import obs

    env = Environment()
    with obs.collecting() as registry:
        box = Mailbox(env, rank=1)
        box.cancel_recv(box.post_recv(0, 1, P2P))
    assert registry.counters.get("mpi.cancelled_recvs") == 1
