"""Property-based tests (hypothesis) for the MPI layer."""


from hypothesis import given, settings
from hypothesis import strategies as st


from .conftest import run_mpi
from .test_pt2pt import mpi_main

# Keep rank counts small: each example builds a full simulated job.
ranks = st.integers(min_value=1, max_value=9)
ranks2 = st.integers(min_value=2, max_value=9)
seeds = st.integers(min_value=0, max_value=2**16)

SETTINGS = dict(max_examples=15, deadline=None)


@given(n=ranks, seed=seeds)
@settings(**SETTINGS)
def test_allreduce_matches_python_sum(n, seed):
    def body(pctx, comm):
        return (yield from comm.allreduce(comm.rank * 3 + 1))

    _job, results = run_mpi(n, mpi_main(body), seed=seed)
    expected = sum(r * 3 + 1 for r in range(n))
    assert results == [expected] * n


@given(n=ranks, root_frac=st.floats(min_value=0, max_value=0.999), seed=seeds)
@settings(**SETTINGS)
def test_bcast_from_any_root(n, root_frac, seed):
    root = int(root_frac * n)

    def body(pctx, comm):
        payload = ("data", root) if comm.rank == root else None
        return (yield from comm.bcast(payload, root=root))

    _job, results = run_mpi(n, mpi_main(body), seed=seed)
    assert results == [("data", root)] * n


@given(n=ranks, seed=seeds)
@settings(**SETTINGS)
def test_gather_scatter_roundtrip(n, seed):
    def body(pctx, comm):
        gathered = yield from comm.gather(comm.rank**2, root=0)
        scattered = yield from comm.scatter(gathered, root=0)
        return scattered

    _job, results = run_mpi(n, mpi_main(body), seed=seed)
    assert results == [r**2 for r in range(n)]


@given(n=ranks2, nmsg=st.integers(min_value=1, max_value=12), seed=seeds)
@settings(**SETTINGS)
def test_ring_pipeline_preserves_order(n, nmsg, seed):
    """Messages forwarded around a ring arrive complete and ordered."""

    def body(pctx, comm):
        nxt, prv = (comm.rank + 1) % n, (comm.rank - 1) % n
        got = []
        for i in range(nmsg):
            if comm.rank == 0:
                yield from comm.send((i, "token"), dest=nxt, tag=9)
                got.append((yield from comm.recv(source=prv, tag=9)))
            else:
                item = yield from comm.recv(source=prv, tag=9)
                got.append(item)
                yield from comm.send(item, dest=nxt, tag=9)
        return got

    _job, results = run_mpi(n, mpi_main(body), seed=seed)
    expected = [(i, "token") for i in range(nmsg)]
    for got in results:
        assert got == expected


@given(n=ranks2, seed=seeds)
@settings(**SETTINGS)
def test_barrier_is_a_true_barrier(n, seed):
    """No rank's post-barrier clock precedes any rank's pre-barrier clock."""

    def body(pctx, comm):
        yield from pctx.compute(0.01 * (comm.rank + 1) ** 2)
        before = pctx.now
        yield from comm.barrier()
        return (before, pctx.now)

    _job, results = run_mpi(n, mpi_main(body), seed=seed)
    latest_before = max(b for b, _a in results)
    assert all(a >= latest_before for _b, a in results)


@given(n=ranks, seed=seeds)
@settings(**SETTINGS)
def test_determinism_same_seed_same_times(n, seed):
    def body(pctx, comm):
        yield from comm.barrier()
        yield from comm.allreduce(comm.rank)
        return pctx.now

    _j1, r1 = run_mpi(n, mpi_main(body), seed=seed)
    _j2, r2 = run_mpi(n, mpi_main(body), seed=seed)
    assert r1 == r2


@given(n=ranks2, seed=seeds, sizes=st.lists(
    st.integers(min_value=1, max_value=400_000), min_size=1, max_size=5))
@settings(**SETTINGS)
def test_mixed_eager_rendezvous_payloads_arrive_intact(n, seed, sizes):
    import numpy as np

    def body(pctx, comm):
        if comm.rank == 0:
            for k, size in enumerate(sizes):
                yield from comm.send(np.full(size // 8 + 1, float(k)), dest=1, tag=k)
            return None
        if comm.rank == 1:
            sums = []
            for k, size in enumerate(sizes):
                arr = yield from comm.recv(source=0, tag=k)
                assert (arr == float(k)).all()
                sums.append(len(arr))
            return sums
        return None

    _job, results = run_mpi(n, mpi_main(body), seed=seed)
    assert results[1] == [s // 8 + 1 for s in sizes]
