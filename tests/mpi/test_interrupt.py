"""Interrupting a rank mid-rendezvous leaves the transport consistent.

A rank parked in the rendezvous handshake (large send, receiver never
posts) is exactly where the suspend/interrupt machinery meets the
transport.  Interrupting it must not corrupt mailbox state: the RTS
envelope stays queued as unexpected, the send counters reflect exactly
one rendezvous send, and the wire-byte accounting matches what was
actually committed to the wire.
"""

import pytest

from repro import obs
from repro.cluster import Cluster, POWER3_SP
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment, Interrupt

SPEC = POWER3_SP.with_overrides(net_jitter=0.0, os_noise=0.0)

#: Well past the eager threshold so the send takes the rendezvous path.
BIG = 10 * SPEC.eager_limit


def _world(send_big):
    """Two ranks: 0 blocks in a rendezvous send (when ``send_big``),
    1 never posts the recv.

    Neither rank calls MPI_Finalize (its barrier would deadlock once
    rank 0 bails out).  A watcher interrupts rank 0 at t=0.5.  With
    ``send_big=False`` this is the fault-free baseline used to subtract
    MPI_Init's own wire traffic out of the counters.
    """
    env = Environment()
    cluster = Cluster(env, SPEC, seed=5)

    def program(pctx):
        yield from pctx.call("MPI_Init")
        if pctx.mpi.rank == 0:
            if not send_big:
                return ("baseline", None)
            try:
                yield from pctx.mpi.comm.send("bulk", 1, tag=7, size=BIG)
            except Interrupt as exc:
                return ("interrupted", exc.cause)
            return ("sent", None)
        yield from pctx.compute(2.0)
        return ("idle", None)

    job = MpiJob(env, cluster, ExecutableImage("intr"), 2, program)
    job.start()

    if send_big:
        def watcher():
            yield env.timeout(0.5)
            job.procs[0].interrupt("suspend-request")

        env.process(watcher())
    env.run(until=job.completion())
    return job


def _interrupted_world():
    return _world(send_big=True)


def test_interrupt_mid_rendezvous_keeps_transport_consistent():
    with obs.collecting() as base_reg:
        base = _world(send_big=False)
    with obs.collecting() as reg:
        job = _interrupted_world()
    assert job.procs[0].value == ("interrupted", "suspend-request")
    assert job.procs[1].value == ("idle", None)

    transport = job.world.transport
    baseline = base.world.transport
    # Exactly one rendezvous on top of whatever MPI_Init did.
    assert transport.rendezvous_sends == 1
    assert baseline.rendezvous_sends == 0
    assert transport.eager_sends == baseline.eager_sends
    # The RTS envelope is still parked in rank 1's unexpected queue —
    # the interrupt neither consumed nor leaked it.
    assert transport.mailboxes[1].unexpected_count == \
        baseline.mailboxes[1].unexpected_count + 1
    assert transport.mailboxes[0].unexpected_count == \
        baseline.mailboxes[0].unexpected_count

    counters = reg.snapshot()["counters"]
    base_counters = base_reg.snapshot()["counters"]
    assert counters["mpi.rendezvous_sends"] == 1
    # Only the 64-byte RTS plus the committed payload were accounted on
    # top of init traffic; an inconsistent abort would double-count or
    # drop the payload bytes.
    assert counters["mpi.wire_bytes"] - base_counters["mpi.wire_bytes"] == 64 + BIG
    # Nothing ever matched the interrupted send.
    assert counters.get("mpi.matched_posted", 0) == \
        base_counters.get("mpi.matched_posted", 0)
    assert counters.get("mpi.matched_unexpected", 0) == \
        base_counters.get("mpi.matched_unexpected", 0)


def test_interrupted_send_is_reproducible():
    def value():
        return _interrupted_world().procs[0].value

    assert value() == value()


def test_stale_rts_from_interrupted_send_is_drainable():
    """The abandoned handshake does not wedge the transport: the stale
    RTS envelope of an interrupted send still matches a later receive
    (its orphaned handshake fires with no waiter, harmlessly), and a
    retried send completes normally behind it."""
    env = Environment()
    cluster = Cluster(env, SPEC, seed=5)
    log = []

    def program(pctx):
        yield from pctx.call("MPI_Init")
        if pctx.mpi.rank == 0:
            try:
                yield from pctx.mpi.comm.send("stale", 1, tag=7, size=BIG)
            except Interrupt:
                log.append("interrupted")
                # Retry after the interrupt; the receiver drains the
                # stale RTS first, then matches this one.
                yield from pctx.mpi.comm.send("fresh", 1, tag=7, size=BIG)
            yield from pctx.call("MPI_Finalize")
            return "sent"
        yield from pctx.compute(2.0)
        first = yield from pctx.mpi.comm.recv(source=0, tag=7)
        second = yield from pctx.mpi.comm.recv(source=0, tag=7)
        yield from pctx.call("MPI_Finalize")
        return (first, second)

    job = MpiJob(env, cluster, ExecutableImage("intr2"), 2, program)
    job.start()

    def watcher():
        yield env.timeout(0.5)
        job.procs[0].interrupt("poke")

    env.process(watcher())
    env.run(until=job.completion())
    assert log == ["interrupted"]
    assert job.procs[0].value == "sent"
    # Non-overtaking: the stale payload arrives before the fresh one.
    assert job.procs[1].value == ("stale", "fresh")
    assert job.world.transport.rendezvous_sends == 2
    assert job.world.transport.mailboxes[1].unexpected_count == 0
