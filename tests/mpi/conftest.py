"""Fixtures for MPI-layer tests: build and run small jobs quickly."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment


@pytest.fixture
def spec():
    return POWER3_SP.with_overrides(net_jitter=0.0, os_noise=0.0)


def run_mpi(n_procs, program, spec=None, exe=None, link_vt=True, vt_config=None, seed=0):
    """Run ``program(pctx)`` on n_procs ranks; return (job, results).

    results[rank] is the program's return value on that rank.
    """
    env = Environment()
    cluster = Cluster(
        env, spec or POWER3_SP.with_overrides(net_jitter=0.0, os_noise=0.0), seed=seed
    )
    if exe is None:
        exe = ExecutableImage("testapp")
    job = MpiJob(
        env, cluster, exe, n_procs, program,
        link_vt=link_vt, vt_config=vt_config,
    )
    job.start()
    env.run(until=job.completion())
    results = [p.value for p in job.procs]
    return job, results
