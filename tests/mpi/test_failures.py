"""Failure injection: aborted ranks, deadlocks, misuse of the runtime."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment, SimtError

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def make_job(program, n=2, strict=True):
    env = Environment(strict=strict)
    cluster = Cluster(env, SPEC, seed=1)
    job = MpiJob(env, cluster, ExecutableImage("failapp"), n, program)
    return env, job


def test_rank_abort_surfaces_in_strict_mode():
    """A rank raising mid-run aborts the simulation loudly, like a rank
    segfault killing a poe job — never a silent hang."""

    def program(pctx):
        yield from pctx.call("MPI_Init")
        if pctx.mpi.rank == 1:
            raise RuntimeError("simulated segfault")
        yield from pctx.compute(1.0)
        yield from pctx.call("MPI_Finalize")

    env, job = make_job(program)
    job.start()
    with pytest.raises(SimtError, match="crashed"):
        env.run()


def test_recv_deadlock_is_detectable():
    """Mutual recv with no sender: the run drains with ranks blocked,
    and run(until=completion) reports the deadlock."""

    def program(pctx):
        yield from pctx.call("MPI_Init")
        yield from pctx.mpi.comm.recv(source=1 - pctx.mpi.rank, tag=9)

    env, job = make_job(program)
    job.start()
    with pytest.raises(SimtError, match="deadlock"):
        env.run(until=job.completion())
    # Both ranks are parked in the transport, not crashed.
    assert all(p.is_alive for p in job.procs)


def test_double_mpi_init_rejected():
    def program(pctx):
        yield from pctx.call("MPI_Init")
        try:
            yield from pctx.call("MPI_Init")
        except RuntimeError as e:
            yield from pctx.call("MPI_Finalize")
            return "twice" in str(e)

    env, job = make_job(program)
    job.start()
    env.run(until=job.completion())
    assert all(p.value is True for p in job.procs)


def test_finalize_before_init_rejected():
    def program(pctx):
        try:
            yield from pctx.call("MPI_Finalize")
        except RuntimeError as e:
            return "before MPI_Init" in str(e)

    env, job = make_job(program)
    job.start()
    env.run(until=job.completion())
    assert all(p.value is True for p in job.procs)


def test_collective_arity_mismatch_deadlocks_not_corrupts():
    """One rank skips a collective: the others block (detectable), no
    value corruption ever occurs."""

    def program(pctx):
        yield from pctx.call("MPI_Init")
        if pctx.mpi.rank != 0:
            yield from pctx.mpi.comm.barrier()
        return "skipped" if pctx.mpi.rank == 0 else "waited"

    env, job = make_job(program, n=4)
    job.start()
    with pytest.raises(SimtError, match="deadlock"):
        env.run(until=job.completion())
    assert job.procs[0].value == "skipped"  # rank 0 finished fine


def test_mismatched_reduce_op_still_deterministic():
    """Different ops per rank is user error; the sim remains
    deterministic (same seed, same wrong answer) rather than flaky."""
    import operator

    def program(pctx):
        yield from pctx.call("MPI_Init")
        op = operator.add if pctx.mpi.rank % 2 == 0 else max
        result = yield from pctx.mpi.comm.allreduce(pctx.mpi.rank + 1, op=op)
        yield from pctx.call("MPI_Finalize")
        return result

    def run():
        env, job = make_job(program, n=4)
        job.start()
        env.run(until=job.completion())
        env.run()
        return [p.value for p in job.procs]

    assert run() == run()
