"""Point-to-point semantics: send/recv, wildcards, ordering, protocols."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Status

from .conftest import run_mpi


def mpi_main(body):
    """Wrap a body(pctx, comm) with MPI_Init/Finalize."""

    def program(pctx):
        yield from pctx.call("MPI_Init")
        result = yield from body(pctx, pctx.mpi.comm)
        yield from pctx.call("MPI_Finalize")
        return result

    return program


def test_simple_send_recv():
    def body(pctx, comm):
        if comm.rank == 0:
            yield from comm.send({"x": 42}, dest=1, tag=7)
            return "sent"
        obj = yield from comm.recv(source=0, tag=7)
        return obj

    _job, results = run_mpi(2, mpi_main(body))
    assert results[0] == "sent"
    assert results[1] == {"x": 42}


def test_recv_wildcards_and_status():
    def body(pctx, comm):
        if comm.rank == 0:
            yield from comm.send(b"payload", dest=1, tag=13)
            return None
        status = Status(-1, -1, 0)
        obj = yield from comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
        return (obj, status.source, status.tag, status.size)

    _job, results = run_mpi(2, mpi_main(body))
    obj, source, tag, size = results[1]
    assert obj == b"payload"
    assert source == 0 and tag == 13 and size == 7


def test_messages_not_overtaken_same_flow():
    """MPI non-overtaking: same (src, dst, tag) arrive in send order."""

    def body(pctx, comm):
        if comm.rank == 0:
            for i in range(10):
                yield from comm.send(i, dest=1, tag=0)
            return None
        got = []
        for _ in range(10):
            got.append((yield from comm.recv(source=0, tag=0)))
        return got

    _job, results = run_mpi(2, mpi_main(body), seed=11)
    assert results[1] == list(range(10))


def test_tag_selective_matching():
    def body(pctx, comm):
        if comm.rank == 0:
            yield from comm.send("a", dest=1, tag=1)
            yield from comm.send("b", dest=1, tag=2)
            return None
        second = yield from comm.recv(source=0, tag=2)
        first = yield from comm.recv(source=0, tag=1)
        return (first, second)

    _job, results = run_mpi(2, mpi_main(body))
    assert results[1] == ("a", "b")


def test_large_message_uses_rendezvous():
    data = np.arange(100_000, dtype=np.float64)  # 800 KB >> eager limit

    def body(pctx, comm):
        if comm.rank == 0:
            yield from comm.send(data, dest=1)
            return None
        got = yield from comm.recv(source=0)
        return float(got.sum())

    job, results = run_mpi(2, mpi_main(body))
    assert results[1] == pytest.approx(float(data.sum()))
    assert job.world.transport.rendezvous_sends >= 1


def test_small_message_uses_eager():
    def body(pctx, comm):
        if comm.rank == 0:
            yield from comm.send([1, 2, 3], dest=1)
        else:
            yield from comm.recv(source=0)

    job, _ = run_mpi(2, mpi_main(body))
    assert job.world.transport.rendezvous_sends == 0
    assert job.world.transport.eager_sends >= 1


def test_rendezvous_sender_blocks_until_recv_posted():
    data = np.zeros(200_000)

    def body(pctx, comm):
        if comm.rank == 0:
            t0 = pctx.now
            yield from comm.send(data, dest=1)
            return pctx.now - t0
        yield from pctx.compute(2.0)  # receiver is late
        yield from comm.recv(source=0)
        return None

    _job, results = run_mpi(2, mpi_main(body))
    # Sender waited ~2s for the handshake.
    assert results[0] >= 1.9


def test_eager_sender_does_not_block():
    def body(pctx, comm):
        if comm.rank == 0:
            t0 = pctx.now
            yield from comm.send(1, dest=1)
            elapsed = pctx.now - t0
            return elapsed
        yield from pctx.compute(2.0)  # receiver is late
        yield from comm.recv(source=0)
        return None

    _job, results = run_mpi(2, mpi_main(body))
    assert results[0] < 0.1


def test_isend_irecv_requests():
    def body(pctx, comm):
        if comm.rank == 0:
            req = comm.isend("hello", dest=1)
            yield from req.wait()
            return None
        req = comm.irecv(source=0)
        obj = yield from req.wait()
        done, value = req.test()
        assert done and value == "hello"
        return obj

    _job, results = run_mpi(2, mpi_main(body))
    assert results[1] == "hello"


def test_sendrecv_exchanges_without_deadlock():
    def body(pctx, comm):
        peer = 1 - comm.rank
        got = yield from comm.sendrecv(f"from{comm.rank}", dest=peer, source=peer)
        return got

    _job, results = run_mpi(2, mpi_main(body))
    assert results == ["from1", "from0"]


def test_iprobe_detects_pending_message():
    def body(pctx, comm):
        if comm.rank == 0:
            yield from comm.send(1, dest=1, tag=5)
            return None
        # Wait long enough for the eager message to land.
        yield from pctx.compute(1.0)
        seen = comm.iprobe(source=0, tag=5)
        yield from comm.recv(source=0, tag=5)
        return (seen, comm.iprobe(source=0, tag=5))

    _job, results = run_mpi(2, mpi_main(body))
    assert results[1] == (True, False)


def test_send_to_invalid_rank_raises():
    def body(pctx, comm):
        try:
            yield from comm.send(1, dest=99)
        except ValueError:
            return "rejected"

    _job, results = run_mpi(2, mpi_main(body))
    assert results[0] == "rejected"


def test_transfer_time_scales_with_message_size():
    def make_body(nbytes):
        def body(pctx, comm):
            if comm.rank == 0:
                yield from comm.send(np.zeros(nbytes // 8), dest=1)
                return None
            t0 = pctx.now
            yield from comm.recv(source=0)
            return pctx.now - t0

        return body

    _j1, r_small = run_mpi(2, mpi_main(make_body(1_000)))
    _j2, r_large = run_mpi(2, mpi_main(make_body(100_000_000)))
    assert r_large[1] > r_small[1] * 10


def test_wait_all_completes_in_order():
    from repro.mpi import wait_all

    def body(pctx, comm):
        if comm.rank == 0:
            reqs = [comm.isend(i * 11, dest=1, tag=i) for i in range(4)]
            yield from wait_all(reqs)
            return "sent"
        reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
        values = yield from wait_all(reqs)
        return values

    _job, results = run_mpi(2, mpi_main(body))
    assert results[1] == [0, 11, 22, 33]


def test_zero_wire_time_delivery_goes_through_event_queue():
    """Regression: ``_schedule_delivery`` used to call ``deliver()``
    synchronously when the wire time was zero, letting the envelope jump
    ahead of same-timestamp events already on the queue."""
    from repro.cluster import Cluster, POWER3_SP
    from repro.mpi.messages import P2P
    from repro.mpi.transport import Transport
    from repro.simt import Environment
    from repro.mpi import Envelope

    env = Environment()
    cluster = Cluster(env, POWER3_SP.with_overrides(net_jitter=0.0, os_noise=0.0))
    node = cluster.node(0)
    transport = Transport(env, cluster, [node, node])

    order = []
    before = env.timeout(0.0)
    before.callbacks.append(lambda _ev: order.append("before"))

    mailbox = transport.mailboxes[1]
    real_deliver = mailbox.deliver

    def recording_deliver(envelope):
        order.append("deliver")
        real_deliver(envelope)

    mailbox.deliver = recording_deliver
    envelope = Envelope(0, 1, 0, P2P, b"x", 0, env.now)
    transport._schedule_delivery(envelope, at=env.now)  # zero delay

    after = env.timeout(0.0)
    after.callbacks.append(lambda _ev: order.append("after"))

    # Nothing may happen synchronously at schedule time...
    assert order == [] and mailbox.unexpected_count == 0
    env.run()
    # ...and at run time the delivery respects queue (FIFO) order.
    assert order == ["before", "deliver", "after"]
    assert mailbox.unexpected_count == 1
