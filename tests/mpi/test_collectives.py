"""Collective-operation correctness across rank counts (incl. non-powers
of two) and cost scaling."""

import operator

import numpy as np
import pytest

from .conftest import run_mpi
from .test_pt2pt import mpi_main


NPROCS = [1, 2, 3, 4, 5, 8, 13, 16]


@pytest.mark.parametrize("n", NPROCS)
def test_barrier_synchronizes_ranks(n):
    def body(pctx, comm):
        # Stagger ranks; after the barrier all clocks must be >= the
        # slowest rank's pre-barrier time.
        yield from pctx.compute(0.1 * comm.rank)
        yield from comm.barrier()
        return pctx.now

    _job, results = run_mpi(n, mpi_main(body))
    slowest = 0.1 * (n - 1)
    assert all(t >= slowest for t in results)


@pytest.mark.parametrize("n", NPROCS)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_roots_value(n, root):
    root = 0 if root == 0 else n - 1

    def body(pctx, comm):
        value = {"data": [comm.rank]} if comm.rank == root else None
        got = yield from comm.bcast(value, root=root)
        return got

    _job, results = run_mpi(n, mpi_main(body))
    assert all(r == {"data": [root]} for r in results)


@pytest.mark.parametrize("n", NPROCS)
def test_reduce_sum(n):
    def body(pctx, comm):
        return (yield from comm.reduce(comm.rank + 1, op=operator.add, root=0))

    _job, results = run_mpi(n, mpi_main(body))
    assert results[0] == n * (n + 1) // 2
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", [2, 3, 8])
def test_reduce_with_numpy_arrays(n):
    def body(pctx, comm):
        arr = np.full(4, float(comm.rank))
        return (yield from comm.reduce(arr, op=lambda a, b: a + b, root=0))

    _job, results = run_mpi(n, mpi_main(body))
    np.testing.assert_allclose(results[0], np.full(4, sum(range(n))))


@pytest.mark.parametrize("n", NPROCS)
def test_allreduce_everyone_gets_sum(n):
    def body(pctx, comm):
        return (yield from comm.allreduce(comm.rank, op=operator.add))

    _job, results = run_mpi(n, mpi_main(body))
    expected = n * (n - 1) // 2
    assert results == [expected] * n


def test_allreduce_max():
    def body(pctx, comm):
        return (yield from comm.allreduce(comm.rank * 7 % 5, op=max))

    _job, results = run_mpi(5, mpi_main(body))
    assert results == [4] * 5


@pytest.mark.parametrize("n", NPROCS)
def test_gather_orders_by_rank(n):
    def body(pctx, comm):
        return (yield from comm.gather(f"r{comm.rank}", root=0))

    _job, results = run_mpi(n, mpi_main(body))
    assert results[0] == [f"r{i}" for i in range(n)]
    assert all(r is None for r in results[1:])


@pytest.mark.parametrize("n", NPROCS)
def test_allgather(n):
    def body(pctx, comm):
        return (yield from comm.allgather(comm.rank * 2))

    _job, results = run_mpi(n, mpi_main(body))
    assert results == [[2 * i for i in range(n)]] * n


@pytest.mark.parametrize("n", NPROCS)
def test_scatter(n):
    def body(pctx, comm):
        items = [f"for{i}" for i in range(comm.size)] if comm.rank == 0 else None
        return (yield from comm.scatter(items, root=0))

    _job, results = run_mpi(n, mpi_main(body))
    assert results == [f"for{i}" for i in range(n)]


def test_scatter_wrong_length_rejected():
    def body(pctx, comm):
        try:
            yield from comm.scatter([1], root=0)
        except ValueError:
            return "rejected"
        return "accepted"

    # Only root validates; run with 2 ranks, rank1 would block forever on
    # a recv, so both ranks take the error path via a guard.
    def program(pctx):
        yield from pctx.call("MPI_Init")
        comm = pctx.mpi.comm
        if comm.rank == 0:
            try:
                yield from comm.scatter([1], root=0)
            except ValueError:
                return "rejected"
        return "n/a"

    _job, results = run_mpi(2, program)
    assert results[0] == "rejected"


@pytest.mark.parametrize("n", [2, 3, 4, 7])
def test_alltoall(n):
    def body(pctx, comm):
        objs = [(comm.rank, dest) for dest in range(comm.size)]
        return (yield from comm.alltoall(objs))

    _job, results = run_mpi(n, mpi_main(body))
    for rank, got in enumerate(results):
        assert got == [(src, rank) for src in range(n)]


def test_alltoall_large_payloads_no_deadlock():
    def body(pctx, comm):
        objs = [np.zeros(50_000) for _ in range(comm.size)]
        got = yield from comm.alltoall(objs)
        return len(got)

    _job, results = run_mpi(4, mpi_main(body))
    assert results == [4] * 4


def test_barrier_cost_grows_logarithmically():
    def make(n):
        def body(pctx, comm):
            t0 = pctx.now
            for _ in range(10):
                yield from comm.barrier()
            return (pctx.now - t0) / 10

        _job, results = run_mpi(n, mpi_main(body), seed=5)
        return max(results)

    t2, t16, t64 = make(2), make(16), make(64)
    assert t2 < t16 < t64
    # Dissemination is O(log P): 64 ranks ~ 6 stages vs 1 stage at 2 ranks;
    # allow generous slack for jitter but rule out linear growth.
    assert t64 < t2 * 30


def test_collectives_mix_is_consistent():
    """Back-to-back different collectives must not cross-match."""

    def body(pctx, comm):
        s = yield from comm.allreduce(1)
        g = yield from comm.allgather(comm.rank)
        b = yield from comm.bcast("x" if comm.rank == 2 else None, root=2)
        yield from comm.barrier()
        return (s, g, b)

    _job, results = run_mpi(5, mpi_main(body))
    assert results == [(5, list(range(5)), "x")] * 5
