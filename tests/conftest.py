"""Suite-wide safety net: a hard wall-clock ceiling on any pytest run.

The fault-injection tests deliberately create worlds where things hang
(dead daemons, lost handshakes); a bug in a recovery path turns a test
failure into an eternal hang that CI only reports as a cancelled job
with no traceback.  ``faulthandler.dump_traceback_later`` arms a
watchdog *thread* that dumps every stack and kills the process at the
deadline — unlike SIGALRM it cannot collide with the per-point
``setitimer`` budget the sweep worker uses (pytest-timeout is not a
dependency for the same reason).
"""

import faulthandler
import os

#: Whole-session ceiling, not per-test: generous enough for the slowest
#: CI matrix leg, small enough to beat the job-level cancel.
SUITE_TIMEOUT_S = float(os.environ.get("REPRO_SUITE_TIMEOUT", "1200"))


def pytest_configure(config):
    if SUITE_TIMEOUT_S > 0:
        faulthandler.dump_traceback_later(SUITE_TIMEOUT_S, exit=True)


def pytest_unconfigure(config):
    faulthandler.cancel_dump_traceback_later()
