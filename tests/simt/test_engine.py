"""Unit tests for the DES engine core: clock, queue, run modes."""

import math

import pytest

from repro.simt import Environment, SimtError, StopSimulation


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    assert env.now == 2.5


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_in_past_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 42

    p = env.process(proc(env))
    assert env.run(until=p) == 42


def test_run_until_failed_event_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=p)


def test_run_until_pending_event_is_deadlock():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimtError, match="deadlock"):
        env.run(until=ev)


def test_run_drains_queue_when_until_none():
    env = Environment()
    times = []

    def proc(env, delay):
        yield env.timeout(delay)
        times.append(env.now)

    env.process(proc(env, 3.0))
    env.process(proc(env, 1.0))
    env.run()
    assert times == [1.0, 3.0]


def test_events_at_same_time_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in "abc":
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimtError):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()

    def proc(env):
        yield env.timeout(7.0)

    env.process(proc(env))
    env.step()  # consume the Initialize event
    assert env.peek() == 7.0


def test_stop_simulation_exits_run_with_reason():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise StopSimulation("halted")

    env.process(proc(env))
    assert env.run() == "halted"
    assert env.now == 1.0


def test_unobserved_crash_aborts_in_strict_mode():
    env = Environment(strict=True)

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("rank aborted")

    env.process(bad(env))
    with pytest.raises(SimtError, match="crashed"):
        env.run()


def test_observed_crash_does_not_abort():
    env = Environment(strict=True)

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("rank aborted")

    def watcher(env, p):
        try:
            yield p
        except ValueError:
            return "caught"

    p = env.process(bad(env))
    w = env.process(watcher(env, p))
    assert env.run(until=w) == "caught"


def test_events_processed_counter_increases():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.events_processed >= 3  # init + 2 timeouts


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return "early"

    p = env.process(proc(env))
    env.run()
    # p is long processed; run(until=p) must return immediately.
    assert env.run(until=p) == "early"


@pytest.mark.parametrize("until", [math.inf, float("inf")])
def test_run_until_any_infinity_drains_without_corrupting_clock(until):
    """Regression: ``until`` was compared to the Infinity alias by
    identity, so a caller's own inf object corrupted the clock to inf
    once the queue drained."""
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run(until=until)
    assert env.now == 3.0

    # The clock must still be usable: a finite run(until=t) would have
    # raised "until is in the past" against a clock stuck at inf.
    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_already_failed_event_reraises():
    """An already-processed failed event re-raises on every run(until=...)."""
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    p = env.process(proc(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=p)
    assert p.processed and not p.ok
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=p)


def test_run_until_already_failed_bare_event_reraises():
    env = Environment()
    ev = env.event()
    ev.fail(KeyError("lost"))
    env.run()  # processes the failure; nothing is waiting on it
    assert ev.processed and not ev.ok
    with pytest.raises(KeyError, match="lost"):
        env.run(until=ev)


def test_yield_non_event_is_type_error():
    env = Environment(strict=True)

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises((TypeError, SimtError)):
        env.run()


# ------------------------------------------------------- lazy cancellation


def test_cancel_scheduled_event_never_runs_callbacks():
    env = Environment()
    fired = []
    t = env.timeout(1.0)
    t.callbacks.append(lambda ev: fired.append(ev))
    assert env.cancel(t) is True
    env.run()
    assert fired == []
    assert env.events_cancelled == 1


def test_cancelled_event_does_not_count_as_processed():
    env = Environment()
    env.timeout(1.0)
    cancelled = env.timeout(2.0)
    env.cancel(cancelled)
    env.run()
    assert env.events_processed == 1
    assert env.events_cancelled == 1


def test_cancelled_head_does_not_advance_clock():
    """A cancelled event is skipped without the clock ever visiting its
    timestamp — it must not perturb run(until=...) accounting."""
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(5.0)
        done.append(env.now)

    env.cancel(env.timeout(1.0))
    env.process(proc(env))
    env.run()
    assert done == [5.0]
    assert env.now == 5.0


def test_peek_purges_cancelled_events():
    env = Environment()
    first = env.timeout(1.0)
    env.timeout(4.0)
    env.cancel(first)
    assert env.peek() == 4.0


def test_cancel_returns_false_for_untriggered_event():
    env = Environment()
    ev = env.event()  # pending: never scheduled
    assert env.cancel(ev) is False


def test_cancel_returns_false_for_processed_event():
    env = Environment()
    t = env.timeout(1.0)
    env.run()
    assert t.processed
    assert env.cancel(t) is False


def test_cancel_twice_is_idempotent():
    env = Environment()
    t = env.timeout(1.0)
    assert env.cancel(t) is True
    assert env.cancel(t) is False
    assert env.events_cancelled == 1


def test_run_with_only_cancelled_events_returns_immediately():
    env = Environment()
    env.cancel(env.timeout(1.0))
    env.cancel(env.timeout(2.0))
    env.run()
    assert env.events_processed == 0
    assert env.now == 0.0


def test_step_skips_cancelled_events():
    env = Environment()
    env.cancel(env.timeout(1.0))
    live = env.timeout(2.0)
    env.step()
    assert live.processed
    assert env.now == 2.0
