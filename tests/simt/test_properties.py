"""Property-based tests (hypothesis) for the simulation kernel.

Invariants checked:
* the clock is monotonically non-decreasing across every processed event;
* timeouts complete exactly at creation-time + delay, regardless of how
  many other events interleave;
* determinism: identical programs produce identical event orderings;
* channels preserve FIFO order for any put/get interleaving;
* RNG streams are reproducible and independent of creation order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import Channel, Environment, RandomStreams

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


@given(delays)
def test_clock_is_monotonic(ds):
    env = Environment()
    observed = []

    def proc(env, d):
        yield env.timeout(d)
        observed.append(env.now)

    for d in ds:
        env.process(proc(env, d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(ds)


@given(delays)
def test_timeouts_fire_at_exact_times(ds):
    env = Environment()
    fired = {}

    def proc(env, i, d):
        yield env.timeout(d)
        fired[i] = env.now

    for i, d in enumerate(ds):
        env.process(proc(env, i, d))
    env.run()
    for i, d in enumerate(ds):
        assert fired[i] == d


@given(delays)
def test_sequential_timeouts_accumulate(ds):
    env = Environment()

    def proc(env):
        for d in ds:
            yield env.timeout(d)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == sum(ds)


@given(delays)
def test_determinism_two_runs_identical(ds):
    def build_and_run():
        env = Environment()
        trace = []

        def proc(env, i, d):
            yield env.timeout(d)
            trace.append((i, env.now))
            yield env.timeout(d / 2)
            trace.append((i, env.now))

        for i, d in enumerate(ds):
            env.process(proc(env, i, d))
        env.run()
        return trace, env.events_processed

    assert build_and_run() == build_and_run()


@given(st.lists(st.integers(), min_size=0, max_size=50))
def test_channel_preserves_fifo(items):
    env = Environment()
    ch = Channel(env)
    got = []

    def producer(env):
        for it in items:
            ch.put(it)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in items:
            got.append((yield ch.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == items


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
@settings(max_examples=50)
def test_rng_streams_reproducible(seed, name):
    a = RandomStreams(seed).get(name).random(5)
    b = RandomStreams(seed).get(name).random(5)
    assert (a == b).all()


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25)
def test_rng_streams_independent_of_creation_order(seed):
    s1 = RandomStreams(seed)
    s2 = RandomStreams(seed)
    # Touch streams in different orders; draws from "x" must agree.
    s1.get("a")
    x1 = s1.get("x").random(3)
    s2.get("b")
    s2.get("c")
    x2 = s2.get("x").random(3)
    assert (x1 == x2).all()


def test_rng_child_prefix_aliases_parent_stream():
    root = RandomStreams(7)
    child = root.child("net")
    a = child.get("node0").random(3)
    b = RandomStreams(7).get("net.node0").random(3)
    assert (a == b).all()


def test_rng_grandchild_prefixing():
    root = RandomStreams(7)
    gc = root.child("a").child("b")
    x = gc.get("c").random(2)
    y = RandomStreams(7).get("a.b.c").random(2)
    assert (x == y).all()
