"""Tests for Channel, Gate, Resource and Latch."""

import pytest

from repro.simt import Channel, Environment, Gate, Interrupt, Latch, Resource


# ---------------------------------------------------------------- Channel


def test_channel_put_then_get():
    env = Environment()
    ch = Channel(env)
    ch.put("msg")

    def getter(env):
        return (yield ch.get())

    p = env.process(getter(env))
    assert env.run(until=p) == "msg"


def test_channel_get_blocks_until_put():
    env = Environment()
    ch = Channel(env)

    def getter(env):
        v = yield ch.get()
        return (v, env.now)

    def putter(env):
        yield env.timeout(5.0)
        ch.put("late")

    p = env.process(getter(env))
    env.process(putter(env))
    assert env.run(until=p) == ("late", 5.0)


def test_channel_fifo_order_of_items():
    env = Environment()
    ch = Channel(env)
    for i in range(4):
        ch.put(i)
    got = []

    def getter(env):
        for _ in range(4):
            got.append((yield ch.get()))

    env.process(getter(env))
    env.run()
    assert got == [0, 1, 2, 3]


def test_channel_fifo_fairness_of_getters():
    env = Environment()
    ch = Channel(env)
    got = []

    def getter(env, tag):
        v = yield ch.get()
        got.append((tag, v))

    for tag in "ab":
        env.process(getter(env, tag))

    def putter(env):
        yield env.timeout(1.0)
        ch.put(1)
        ch.put(2)

    env.process(putter(env))
    env.run()
    assert got == [("a", 1), ("b", 2)]


def test_channel_try_get_and_len():
    env = Environment()
    ch = Channel(env)
    assert ch.try_get() is None
    ch.put("x")
    assert len(ch) == 1
    assert ch.try_get() == "x"
    assert len(ch) == 0


def test_channel_waiting_count():
    env = Environment()
    ch = Channel(env)

    def getter(env):
        yield ch.get()

    env.process(getter(env))
    env.run()  # drains: getter is now blocked... run returns (queue empty)
    assert ch.waiting == 1


# ---------------------------------------------------------------- Gate


def test_open_gate_does_not_block():
    env = Environment()
    gate = Gate(env, open_=True)

    def proc(env):
        yield gate.wait()
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 0.0


def test_closed_gate_parks_until_open():
    env = Environment()
    gate = Gate(env, open_=False)

    def proc(env):
        yield gate.wait()
        return env.now

    def opener(env):
        yield env.timeout(8.0)
        gate.open()

    p = env.process(proc(env))
    env.process(opener(env))
    assert env.run(until=p) == 8.0


def test_gate_releases_all_parked():
    env = Environment()
    gate = Gate(env, open_=False)
    released = []

    def proc(env, tag):
        yield gate.wait()
        released.append(tag)

    for tag in range(3):
        env.process(proc(env, tag))

    def opener(env):
        yield env.timeout(1.0)
        assert gate.parked == 3
        gate.open()

    env.process(opener(env))
    env.run()
    assert sorted(released) == [0, 1, 2]


def test_gate_when_parked_threshold():
    env = Environment()
    gate = Gate(env, open_=False)

    def proc(env, d):
        yield env.timeout(d)
        yield gate.wait()

    for d in (1.0, 2.0, 3.0):
        env.process(proc(env, d))

    def controller(env):
        yield gate.when_parked(3)
        t = env.now
        gate.open()
        return t

    c = env.process(controller(env))
    assert env.run(until=c) == 3.0


def test_gate_when_parked_already_satisfied():
    env = Environment()
    gate = Gate(env, open_=False)

    def proc(env):
        yield gate.wait()

    env.process(proc(env))
    env.run()

    def controller(env):
        yield gate.when_parked(1)
        gate.open()
        return env.now

    c = env.process(controller(env))
    assert env.run(until=c) == 0.0


def test_gate_reusable_close_open_cycle():
    env = Environment()
    gate = Gate(env, open_=True)
    history = []

    def proc(env):
        for _ in range(2):
            yield gate.wait()
            history.append(env.now)
            yield env.timeout(1.0)

    def controller(env):
        yield env.timeout(0.5)
        gate.close()
        yield env.timeout(2.0)
        gate.open()

    env.process(proc(env))
    env.process(controller(env))
    env.run()
    # First wait passes at t=0 (open); second wait at t=1 parks (closed
    # at 0.5), releases at 2.5.
    assert history == [0.0, 2.5]


# ---------------------------------------------------------------- Resource


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    acquired = []

    def proc(env, tag, hold):
        yield res.request()
        acquired.append((tag, env.now))
        yield env.timeout(hold)
        res.release()

    env.process(proc(env, "a", 5.0))
    env.process(proc(env, "b", 5.0))
    env.process(proc(env, "c", 1.0))
    env.run()
    assert acquired == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_idle_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        yield res.request()
        yield env.timeout(10.0)
        res.release()

    def waiter(env):
        yield res.request()
        res.release()

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=5.0)
    assert res.queued == 1 and res.in_use == 1


def test_resource_cancel_withdraws_queued_request():
    """A process interrupted while parked on request() must be able to
    withdraw; the slot then goes to the next live waiter, not to the
    abandoned event."""
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder(env):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        res.release()

    def impatient(env):
        req = res.request()
        try:
            yield req
        except Interrupt:
            assert res.cancel(req) is True
            log.append(("gave-up", env.now))
            return
        res.release()
        log.append(("impatient-got-it", env.now))

    def patient(env):
        req = res.request()
        yield req
        log.append(("patient-got-it", env.now))
        res.release()

    env.process(holder(env))
    imp = env.process(impatient(env))
    env.process(patient(env))

    def attacker(env):
        yield env.timeout(2.0)
        imp.interrupt("timeout")

    env.process(attacker(env))
    env.run()
    assert log == [("gave-up", 2.0), ("patient-got-it", 5.0)]
    assert res.in_use == 0 and res.queued == 0


def test_resource_cancel_granted_request_returns_false():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()  # granted immediately
    assert res.cancel(req) is False
    assert res.in_use == 1


def test_resource_release_skips_dead_triggered_waiter():
    """Regression for the slot leak: release() handed the slot to a
    queued event that was already triggered through another path, so
    nobody ever released it and capacity shrank forever."""
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()  # hold the only slot
    dead = res.request()  # queued...
    dead.succeed()  # ...then triggered out-of-band, never cancelled
    live_got_it = []

    def live_waiter(env):
        req = res.request()
        yield req
        live_got_it.append(env.now)
        res.release()

    env.process(live_waiter(env))
    env.run()
    assert live_got_it == []  # still queued behind the held slot
    res.release()
    env.run()
    assert live_got_it == [0.0]
    assert res.in_use == 0 and res.queued == 0


def test_resource_release_with_only_dead_waiters_frees_slot():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    dead = res.request()
    dead.succeed()
    res.release()
    assert res.in_use == 0 and res.queued == 0
    # The slot is genuinely free again.
    assert res.request().triggered
    assert res.in_use == 1


# ---------------------------------------------------------------- Latch


def test_latch_releases_after_n():
    env = Environment()
    latch = Latch(env, 3)

    def worker(env, d):
        yield env.timeout(d)
        latch.count_down()

    for d in (1.0, 2.0, 3.0):
        env.process(worker(env, d))

    def joiner(env):
        yield latch.wait()
        return env.now

    j = env.process(joiner(env))
    assert env.run(until=j) == 3.0


def test_latch_zero_is_immediately_open():
    env = Environment()
    latch = Latch(env, 0)
    assert latch.event.triggered


def test_latch_overrelease_raises():
    env = Environment()
    latch = Latch(env, 1)
    latch.count_down()
    with pytest.raises(RuntimeError):
        latch.count_down()


def test_latch_negative_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Latch(env, -1)
