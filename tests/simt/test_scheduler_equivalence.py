"""The two-tier event queue vs the flat-heap reference, property-tested.

The engine replaced its flat ``(time, priority, sequence)`` heap with a
two-tier structure: a dict of ``(time, priority)`` buckets drained FIFO
plus a heap over the distinct keys.  The refactor is only sound if the
*observable* schedule is untouched — every figure in the repo is pinned
byte-for-byte to the old ordering.

These properties pin that contract against a reference implementation
of the old scheduler kept here in the test: for any program of
schedules — same-timestamp collisions, URGENT priorities, follow-on
events scheduled from inside callbacks (the case the batch-drain
optimisation could plausibly break) — the pop order and the processed
count are identical.  A third property checks lazy cancellation against
the reference with the cancelled set simply removed.
"""

from heapq import heappop, heappush

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import NORMAL, URGENT, Environment, Event

# A coarse delay grid, so same-(time, priority) collisions — the whole
# point of the bucket tier — are common rather than measure-zero.
delays = st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0])
priorities = st.sampled_from([URGENT, NORMAL])
#: Follow-ons scheduled from inside the parent's callback.
children = st.lists(st.tuples(delays, priorities), max_size=3)
#: A program: root events scheduled up front at t=0 + delay.
programs = st.lists(st.tuples(delays, priorities, children), max_size=15)


def reference_order(ops):
    """Run ``ops`` through the old engine's queue: one flat heap keyed
    by ``(time, priority, sequence)``.  Returns the pop order as ids:
    ``i`` for root i, ``(i, j)`` for its j-th follow-on."""
    heap = []
    seq = 0
    for i, (delay, priority, _children) in enumerate(ops):
        heappush(heap, (delay, priority, seq, i))
        seq += 1
    order = []
    while heap:
        now, _priority, _seq, ident = heappop(heap)
        order.append(ident)
        if isinstance(ident, int):
            for j, (delay, priority) in enumerate(ops[ident][2]):
                heappush(heap, (now + delay, priority, seq, (ident, j)))
                seq += 1
    return order


def _schedule_bare(env, ident, child_ops, order):
    """Schedule a bare triggered event the way Timeout does, recording
    ``ident`` and scheduling ``child_ops`` when its callback runs."""
    event = Event(env)
    event._ok = True
    event._value = None

    def callback(_event):
        order.append(ident)
        for j, (delay, priority) in enumerate(child_ops):
            child = _schedule_bare(env, (ident, j), (), order)
            env.schedule(child, delay=delay, priority=priority)

    event.callbacks.append(callback)
    return event


@given(programs)
@settings(max_examples=200)
def test_pop_order_matches_flat_heap_reference(ops):
    env = Environment()
    order = []
    for i, (delay, priority, child_ops) in enumerate(ops):
        event = _schedule_bare(env, i, child_ops, order)
        env.schedule(event, delay=delay, priority=priority)
    env.run()
    expected = reference_order(ops)
    assert order == expected
    assert env.events_processed == len(expected)


@given(programs)
@settings(max_examples=100)
def test_clock_advance_matches_reference(ops):
    """The final clock equals the last pop time of the reference heap."""
    heap, seq = [], 0
    for i, (delay, priority, _c) in enumerate(ops):
        heappush(heap, (delay, priority, seq, i))
        seq += 1
    last = 0.0
    while heap:
        now, _p, _s, ident = heappop(heap)
        last = now
        if isinstance(ident, int):
            for j, (delay, priority) in enumerate(ops[ident][2]):
                heappush(heap, (now + delay, priority, seq, (ident, j)))
                seq += 1

    env = Environment()
    order = []
    for i, (delay, priority, child_ops) in enumerate(ops):
        env.schedule(_schedule_bare(env, i, child_ops, order), delay=delay,
                     priority=priority)
    env.run()
    assert env.now == last


@given(st.lists(st.tuples(delays, priorities), min_size=1, max_size=20),
       st.data())
@settings(max_examples=200)
def test_lazy_cancellation_matches_reference_minus_cancelled(ops, data):
    cancelled = {
        i for i in range(len(ops))
        if data.draw(st.booleans(), label=f"cancel[{i}]")
    }
    env = Environment()
    order = []
    events = []
    for i, (delay, priority) in enumerate(ops):
        event = _schedule_bare(env, i, (), order)
        env.schedule(event, delay=delay, priority=priority)
        events.append(event)
    for i in cancelled:
        assert env.cancel(events[i])
    env.run()

    expected = [i for i in reference_order([(d, p, ()) for d, p in ops])
                if i not in cancelled]
    assert order == expected
    assert env.events_processed == len(expected)
    assert env.events_cancelled == len(cancelled)
