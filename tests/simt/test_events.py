"""Tests for Event/Timeout/Process/AnyOf/AllOf semantics."""

import pytest

from repro.simt import (
    AllOf,
    AnyOf,
    DeadProcessError,
    Environment,
    EventRescheduleError,
    Interrupt,
)


def test_event_lifecycle_flags():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed("v")
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed and ev.value == "v" and ev.ok


def test_event_value_unavailable_while_pending():
    env = Environment()
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(EventRescheduleError):
        ev.succeed(2)
    with pytest.raises(EventRescheduleError):
        ev.fail(RuntimeError())


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_receives_event_value():
    env = Environment()
    ev = env.event()
    got = []

    def proc(env):
        got.append((yield ev))

    env.process(proc(env))
    ev.succeed("payload")
    env.run()
    assert got == ["payload"]


def test_process_receives_event_failure_as_exception():
    env = Environment()
    ev = env.event()

    def proc(env):
        try:
            yield ev
        except KeyError:
            return "caught"

    p = env.process(proc(env))
    ev.fail(KeyError("k"))
    assert env.run(until=p) == "caught"


def test_multiple_processes_wait_on_one_event():
    env = Environment()
    ev = env.event()
    got = []

    def proc(env, tag):
        yield ev
        got.append(tag)

    for tag in range(3):
        env.process(proc(env, tag))
    ev.succeed()
    env.run()
    assert got == [0, 1, 2]


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("old")
    env.run()
    assert ev.processed

    def proc(env):
        v = yield ev
        return (v, env.now)

    p = env.process(proc(env))
    assert env.run(until=p) == ("old", 0.0)


def test_process_is_joinable_event():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return "child-done"

    def parent(env):
        result = yield env.process(child(env))
        return (result, env.now)

    p = env.process(parent(env))
    assert env.run(until=p) == ("child-done", 2.0)


def test_process_name_from_generator():
    env = Environment()

    def my_worker(env):
        yield env.timeout(1)

    p = env.process(my_worker(env))
    assert "my_worker" in repr(p) or p.name == "my_worker"


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_interrupt_delivers_cause():
    env = Environment()
    seen = []

    def victim(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            seen.append((env.now, intr.cause))

    def attacker(env, v):
        yield env.timeout(3.0)
        v.interrupt("suspend-please")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert seen == [(3.0, "suspend-please")]


def test_interrupted_process_can_rewait_same_event():
    env = Environment()
    timeline = []

    def victim(env):
        t = env.timeout(10.0)
        try:
            yield t
        except Interrupt:
            timeline.append(("interrupted", env.now))
            yield t  # keep waiting for the original timeout
        timeline.append(("done", env.now))

    def attacker(env, v):
        yield env.timeout(4.0)
        v.interrupt()

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert timeline == [("interrupted", 4.0), ("done", 10.0)]


def test_interrupt_dead_process_raises():
    env = Environment()

    def victim(env):
        yield env.timeout(1.0)

    v = env.process(victim(env))
    env.run()
    with pytest.raises(DeadProcessError):
        v.interrupt()


def test_allof_waits_for_all():
    env = Environment()

    def proc(env, d):
        yield env.timeout(d)
        return d

    ps = [env.process(proc(env, d)) for d in (3.0, 1.0, 2.0)]

    def joiner(env):
        result = yield AllOf(env, ps)
        return (env.now, sorted(result.values()))

    j = env.process(joiner(env))
    assert env.run(until=j) == (3.0, [1.0, 2.0, 3.0])


def test_anyof_fires_on_first():
    env = Environment()

    def proc(env, d):
        yield env.timeout(d)
        return d

    ps = [env.process(proc(env, d)) for d in (3.0, 1.0, 2.0)]

    def joiner(env):
        result = yield AnyOf(env, ps)
        return (env.now, list(result.values()))

    j = env.process(joiner(env))
    assert env.run(until=j) == (1.0, [1.0])


def test_allof_fails_fast_on_failure():
    env = Environment()

    def good(env):
        yield env.timeout(5.0)

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("dead rank")

    ps = [env.process(good(env)), env.process(bad(env))]

    def joiner(env):
        try:
            yield AllOf(env, ps)
        except RuntimeError:
            return env.now

    j = env.process(joiner(env))
    assert env.run(until=j) == 1.0


def test_allof_empty_triggers_immediately():
    env = Environment()

    def joiner(env):
        yield AllOf(env, [])
        return env.now

    j = env.process(joiner(env))
    assert env.run(until=j) == 0.0


def test_condition_rejects_foreign_events():
    env1, env2 = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env1, [env2.event()])


# ---------------------------------------------------- trigger() state machine


def test_trigger_copies_success_from_source():
    env = Environment()
    source, target = env.event(), env.event()
    source.succeed("payload")
    target.trigger(source)
    env.run()
    assert target.processed and target.ok and target.value == "payload"


def test_trigger_copies_failure_from_source():
    env = Environment()
    source, target = env.event(), env.event()
    exc = KeyError("lost")
    source.fail(exc)
    target.trigger(source)

    def watcher(env):
        try:
            yield target
        except KeyError:
            return "caught"

    w = env.process(watcher(env))
    assert env.run(until=w) == "caught"
    assert not target.ok and target.value is exc


def test_trigger_rejects_pending_source():
    """Regression: chaining from an untriggered source scheduled the
    target with a PENDING value, corrupting deadlock detection."""
    env = Environment()
    source, target = env.event(), env.event()
    with pytest.raises(ValueError, match="not.*triggered"):
        target.trigger(source)
    # The target must be untouched and still usable.
    assert not target.triggered
    target.succeed("fine")
    env.run()
    assert target.value == "fine"


def test_trigger_on_already_triggered_self_raises():
    """Regression: re-triggering silently re-queued the event, running
    its callbacks twice; it must enforce the succeed()/fail() state
    machine instead."""
    env = Environment()
    source, target = env.event(), env.event()
    source.succeed(1)
    target.succeed(2)
    with pytest.raises(EventRescheduleError):
        target.trigger(source)
    env.run()
    assert target.value == 2  # the original trigger won


def test_trigger_on_processed_self_raises():
    env = Environment()
    source, target = env.event(), env.event()
    source.succeed(1)
    target.succeed(2)
    env.run()
    assert target.processed
    with pytest.raises(EventRescheduleError):
        target.trigger(source)
