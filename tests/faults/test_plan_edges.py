"""Fault-plan edge cases: overlapping crash windows, zero-width windows,
plans aimed entirely at already-quarantined ranks."""

import pytest

from repro.apps import get_app
from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import run_policy
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def make_injector(plan, seed=0):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=seed)
    return FaultInjector.install(plan, cluster)


# -- overlapping crash/restart windows ----------------------------------------


def test_overlapping_crash_windows_union():
    # Crash+restart [2, 6) overlapping a second crash [4, 9): the node
    # is down across the union and back up only after the later end.
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1, start=2.0, end=6.0),
        FaultSpec("daemon_crash", node=1, start=4.0, end=9.0),
    )
    inj = make_injector(plan)
    assert not inj.daemon_down(1, 1.9)
    assert inj.daemon_down(1, 2.0)
    assert inj.daemon_down(1, 5.0)   # inside both windows
    assert inj.daemon_down(1, 6.0)   # first ended, second still active
    assert inj.daemon_down(1, 8.9)
    assert not inj.daemon_down(1, 9.0)


def test_crash_restart_crash_gap():
    # Two disjoint outages model crash -> restart -> crash again; the
    # daemon answers in the gap.
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=0, start=0.0, end=2.0),
        FaultSpec("daemon_crash", node=0, start=4.0, end=6.0),
    )
    inj = make_injector(plan)
    assert inj.daemon_down(0, 1.0)
    assert not inj.daemon_down(0, 3.0)  # restarted
    assert inj.daemon_down(0, 5.0)      # down again
    assert not inj.daemon_down(0, 6.0)


def test_overlapping_windows_survive_run_policy():
    # End to end: overlapping outage windows on node 1 still yield a
    # completed, deterministic run with node 1's ranks quarantined.
    app = get_app("sweep3d")
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1, start=0.0, end=3.0),
        FaultSpec("daemon_crash", node=1, start=1.0),  # never restarts
    )

    def run():
        return run_policy(app, "Dynamic", 16, scale=0.02, faults=plan)

    result = run()
    report = result.faults
    assert report["degraded"] is True
    assert report["quarantined_ranks"] == list(range(8, 16))
    assert len(result.per_rank_times) == 16
    again = run()
    assert again.per_rank_times == result.per_rank_times
    assert again.faults == report


# -- zero-width windows -------------------------------------------------------


def test_zero_width_window_is_valid_but_never_active():
    spec = FaultSpec("message_loss", probability=1.0, start=3.0, end=3.0)
    assert not spec.active_at(2.9)
    assert not spec.active_at(3.0)  # [x, x) is empty
    assert not spec.active_at(3.1)


def test_zero_width_windows_never_fire():
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1, start=5.0, end=5.0),
        FaultSpec("message_loss", probability=1.0, start=0.0, end=0.0),
    )
    inj = make_injector(plan)
    for now in (0.0, 4.9, 5.0, 5.1, 100.0):
        assert not inj.daemon_down(1, now)
        drop, extra = inj.on_control_message(0, 1, 256, now)
        assert (drop, extra) == (False, 0.0)
    assert inj.counts == {}  # no draws, no injections


def test_zero_width_plan_leaves_run_clean():
    app = get_app("sweep3d")
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1, start=5.0, end=5.0),
        FaultSpec("message_loss", probability=1.0, start=0.0, end=0.0),
    )
    result = run_policy(app, "Dynamic", 16, scale=0.02, faults=plan)
    report = result.faults
    assert report["injected"] == {}
    assert report["quarantined_ranks"] == []
    assert report["coverage"] == pytest.approx(1.0)
    assert len(result.per_rank_times) == 16


# -- plans aimed only at quarantined ranks ------------------------------------


def test_plan_targeting_only_quarantined_ranks():
    # Node 1 (ranks 8..15) dies before attach; every other spec targets
    # ranks inside that quarantined set.  The run must still complete
    # with the usual quarantine report — a fault aimed at a rank the
    # tool already gave up on cannot wedge the sweep.
    app = get_app("sweep3d")
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1, start=0.0),
        FaultSpec("vt_write_fail", rank=8, probability=1.0),
        FaultSpec("rank_slowdown", rank=9, factor=1.5),
        FaultSpec("rank_stall", rank=10, start=0.5, end=1.0),
    )

    def run():
        return run_policy(app, "Dynamic", 16, scale=0.02, faults=plan)

    result = run()
    report = result.faults
    assert report["degraded"] is True
    assert report["quarantined_ranks"] == list(range(8, 16))
    assert report["coverage"] == pytest.approx(0.5)
    # Every rank — quarantined or not — still ran to completion.
    assert len(result.per_rank_times) == 16
    assert all(t > 0 for t in result.per_rank_times)
    # Deterministic under the combined plan.
    again = run()
    assert again.per_rank_times == result.per_rank_times
    assert again.faults == report
