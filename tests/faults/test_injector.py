"""FaultInjector: installation, determinism, job-level fault arming."""

from repro.cluster import Cluster, POWER3_SP
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.jobs import MpiJob, OmpJob
from repro.program import ExecutableImage
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def make_cluster(seed=0):
    env = Environment()
    return env, Cluster(env, SPEC, seed=seed)


def test_install_skips_empty_and_none_plans():
    env, cluster = make_cluster()
    assert FaultInjector.install(None, cluster) is None
    assert FaultInjector.install(FaultPlan.empty(), cluster) is None
    assert cluster.faults is None
    assert cluster.interconnect.faults is None


def test_install_attaches_to_cluster_and_interconnect():
    env, cluster = make_cluster()
    plan = FaultPlan.of(FaultSpec("message_loss", probability=0.5))
    injector = FaultInjector.install(plan, cluster)
    assert cluster.faults is injector
    assert cluster.interconnect.faults is injector


def test_daemon_down_window():
    env, cluster = make_cluster()
    plan = FaultPlan.of(FaultSpec("daemon_crash", node=1, start=2.0, end=5.0))
    inj = FaultInjector.install(plan, cluster)
    assert not inj.daemon_down(1, 1.0)
    assert inj.daemon_down(1, 2.0)
    assert inj.daemon_down(1, 4.9)
    assert not inj.daemon_down(1, 5.0)
    assert not inj.daemon_down(0, 3.0)  # other nodes unaffected


def test_control_message_draws_are_deterministic_per_link():
    plan = FaultPlan.of(FaultSpec("message_loss", probability=0.5))

    def decisions(seed):
        env, cluster = make_cluster(seed)
        inj = FaultInjector.install(plan, cluster)
        return [inj.on_control_message(0, 1, 256, 0.0)[0] for _ in range(64)]

    assert decisions(7) == decisions(7)        # same seed, same faults
    assert decisions(7) != decisions(8)        # seed actually matters
    # Distinct links draw from distinct streams.
    env, cluster = make_cluster(7)
    inj = FaultInjector.install(plan, cluster)
    link_a = [inj.on_control_message(0, 1, 256, 0.0)[0] for _ in range(64)]
    env, cluster = make_cluster(7)
    inj = FaultInjector.install(plan, cluster)
    link_b = [inj.on_control_message(2, 3, 256, 0.0)[0] for _ in range(64)]
    assert link_a != link_b


def test_injected_faults_are_counted():
    env, cluster = make_cluster()
    plan = FaultPlan.of(FaultSpec("message_loss", probability=1.0))
    inj = FaultInjector.install(plan, cluster)
    for _ in range(5):
        drop, _extra = inj.on_control_message(0, 1, 64, 0.0)
        assert drop
    assert inj.summary() == {"message_loss": 5}
    assert inj.total_injected == 5


def _noop_program(pctx):
    yield from pctx.compute(0.1)
    return "done"


def test_apply_to_job_slowdown_mpi():
    env, cluster = make_cluster()
    plan = FaultPlan.of(FaultSpec("rank_slowdown", rank=1, factor=2.0))
    FaultInjector.install(plan, cluster)
    job = MpiJob(env, cluster, ExecutableImage("slow"), 2, _noop_program)
    job.start()
    assert job.tasks[0].slowdown == 1.0
    assert job.tasks[1].slowdown == 2.0


def test_apply_to_job_slowdown_omp_single_task():
    """OmpJob exposes one task; rank-0 faults land on it."""
    env, cluster = make_cluster()
    plan = FaultPlan.of(FaultSpec("rank_slowdown", rank=0, factor=3.0))
    FaultInjector.install(plan, cluster)
    job = OmpJob(env, cluster, ExecutableImage("omp"), 2, _noop_program)
    job.start()
    assert job.task.slowdown == 3.0


def test_rank_slowdown_changes_makespan_deterministically():
    def run(factor):
        env, cluster = make_cluster(3)
        if factor is not None:
            plan = FaultPlan.of(FaultSpec("rank_slowdown", rank=0, factor=factor))
            FaultInjector.install(plan, cluster)
        job = MpiJob(env, cluster, ExecutableImage("m"), 2, _noop_program)
        return job.run()

    base = run(None)
    slowed = run(2.0)
    assert slowed > base
    assert run(2.0) == slowed  # bit-reproducible
