"""The ``chaos`` subcommand and the ``--faults`` figure plumbing."""

import json

import pytest

from repro.experiments.cli import chaos_main, main

ARGS = ["--cpus", "16", "--scale", "0.02"]


def test_chaos_defaults_to_canned_crash_plan(capsys):
    assert chaos_main(list(ARGS)) == 0
    out = capsys.readouterr().out
    assert "daemon-crash-attach" in out
    assert "quarantined ranks: [8, 9, 10, 11, 12, 13, 14, 15]" in out
    assert "coverage: 50%" in out
    assert "injected:" in out


def test_chaos_check_determinism(capsys):
    assert chaos_main(list(ARGS) + ["--check-determinism"]) == 0
    out = capsys.readouterr().out
    assert "determinism: OK" in out


def test_chaos_json_document(capsys):
    assert chaos_main(list(ARGS) + ["--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {"point", "plan", "payload"}
    report = doc["payload"]["faults"]
    assert report["quarantined_ranks"] == list(range(8, 16))
    assert doc["plan"]["faults"]  # the canned plan rode along verbatim


def test_chaos_named_plan_and_policy_kind(capsys):
    rc = chaos_main(list(ARGS) + ["--kind", "policy", "--plan", "flaky-network",
                                  "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["point"]["kind"] == "policy"


def test_chaos_rejects_faults_plus_plan(tmp_path, capsys):
    path = tmp_path / "p.json"
    path.write_text('{"faults": []}')
    with pytest.raises(SystemExit) as exc:
        chaos_main(["--faults", str(path), "--plan", "flaky-network"])
    assert exc.value.code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_chaos_rejects_bad_plan_file(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text('{"faults": [{"kind": "nope"}]}')
    with pytest.raises(SystemExit) as exc:
        chaos_main(["--faults", str(path)])
    assert exc.value.code == 2
    assert "--faults" in capsys.readouterr().err


def test_main_dispatches_chaos(capsys):
    assert main(["chaos"] + ARGS) == 0
    assert "quarantined ranks" in capsys.readouterr().out


def test_empty_fault_plan_is_bit_identical_on_figures(tmp_path, capsys):
    """The acceptance bar: an empty plan must not perturb a single byte
    of figure output (no RNG draws, no cache-key change)."""
    path = tmp_path / "empty.json"
    path.write_text('{"faults": []}')
    assert main(["fig9", "--quick", "--no-cache", "--json"]) == 0
    baseline = capsys.readouterr().out
    assert main(["fig9", "--quick", "--no-cache", "--json",
                 "--faults", str(path)]) == 0
    assert capsys.readouterr().out == baseline
