"""Fault counters flow through obs snapshots and merge across envelopes."""

import pytest

from repro.faults import canned_plan
from repro.obs import MetricsRegistry
from repro.runner import SweepPoint, SweepRunner
from repro.runner.worker import execute_point


def faulted_point(seed=0):
    return SweepPoint.policy_cell(
        "sweep3d", "Dynamic", 16, scale=0.02, seed=seed,
        faults=canned_plan("daemon-crash-attach"),
    )


def test_envelope_obs_carries_fault_counters():
    envelope = execute_point(faulted_point(), collect_obs=True)
    assert envelope["status"] == "ok"
    counters = envelope["obs"]["counters"]
    assert counters["faults.injected"] > 0
    assert counters["faults.daemon_crash"] > 0
    # Ranks 8..15 live on the crashed node: all eight are quarantined.
    assert counters["dynprof.quarantined_ranks"] == 8
    # The injected summary in the payload agrees with the obs counter.
    report = envelope["payload"]["faults"]
    assert sum(report["injected"].values()) == counters["faults.injected"]


def test_fault_counters_merge_across_envelopes():
    envelopes = [
        execute_point(faulted_point(seed=s), collect_obs=True) for s in (0, 1)
    ]
    merged = MetricsRegistry()
    for env in envelopes:
        merged.merge_snapshot(env["obs"])
    counters = merged.snapshot()["counters"]
    per_env = [e["obs"]["counters"] for e in envelopes]
    for key in ("faults.injected", "dynprof.quarantined_ranks"):
        assert counters[key] == sum(c[key] for c in per_env)
    assert counters["dynprof.quarantined_ranks"] == 16


def test_runner_merges_fault_counters(tmp_path):
    runner = SweepRunner(jobs=1, cache=tmp_path / "cache", collect_obs=True)
    results = runner.run([faulted_point()])
    (result,) = results.values()
    assert result.status == "ok"
    counters = runner.obs.snapshot()["counters"]
    assert counters["faults.injected"] > 0
    assert counters["dynprof.quarantined_ranks"] == 8
    # Cached re-run simulates nothing, so nothing new merges in.
    again = SweepRunner(jobs=1, cache=tmp_path / "cache", collect_obs=True)
    (hit,) = again.run([faulted_point()]).values()
    assert hit.cached
    assert again.obs.snapshot()["counters"] == {}
