"""Hardened recovery paths: client timeouts/retries, structured errors,
dynprof quarantine and partial coverage under injected faults."""

import pytest

from repro.apps import get_app
from repro.cluster import Cluster, POWER3_SP, Task
from repro.dpcl import (
    DaemonUnreachableError,
    DpclClient,
    DpclError,
    DpclRequestError,
    RequestPolicy,
)
from repro.dynprof import run_policy
from repro.faults import FaultInjector, FaultPlan, FaultSpec, canned_plan
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)

#: Timeout comfortably above any single daemon handler cost at this scale.
POLICY = RequestPolicy(timeout=10.0, max_retries=2, backoff=0.5)


def setup_world(n_procs=2, plan=None, seed=13):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=seed)
    FaultInjector.install(plan, cluster)
    exe = ExecutableImage("recov")
    exe.define("looper")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        for _ in range(30):
            yield from pctx.call("looper")
            yield from pctx.compute(1.0)
        yield from pctx.call("MPI_Finalize")
        return "done"

    job = MpiJob(env, cluster, exe, n_procs, program)
    return env, cluster, job


def run_tool(env, cluster, job, body, policy=None):
    node = cluster.node(0)
    task = Task(env, node, "tool", SPEC, bind_core=False)
    client = DpclClient(env, cluster, node, job.daemon_host, policy=policy)

    def wrapped():
        return (yield from body(client))

    return client, task.start(wrapped())


def locations(job):
    return {t.name: t.node for t in job.tasks}


def test_request_policy_validation():
    with pytest.raises(ValueError, match="retries need a timeout"):
        RequestPolicy(max_retries=1)
    with pytest.raises(ValueError):
        RequestPolicy(timeout=-1.0)
    with pytest.raises(ValueError):
        RequestPolicy(timeout=1.0, max_retries=-1)
    # The default policy is the no-op pre-faults behaviour.
    assert RequestPolicy().timeout is None
    assert RequestPolicy().max_retries == 0


def test_connect_to_dead_daemon_raises_unreachable():
    """A permanently crashed daemon exhausts the retry budget and the
    client names the dead node instead of hanging forever."""
    # 16 ranks span two 8-core nodes; node 1's daemons never answer.
    plan = FaultPlan.of(FaultSpec("daemon_crash", node=1, start=0.0))
    env, cluster, job = setup_world(n_procs=16, plan=plan)
    job.start()
    caught = {}

    def body(client):
        try:
            yield from client.connect(locations(job))
        except DaemonUnreachableError as exc:
            caught["exc"] = exc
        return "out"

    client, proc = run_tool(env, cluster, job, body, policy=POLICY)
    env.run(until=proc)
    exc = caught["exc"]
    assert exc.nodes == (1,)
    assert exc.request == "ConnectReq"
    assert exc.attempts == POLICY.max_retries + 1
    assert "node(s) [1]" in str(exc)
    assert isinstance(exc, DpclError)  # old handlers still catch it
    assert client.retries == POLICY.max_retries
    env.run(until=job.completion())


def test_tolerant_connect_degrades_to_failure_map():
    plan = FaultPlan.of(FaultSpec("daemon_crash", node=1, start=0.0))
    env, cluster, job = setup_world(n_procs=16, plan=plan)
    job.start()
    out = {}

    def body(client):
        acks, failures = yield from client.connect(locations(job), tolerant=True)
        out["acks"] = acks
        out["failures"] = failures
        return "ok"

    client, proc = run_tool(env, cluster, job, body, policy=POLICY)
    env.run(until=proc)
    assert sorted(a.node_index for a in out["acks"]) == [0]
    assert list(out["failures"]) == [1]
    assert "unreachable" in out["failures"][1].error
    # Node 0 is usable despite node 1 being gone.
    assert client.is_connected_to(job.tasks[0].name)
    assert not client.is_connected_to(job.tasks[8].name)
    env.run(until=job.completion())


def test_daemon_restart_is_survivable_with_retries():
    """Crash with a finite end: the first send wave is swallowed, a
    resend wave after the restart succeeds."""
    plan = FaultPlan.of(FaultSpec("daemon_crash", node=0, start=0.0, end=2.0))
    env, cluster, job = setup_world(n_procs=2, plan=plan)
    job.start()
    out = {}

    def body(client):
        acks = yield from client.connect(locations(job))
        out["acks"] = acks
        return "ok"

    client, proc = run_tool(
        env, cluster, job, body,
        policy=RequestPolicy(timeout=1.5, max_retries=3, backoff=0.5),
    )
    env.run(until=proc)
    assert [a.node_index for a in out["acks"]] == [0]
    assert client.retries >= 1  # at least one resend wave was needed
    env.run(until=job.completion())


def test_failed_request_error_carries_structured_context():
    """Satellite: bare error strings became structured request errors."""
    env, cluster, job = setup_world()
    job.start()
    caught = {}

    def body(client):
        yield from client.connect(locations(job))
        yield from client.attach([t.name for t in job.tasks])
        try:
            yield from client.install_probes(
                [(job.tasks[0].name, "no_such_fn", "entry", None)]
            )
        except DpclRequestError as exc:
            caught["exc"] = exc
        return "ok"

    client, proc = run_tool(env, cluster, job, body)
    env.run(until=proc)
    exc = caught["exc"]
    assert exc.node_index == 0
    assert exc.request == "InstallProbeReq"
    assert exc.process == job.tasks[0].name
    assert "no_such_fn" in str(exc)
    assert "no_such_fn" in exc.reason or "no_such_fn" in str(exc)
    env.run(until=job.completion())


def test_run_policy_quarantines_dead_node_and_reports_coverage():
    """The acceptance scenario: daemon crash mid-attach + 1% message
    loss; the Dynamic policy completes with the dead node's ranks
    quarantined, and the whole thing is bit-reproducible."""
    app = get_app("sweep3d")
    plan = canned_plan("daemon-crash-attach")

    def run():
        return run_policy(app, "Dynamic", 16, scale=0.02, faults=plan)

    result = run()
    report = result.faults
    assert report is not None
    assert report["degraded"] is True
    # 16 ranks on 8-core nodes: ranks 8..15 live on crashed node 1.
    assert report["quarantined_ranks"] == list(range(8, 16))
    assert report["coverage"] == pytest.approx(0.5)
    assert report["injected"].get("daemon_crash", 0) > 0
    # All ranks still ran to completion (quarantined ones uninstrumented).
    assert len(result.per_rank_times) == 16
    assert result.time > 0
    # Determinism: same plan + seed => bit-identical everything.
    again = run()
    assert again.time == result.time
    assert again.per_rank_times == result.per_rank_times
    assert again.faults == report


def test_run_policy_without_faults_has_no_report():
    app = get_app("smg98")
    result = run_policy(app, "Subset", 4, scale=0.02)
    assert result.faults is None
