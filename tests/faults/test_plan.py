"""FaultPlan / FaultSpec: validation, round-trips, canonical identity."""

import json

import pytest

from repro.faults import CANNED_PLANS, FAULT_KINDS, FaultPlan, FaultSpec, canned_plan


def test_spec_roundtrip_every_kind():
    specs = [
        FaultSpec("daemon_crash", node=1, start=2.0, end=5.0),
        FaultSpec("message_loss", probability=0.05),
        FaultSpec("message_delay", delay=0.01, start=1.0),
        FaultSpec("probe_install_fail", node=2, probability=0.5),
        FaultSpec("rank_stall", rank=3, start=1.0, end=2.0),
        FaultSpec("rank_slowdown", rank=0, factor=2.0),
        FaultSpec("vt_write_fail", probability=0.1),
    ]
    assert {s.kind for s in specs} == set(FAULT_KINDS)
    for spec in specs:
        assert FaultSpec.from_dict(spec.to_dict()) == spec


def test_plan_roundtrip_and_canonical_stability():
    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1),
        FaultSpec("message_loss", probability=0.01),
        note="whatever",
    )
    again = FaultPlan.from_json(plan.canonical())
    assert again.specs == plan.specs
    # The note is provenance, not identity.
    assert again.canonical() == plan.canonical()
    # Canonical is compact, key-sorted JSON — byte-stable.
    assert plan.canonical() == json.dumps(
        plan.to_dict(), sort_keys=True, separators=(",", ":")
    )


def test_plan_from_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text('{"faults": [{"kind": "message_loss", "probability": 0.2}]}')
    plan = FaultPlan.from_file(str(path))
    assert len(plan) == 1
    assert plan.specs[0].kind == "message_loss"
    assert plan.specs[0].probability == 0.2


def test_empty_plan():
    assert FaultPlan.empty().is_empty
    assert len(FaultPlan.empty()) == 0
    assert FaultPlan.from_dict({"faults": []}).is_empty


@pytest.mark.parametrize("bad", [
    dict(kind="nope"),
    dict(kind="message_loss", probability=1.5),
    dict(kind="message_loss", probability=-0.1),
    dict(kind="daemon_crash"),                          # needs a node
    dict(kind="rank_stall", rank=1),                    # needs an end
    dict(kind="rank_stall", start=0.0, end=1.0),        # needs a rank
    dict(kind="rank_slowdown", factor=0.0),
    dict(kind="message_delay", delay=-1.0),
    dict(kind="daemon_crash", node=0, start=5.0, end=1.0),
    dict(kind="message_loss", typo_field=1),            # unknown field
])
def test_spec_validation_rejects(bad):
    with pytest.raises(ValueError):
        FaultSpec.from_dict(bad)


def test_active_at_window():
    spec = FaultSpec("message_loss", start=1.0, end=3.0, probability=0.5)
    assert not spec.active_at(0.5)
    assert spec.active_at(1.0)
    assert spec.active_at(2.999)
    assert not spec.active_at(3.0)  # end is exclusive
    forever = FaultSpec("daemon_crash", node=0, start=2.0)
    assert forever.active_at(1e9)
    assert not forever.active_at(1.0)


def test_canned_plans_parse_and_are_nonempty():
    for name in CANNED_PLANS:
        plan = canned_plan(name)
        assert not plan.is_empty
        # Each canned plan survives the wire format it rides in points.
        assert FaultPlan.from_json(plan.canonical()).canonical() == plan.canonical()
    with pytest.raises(KeyError, match="unknown canned fault plan"):
        canned_plan("definitely-not-a-plan")
