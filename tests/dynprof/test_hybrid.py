"""Tests for the Section 5.1 extensions: safe-point patching and
attach-to-running."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf, DynProfError
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment
from repro.vt import vt_confsync

SPEC = POWER3_SP.with_overrides(net_jitter=0.02)


def build_confsync_app(iterations=20, per_iter=1.0):
    """An app with a confsync safe point every iteration."""
    exe = ExecutableImage("hybridapp")

    def work(pctx):
        yield from pctx.compute(per_iter)

    exe.define("work", body=work)
    exe.define("helper")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        comm = pctx.mpi.comm
        yield from comm.barrier()
        t0 = pctx.now
        for _ in range(iterations):
            yield from pctx.call("work")
            yield from pctx.call_batch("helper", 100, 1e-6)
            yield from vt_confsync(pctx)  # the safe point
        yield from comm.barrier()
        elapsed = pctx.now - t0
        yield from pctx.call("MPI_Finalize")
        return elapsed

    return exe, program


def run_with_tool(n_ranks, tool_body, iterations=20, suspended=True, attach=False, seed=6):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=seed)
    exe, program = build_confsync_app(iterations)
    job = MpiJob(env, cluster, exe, n_ranks, program, start_suspended=suspended)
    tool = DynProf(env, cluster, job, attach=attach)
    if attach:
        job.start()

    def session():
        if attach:
            yield from tool._attach_running()
        else:
            yield from tool._spawn()
            from repro.dynprof.commands import parse_command
            yield from tool.execute(parse_command("start"))
        return (yield from tool_body(tool))

    proc = tool.task.start(session())
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    return env, job, tool, proc.value


# ------------------------------------------------------ safe-point patch


def test_safe_point_patch_installs_probes():
    def body(tool):
        t_hit = yield from tool.patch_at_safe_point(insert=["work"])
        return t_hit

    env, job, tool, t_hit = run_with_tool(4, body)
    assert t_hit > 0
    for image in job.images:
        # bootstrap + entry/exit of work
        assert image.installed_probes == 3
    # Probes actually fired after the safe point.
    assert job.trace.raw_record_count > 0


def test_safe_point_patch_absorbs_skew():
    """The hybrid's point: whatever stop-skew the patch causes is
    absorbed by confsync's own closing barrier, so the ranks come out
    balanced and any visible inactivity stays short."""

    def body(tool):
        yield from tool.patch_at_safe_point(insert=["work"])

    env, job, tool, _ = run_with_tool(8, body)
    times = [p.value for p in job.procs]
    assert max(times) - min(times) < 0.2  # balanced after the patch
    for task in job.tasks:
        # Beyond the initial spawn suspension, any patch-time stop is
        # brief (the patch itself, not a skewed wait).
        for start, end in task.suspensions[1:]:
            assert end - start < 1.0


def test_safe_point_vs_stop_anywhere_imbalance():
    """Safe-point patching leaves the ranks balanced; a stop-anywhere
    patch skews them (the imbalance Section 5.1 worries about)."""

    def safe_body(tool):
        yield from tool.patch_at_safe_point(insert=["work"])

    _env, job_safe, _t, _ = run_with_tool(8, safe_body, seed=9)
    times_safe = [p.value for p in job_safe.procs]
    spread_safe = max(times_safe) - min(times_safe)

    def anywhere_body(tool):
        yield tool.env.timeout(3.0)
        yield from tool._suspend_patch_resume(install=["work"], remove=())

    _env, job_any, _t, _ = run_with_tool(8, anywhere_body, seed=9)
    # Both instrumented the same function; the safe-point job is at
    # least as balanced as the stop-anywhere one.
    times_any = [p.value for p in job_any.procs]
    spread_any = max(times_any) - min(times_any)
    assert spread_safe <= spread_any + 1e-9


def test_safe_point_remove():
    def body(tool):
        yield from tool.patch_at_safe_point(insert=["work", "helper"])
        yield tool.env.timeout(4.0)
        yield from tool.patch_at_safe_point(remove=["helper"])
        return None

    env, job, tool, _ = run_with_tool(4, body)
    for image in job.images:
        assert image.probes_installed_at("helper", "entry") == 0
        assert image.probes_installed_at("work", "entry") == 1


def test_safe_point_requires_running_state():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe, program = build_confsync_app()
    job = MpiJob(env, cluster, exe, 2, program, start_suspended=True)
    tool = DynProf(env, cluster, job)

    def session():
        yield from tool._spawn()
        try:
            yield from tool.patch_at_safe_point(insert=["work"])
        except DynProfError as e:
            return str(e)

    proc = tool.task.start(session())
    env.run(until=proc)
    assert "state" in proc.value
    job.resume_all()
    env.run()


def test_safe_point_breakpoint_conflict():
    def body(tool):
        vt0 = tool.job.vt_states[0]
        vt0.break_hook = lambda pctx: None  # someone else owns it
        try:
            yield from tool.patch_at_safe_point(insert=["work"])
        except DynProfError as e:
            vt0.break_hook = None
            return "conflict" if "breakpoint" in str(e) else "other"

    _env, _job, _tool, result = run_with_tool(2, body)
    assert result == "conflict"


# ------------------------------------------------------ attach-to-running


def test_attach_to_running_and_instrument():
    def body(tool):
        assert tool.state == "running"
        yield from tool._suspend_patch_resume(install=["work"], remove=())
        return tool.state

    env, job, tool, state = run_with_tool(4, body, suspended=False, attach=True)
    assert state == "running"
    for image in job.images:
        # No bootstrap probe in attach mode: just entry/exit of work.
        assert image.installed_probes == 2
    assert all(p.value > 0 for p in job.procs)


def test_attach_waits_for_mpi_init():
    """No instrumentation before every rank finished MPI_Init."""

    def body(tool):
        yield tool.env.timeout(0.0)
        return tool.job.world.all_initialized

    _env, _job, tool, initialized = run_with_tool(
        4, body, suspended=False, attach=True
    )
    assert initialized is True
    assert any(p.name == "await-init" for p in tool.timefile.phases)


def test_attach_requires_started_job():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe, program = build_confsync_app()
    job = MpiJob(env, cluster, exe, 2, program)
    tool = DynProf(env, cluster, job, attach=True)

    def session():
        try:
            yield from tool._attach_running()
        except DynProfError as e:
            return str(e)

    proc = tool.task.start(session())
    env.run(until=proc)
    assert "not running" in proc.value


def test_spawn_mode_still_requires_suspended():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe, program = build_confsync_app()
    job = MpiJob(env, cluster, exe, 2, program)
    with pytest.raises(DynProfError, match="start_suspended"):
        DynProf(env, cluster, job)
