"""Tests for ephemeral instrumentation (the Traub et al. hybrid)."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf, DynProfError, EphemeralProfiler
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def build_app(iterations=60):
    """An app with one clearly hot function and two lukewarm ones."""
    exe = ExecutableImage("sampled")

    def hot(pctx):
        yield from pctx.compute(0.4)

    def warm(pctx):
        yield from pctx.compute(0.1)

    exe.define("hot_kernel", body=hot)
    exe.define("warm_helper", body=warm)
    exe.define("cold_leaf")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        for _ in range(iterations):
            yield from pctx.call("hot_kernel")
            yield from pctx.call("warm_helper")
            yield from pctx.call_batch("cold_leaf", 1000, 1e-6)
        yield from pctx.call("MPI_Finalize")
        return pctx.now

    return exe, program


def run_profiler(profiler_body, n_ranks=2, seed=2):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=seed)
    exe, program = build_app()
    job = MpiJob(env, cluster, exe, n_ranks, program, start_suspended=True)
    tool = DynProf(env, cluster, job)
    profiler = EphemeralProfiler(tool)

    def session():
        yield from tool._spawn()
        from repro.dynprof.commands import parse_command
        yield from tool.execute(parse_command("start"))
        return (yield from profiler_body(profiler))

    proc = tool.task.start(session())
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    return env, job, tool, profiler, proc.value


def test_sampling_ranks_hot_function_first():
    def body(profiler):
        report = yield from profiler.sample(duration=5.0, interval=0.05)
        return report

    _env, _job, _tool, _prof, report = run_profiler(body)
    ranked = report.ranked()
    assert ranked[0][0] == "hot_kernel"
    # ~80% of sampled time: hot 0.4 vs warm 0.1 vs cold 0.001.
    assert ranked[0][1] > 0.6
    assert report.samples_taken in (100, 101)  # fp accumulation
    assert report.top(2) == ["hot_kernel", "warm_helper"]


def test_sampling_detaches_accumulator():
    def body(profiler):
        yield from profiler.sample(duration=1.0, interval=0.1)
        return [t.sample_accum for t in profiler.tool.job.tasks]

    _env, _job, _tool, _prof, accums = run_profiler(body)
    assert all(a is None for a in accums)


def test_sampling_charges_interrupt_cost():
    def body(profiler):
        task = profiler.tool.job.tasks[0]
        before = task.compute_time
        yield from profiler.sample(duration=2.0, interval=0.02)
        return task.compute_time - before

    _env, _job, _tool, _prof, delta = run_profiler(body)
    # 100 samples x 5 us of interrupt cost, plus whatever the app computed.
    assert delta >= 100 * EphemeralProfiler.SAMPLE_COST


def test_snapshot_installs_then_removes():
    def body(profiler):
        yield from profiler.snapshot(["hot_kernel"], window=3.0)
        return None

    _env, job, _tool, _prof, _ = run_profiler(body)
    for image in job.images:
        assert image.probes_installed_at("hot_kernel", "entry") == 0
    # But records were collected during the window.
    names = set()
    for _p, _t, rec in job.trace.all_records():
        if hasattr(rec, "fid"):
            names.add(job.trace.function_name(rec.fid))
    assert "hot_kernel" in names
    assert "cold_leaf" not in names


def test_full_hybrid_targets_top_k():
    def body(profiler):
        report, targets = yield from profiler.run(
            sample_duration=4.0, snapshot_window=3.0, top_k=1,
        )
        return targets

    _env, job, _tool, _prof, targets = run_profiler(body)
    assert targets == ["hot_kernel"]
    assert len(_prof.reports) == 1


def test_sampling_requires_running_tool():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe, program = build_app()
    job = MpiJob(env, cluster, exe, 2, program, start_suspended=True)
    tool = DynProf(env, cluster, job)
    profiler = EphemeralProfiler(tool)

    def session():
        yield from tool._spawn()
        try:
            yield from profiler.sample(1.0)
        except DynProfError as e:
            return "rejected"

    proc = tool.task.start(session())
    env.run(until=proc)
    assert proc.value == "rejected"
    job.resume_all()
    env.run()


def test_parameter_validation():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe, program = build_app()
    job = MpiJob(env, cluster, exe, 2, program, start_suspended=True)
    tool = DynProf(env, cluster, job)
    tool.state = "running"  # bypass for validation checks
    profiler = EphemeralProfiler(tool)
    with pytest.raises(ValueError):
        next(profiler.sample(0, 0.1))
    with pytest.raises(ValueError):
        next(profiler.snapshot([], 1.0))
    with pytest.raises(ValueError):
        next(profiler.snapshot(["f"], 0))
    job.resume_all()
