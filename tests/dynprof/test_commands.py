"""Tests for the Table 1 command language."""

import pytest

from repro.dynprof import Command, CommandError, parse_command, parse_script


ALL_VERBS = ["help", "insert", "remove", "insert-file", "remove-file",
             "start", "quit", "wait"]
SHORTCUTS = {"h": "help", "i": "insert", "r": "remove", "if": "insert-file",
             "rf": "remove-file", "s": "start", "q": "quit", "w": "wait"}


def test_all_table1_commands_parse():
    for verb in ALL_VERBS:
        line = verb if verb in ("help", "start", "quit", "wait") else f"{verb} fn"
        cmd = parse_command(line)
        assert cmd.verb == verb


def test_all_table1_shortcuts_parse():
    for short, long in SHORTCUTS.items():
        line = short if long in ("help", "start", "quit", "wait") else f"{short} fn"
        assert parse_command(line).verb == long


def test_insert_collects_function_args():
    cmd = parse_command("insert hypre_SMGRelax hypre_SMGSolve")
    assert cmd.args == ("hypre_SMGRelax", "hypre_SMGSolve")


def test_insert_without_args_rejected():
    for verb in ("insert", "remove", "insert-file", "remove-file"):
        with pytest.raises(CommandError, match="argument"):
            parse_command(verb)


def test_start_with_args_rejected():
    with pytest.raises(CommandError):
        parse_command("start now")


def test_unknown_command_rejected():
    with pytest.raises(CommandError, match="unknown"):
        parse_command("frobnicate")


def test_wait_durations():
    assert parse_command("wait").seconds == 1.0
    assert parse_command("wait 3.5").seconds == 3.5
    assert parse_command("w 10").seconds == 10.0
    with pytest.raises(CommandError):
        parse_command("wait -1")
    with pytest.raises(CommandError):
        parse_command("wait soon")
    with pytest.raises(CommandError):
        parse_command("wait 1 2")


def test_blanks_and_comments_skipped():
    assert parse_command("") is None
    assert parse_command("   # just a comment") is None
    cmd = parse_command("insert f  # trailing comment")
    assert cmd.args == ("f",)


def test_parse_script():
    script = """
    # instrument the solver, run for a while, then strip the probes
    insert-file solver.txt
    start
    wait 30
    remove-file solver.txt
    quit
    """
    cmds = parse_script(script)
    assert [c.verb for c in cmds] == [
        "insert-file", "start", "wait", "remove-file", "quit",
    ]


def test_parse_script_reports_line_numbers():
    with pytest.raises(CommandError, match="line 2"):
        parse_script("start\nbogus\n")


def test_command_str_roundtrip():
    assert str(parse_command("insert a b")) == "insert a b"
    assert str(parse_command("w 2")) == "wait 2.0"
