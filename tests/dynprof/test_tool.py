"""End-to-end tests for the dynprof tool (Sections 3.3/3.4)."""

import pytest

from repro.apps import SWEEP3D, UMT98
from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf, DynProfError
from repro.jobs import MpiJob, OmpJob
from repro.simt import Environment
from repro.vt import EnterRecord

SPEC = POWER3_SP.with_overrides(net_jitter=0.02)
SCALE = 0.05


def make_dynamic_job(app, n_cpus, env=None, scale=SCALE, seed=3):
    env = env if env is not None else Environment()
    cluster = Cluster(env, SPEC, seed=seed)
    exe = app.build_exe(False)  # Dynamic targets an uninstrumented binary
    program = app.make_program(n_cpus, scale)
    if app.kind == "mpi":
        job = MpiJob(env, cluster, exe, n_cpus, program, start_suspended=True)
    else:
        job = OmpJob(env, cluster, exe, n_cpus, program, start_suspended=True)
    return env, cluster, job


def run_session(app, n_cpus, script, **kw):
    env, cluster, job = make_dynamic_job(app, n_cpus, **kw)
    tool = DynProf(
        env, cluster, job,
        file_contents={"targets.txt": "\n".join(app.dynamic_targets)},
    )
    proc = tool.run_script(script)
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    return env, job, tool


def test_requires_start_suspended_job():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe = SWEEP3D.build_exe(False)
    job = MpiJob(env, cluster, exe, 2, SWEEP3D.make_program(2, SCALE))
    with pytest.raises(DynProfError, match="start_suspended"):
        DynProf(env, cluster, job)


def test_full_session_instruments_and_traces():
    env, job, tool = run_session(SWEEP3D, 4, "insert-file targets.txt\nstart\nquit\n")
    assert tool.state == "detached"
    # Every rank got probes on the dynamic targets (entry+exit each).
    for image in job.images:
        assert image.installed_probes > 2 * 15  # bootstrap + targets
    # And the run produced real subroutine trace records.
    kinds = {type(r).__name__ for _p, _t, r in job.trace.all_records()}
    assert "EnterRecord" in kinds or "BatchPairRecord" in kinds
    # All ranks completed their main computation.
    assert all(p.value > 0 for p in job.procs)


def test_prestart_inserts_are_queued_until_safe():
    env, cluster, job = make_dynamic_job(SWEEP3D, 2)
    tool = DynProf(env, cluster, job)

    captured = {}

    def session():
        yield from tool._spawn()
        yield from tool.execute(__import__("repro.dynprof.commands", fromlist=["parse_command"]).parse_command("insert sweep"))
        # Before start: nothing installed beyond the bootstrap probe.
        captured["queued"] = list(tool._queued)
        captured["probes_before"] = [im.installed_probes for im in job.images]
        yield from tool.execute(__import__("repro.dynprof.commands", fromlist=["parse_command"]).parse_command("start"))
        captured["probes_after"] = [im.installed_probes for im in job.images]

    proc = tool.task.start(session())
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    assert captured["queued"] == ["sweep"]
    assert captured["probes_before"] == [1, 1]       # just the bootstrap
    assert captured["probes_after"] == [3, 3]        # + entry/exit of sweep


def test_queued_remove_cancels_queued_insert():
    env, cluster, job = make_dynamic_job(SWEEP3D, 2)
    tool = DynProf(env, cluster, job)
    from repro.dynprof.commands import parse_command

    def session():
        yield from tool._spawn()
        yield from tool.execute(parse_command("insert sweep source"))
        yield from tool.execute(parse_command("remove source"))
        yield from tool.execute(parse_command("start"))
        return list(tool._queued)

    proc = tool.task.start(session())
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    # Only 'sweep' was installed (bootstrap + 2).
    assert all(im.installed_probes == 3 for im in job.images)


def test_bootstrap_resynchronises_ranks():
    """Fig. 6: despite skewed spin releases, ranks re-barrier before
    main computation, so per-rank elapsed times stay balanced."""
    env, job, tool = run_session(SWEEP3D, 8, "insert-file targets.txt\nstart\nquit\n")
    times = [p.value for p in job.procs]
    assert max(times) < min(times) * 1.25


def test_create_and_instrument_time_recorded():
    env, job, tool = run_session(SWEEP3D, 4, "insert-file targets.txt\nstart\nquit\n")
    assert tool.create_and_instrument_time is not None
    assert tool.create_and_instrument_time > 1.0  # poe + attach + patch
    # The timefile has the expected phases.
    names = {p.name for p in tool.timefile.phases}
    assert {"create", "connect", "attach", "bootstrap", "start",
            "init-callbacks", "instrument", "release"} <= names
    text = tool.timefile.render()
    assert "create" in text and "instrument" in text


def test_instrument_time_grows_with_mpi_processes():
    """Figure 9: more MPI processes -> more images to walk and patch."""

    def t(n):
        _env, _job, tool = run_session(SWEEP3D, n, "insert-file targets.txt\nstart\nquit\n")
        return tool.create_and_instrument_time

    assert t(8) > t(2) * 1.5


def test_omp_single_image_instrumentation():
    env, job, tool = run_session(UMT98, 4, "insert-file targets.txt\nstart\nquit\n")
    # One shared image: bootstrap + 2 probes per dynamic target.
    assert job.image.installed_probes == 1 + 2 * len(UMT98.dynamic_targets)
    assert job.proc.value > 0


def test_midrun_insert_suspends_and_resumes():
    env, cluster, job = make_dynamic_job(SWEEP3D, 4, scale=0.2)
    tool = DynProf(env, cluster, job)
    from repro.dynprof.commands import parse_command

    def session():
        yield from tool._spawn()
        yield from tool.execute(parse_command("start"))
        yield from tool.execute(parse_command("wait 5"))
        yield from tool.execute(parse_command("insert sweep"))
        yield from tool.execute(parse_command("wait 5"))
        yield from tool.execute(parse_command("remove sweep"))
        yield from tool.execute(parse_command("quit"))

    proc = tool.task.start(session())
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    # The mid-run patch suspended every rank at least once (dynprof's
    # stop-patch-continue), visible as inactivity.
    assert all(len(t.suspensions) >= 1 for t in job.tasks)
    # Probes were installed then removed: only the bootstrap remains.
    assert all(im.installed_probes == 1 for im in job.images)


def test_warning_on_unmatched_function():
    env, job, tool = run_session(
        SWEEP3D, 2,
        "insert no_such_function_anywhere\nstart\nquit\n",
    )
    assert any("no functions match" in line for line in tool.output)


def test_help_command_emits_table1():
    env, job, tool = run_session(SWEEP3D, 2, "help\nstart\nquit\n")
    help_text = "\n".join(tool.output)
    for verb in ("insert-file", "remove-file", "wait", "quit"):
        assert verb in help_text


def test_probe_inventory_reflects_tool_view():
    env, job, tool = run_session(SWEEP3D, 2, "insert sweep inner\nstart\nquit\n")
    inventory = tool.probe_inventory()
    assert set(inventory) == {t.name for t in job.tasks}
    for per_proc in inventory.values():
        # entry + exit handles per function.
        assert per_proc == {"sweep": 2, "inner": 2}
