"""Dedicated tests for the DynamicControlMonitor (Figure 2)."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import BreakpointVisit, DynamicControlMonitor
from repro.jobs import MpiJob, OmpJob
from repro.program import ExecutableImage
from repro.simt import Environment
from repro.vt import VTConfig, vt_confsync

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def build_job(env, n=4, epochs=6):
    exe = ExecutableImage("controlled")
    exe.define("f")
    exe.instrument_statically()

    def program(pctx):
        yield from pctx.call("MPI_Init")
        applied = []
        for _ in range(epochs):
            yield from pctx.call("f")
            result = yield from vt_confsync(pctx)
            applied.append(result is not None)
        yield from pctx.call("MPI_Finalize")
        return applied

    cluster = Cluster(env, SPEC, seed=3)
    return MpiJob(env, cluster, exe, n, program)


def test_monitor_arms_and_clears_breakpoint():
    env = Environment()
    job = build_job(env)
    monitor = DynamicControlMonitor(job)
    assert not monitor.armed
    monitor.set_breakpoint()
    assert monitor.armed
    assert job.vt_states[0].break_hook is not None
    monitor.clear_breakpoint()
    assert not monitor.armed
    assert job.vt_states[0].break_hook is None
    job.run()
    env.run()
    assert monitor.visits == []  # cleared before the run: no visits


def test_monitor_records_every_breakpoint_visit():
    env = Environment()
    job = build_job(env, epochs=5)
    monitor = DynamicControlMonitor(job)
    monitor.set_breakpoint()
    job.run()
    env.run()
    assert len(monitor.visits) == 5
    assert all(isinstance(v, BreakpointVisit) for v in monitor.visits)
    assert all(v.applied is None for v in monitor.visits)  # nothing queued
    times = [v.time for v in monitor.visits]
    assert times == sorted(times)


def test_queued_changes_apply_in_order():
    env = Environment()
    job = build_job(env, epochs=6)
    monitor = DynamicControlMonitor(job)
    monitor.set_breakpoint()
    monitor.queue_config_change(VTConfig.all_off())
    monitor.queue_config_change(VTConfig.all_on())
    job.run()
    env.run()
    applied = [v for v in monitor.visits if v.applied is not None]
    assert len(applied) == 2
    assert applied[0].applied == VTConfig.all_off()
    assert applied[1].applied == VTConfig.all_on()
    # The per-rank programs saw exactly two applying epochs.
    for proc in job.procs:
        assert proc.value.count(True) == 2
    # Final epoch counter on every rank: two applied changes.
    assert all(vt.epoch == 2 for vt in job.vt_states)


def test_hold_time_stalls_the_application():
    env = Environment()
    job = build_job(env, epochs=3)
    monitor = DynamicControlMonitor(job)
    monitor.set_breakpoint()
    monitor.queue_config_change(VTConfig.all_off(), hold_time=4.0)
    t = job.run()
    env.run()
    # The 4s of user think time is on the critical path of every rank.
    assert t >= 4.0
    applied = [v for v in monitor.visits if v.applied is not None]
    assert applied[0].hold_time == 4.0


def test_negative_hold_time_rejected():
    env = Environment()
    monitor = DynamicControlMonitor(build_job(env))
    with pytest.raises(ValueError):
        monitor.queue_config_change(VTConfig.all_off(), hold_time=-1)


def test_monitor_requires_vt():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=3)
    exe = ExecutableImage("novt")
    job = MpiJob(env, cluster, exe, 2, lambda pctx: iter(()), link_vt=False)
    monitor = DynamicControlMonitor(job)
    with pytest.raises(RuntimeError, match="no VT"):
        monitor.set_breakpoint()


def test_monitor_works_on_omp_jobs():
    env = Environment()
    cluster = Cluster(env, SPEC, seed=3)
    exe = ExecutableImage("ompctl")
    exe.define("f")
    exe.instrument_statically()

    def program(pctx):
        yield from pctx.call("VT_init")
        yield from pctx.call("f")
        return None

    job = OmpJob(env, cluster, exe, 2, program)
    monitor = DynamicControlMonitor(job)
    monitor.set_breakpoint()
    assert job.vt.break_hook is not None
    job.run()
    env.run()
