"""Tests for the repro-dynprof command line."""

import pytest

from repro.dynprof.cli import main


def test_cli_scripted_session(tmp_path, capsys):
    script = tmp_path / "session.dp"
    script.write_text("insert-file @targets\nstart\nquit\n")
    out = tmp_path / "out.txt"
    timefile = tmp_path / "timings.txt"
    rc = main([str(script), str(out), str(timefile), "sweep3d",
               "--cpus", "2", "--scale", "0.05"])
    assert rc == 0
    body = out.read_text()
    assert "installed" in body
    assert "time to create and instrument" in body
    timings = timefile.read_text()
    assert "instrument" in timings and "bootstrap" in timings


def test_cli_stdout_mode(tmp_path, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("start\nquit\n"))
    rc = main(["-", "-", "-", "umt98", "--cpus", "2", "--scale", "0.05"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "application started" in out
    assert "# dynprof internal timings" in out


def test_cli_rejects_unknown_target(tmp_path):
    script = tmp_path / "s.dp"
    script.write_text("start\nquit\n")
    with pytest.raises(SystemExit):
        main([str(script), "-", "-", "linpack"])


def test_cli_ia32_machine(tmp_path):
    script = tmp_path / "s.dp"
    script.write_text("insert sweep\nstart\nquit\n")
    out = tmp_path / "o.txt"
    rc = main([str(script), str(out), "-", "sweep3d",
               "--cpus", "2", "--scale", "0.05", "--machine", "ia32-linux"])
    assert rc == 0
    assert "application main computation" in out.read_text()
