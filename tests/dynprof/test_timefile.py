"""Tests for the dynprof timefile."""

import pytest

from repro.dynprof import Timefile


def test_begin_end_elapsed():
    tf = Timefile()
    tf.begin("attach", 1.0, detail="4 processes")
    tf.end("attach", 3.5)
    assert tf.elapsed("attach") == pytest.approx(2.5)
    assert tf.phases[0].detail == "4 processes"


def test_repeated_phases_accumulate():
    tf = Timefile()
    for start in (0.0, 10.0, 20.0):
        tf.begin("instrument", start)
        tf.end("instrument", start + 2.0)
    assert tf.elapsed("instrument") == pytest.approx(6.0)
    assert len(tf.phases) == 3


def test_total_over_names():
    tf = Timefile()
    tf.begin("a", 0.0)
    tf.end("a", 1.0)
    tf.begin("b", 1.0)
    tf.end("b", 4.0)
    assert tf.total("a", "b") == pytest.approx(4.0)
    assert tf.total("a") == pytest.approx(1.0)
    assert tf.total("missing") == 0.0


def test_double_begin_rejected():
    tf = Timefile()
    tf.begin("x", 0.0)
    with pytest.raises(ValueError, match="already open"):
        tf.begin("x", 1.0)


def test_end_without_begin_rejected():
    tf = Timefile()
    with pytest.raises(ValueError, match="not open"):
        tf.end("x", 1.0)


def test_open_phase_has_no_elapsed():
    tf = Timefile()
    phase = tf.begin("x", 0.0)
    with pytest.raises(ValueError, match="still open"):
        _ = phase.elapsed
    assert "OPEN" in tf.render()


def test_render_and_write(tmp_path):
    tf = Timefile()
    tf.begin("create", 0.0, detail="smg98")
    tf.end("create", 2.59)
    text = tf.render()
    assert "create" in text and "2.590000" in text and "smg98" in text
    path = tmp_path / "timings.txt"
    tf.write(str(path))
    assert path.read_text() == text
