"""Unit tests for the Table 3 policy runner."""

import pytest

from repro.apps import SMG98, SWEEP3D
from repro.dynprof import POLICIES, PolicyResult, policy_description, run_policy


def test_policy_registry_matches_table3():
    assert POLICIES == ("Full", "Full-Off", "Subset", "None", "Dynamic")
    for policy in POLICIES:
        text = policy_description(policy)
        assert text and text[0].isupper()


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown policy"):
        run_policy(SMG98, "Half", 2, scale=0.01)


def test_sweep3d_subset_rejected():
    with pytest.raises(ValueError, match="no Subset version"):
        run_policy(SWEEP3D, "Subset", 2, scale=0.01)


def test_cpus_beyond_evaluation_range_rejected():
    with pytest.raises(ValueError, match="not evaluated beyond"):
        run_policy(SMG98, "None", 128, scale=0.01)


def test_result_fields_populated():
    result = run_policy(SMG98, "Full", 2, scale=0.02, seed=4)
    assert isinstance(result, PolicyResult)
    assert result.app == "smg98" and result.policy == "Full"
    assert result.n_cpus == 2 and result.scale == 0.02
    assert len(result.per_rank_times) == 2
    assert result.time == max(result.per_rank_times)
    assert result.trace_records > 0
    assert result.trace_bytes == result.trace_records * 24
    assert result.instrument_time is None  # static policy
    assert "smg98/Full@2cpu" in repr(result)


def test_dynamic_records_instrument_time():
    result = run_policy(SWEEP3D, "Dynamic", 2, scale=0.02, seed=4)
    assert result.instrument_time is not None
    assert result.instrument_time > 1.0


def test_policy_runs_are_deterministic():
    a = run_policy(SMG98, "Subset", 4, scale=0.02, seed=7)
    b = run_policy(SMG98, "Subset", 4, scale=0.02, seed=7)
    assert a.time == b.time
    assert a.per_rank_times == b.per_rank_times
    assert a.trace_records == b.trace_records


def test_different_seeds_vary_slightly():
    # 16 ranks span two nodes, so inter-node latency jitter applies.
    a = run_policy(SMG98, "None", 16, scale=0.02, seed=1)
    b = run_policy(SMG98, "None", 16, scale=0.02, seed=2)
    # Jitter differs, workload identical: small relative spread.
    assert a.time != b.time
    assert abs(a.time - b.time) / a.time < 0.05


def test_none_policy_traces_no_subroutines():
    result = run_policy(SMG98, "None", 2, scale=0.02, seed=4)
    full = run_policy(SMG98, "Full", 2, scale=0.02, seed=4)
    assert result.trace_records < full.trace_records / 100
