"""Focused tests for the Figure 6 bootstrap machinery."""

import pytest

from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import (
    INIT_CALLBACK_TAG,
    SPIN_VARIABLE,
    DynProf,
    bootstrap_anchor,
    mpi_init_bootstrap,
    vt_init_bootstrap,
)
from repro.jobs import MpiJob
from repro.program import CallFunc, ExecutableImage, Sequence, SpinWait
from repro.simt import Environment

SPEC = POWER3_SP.with_overrides(net_jitter=0.05)


def test_mpi_bootstrap_matches_figure6():
    """Barrier; DPCL_callback(); DYNVT_spin(); Barrier — in that order."""
    snip = mpi_init_bootstrap()
    assert isinstance(snip, Sequence)
    kinds = [type(s).__name__ for s in snip.items]
    assert kinds == ["CallFunc", "CallFunc", "SpinWait", "CallFunc"]
    assert snip.items[0].name == "MPI_Barrier"
    assert snip.items[1].name == "DPCL_callback"
    assert snip.items[2].name == SPIN_VARIABLE
    assert snip.items[3].name == "MPI_Barrier"
    text = snip.describe()
    assert text.index("MPI_Barrier") < text.index("DPCL_callback") < text.index("spin_until")


def test_omp_bootstrap_has_no_barriers():
    """VT_init runs single-threaded at the top of main: callback + spin
    only (Section 3.4)."""
    snip = vt_init_bootstrap()
    kinds = [type(s).__name__ for s in snip.items]
    assert kinds == ["CallFunc", "SpinWait"]
    assert "MPI_Barrier" not in snip.describe()


def test_bootstrap_anchor_per_kind():
    assert bootstrap_anchor("mpi") == "MPI_Init"
    assert bootstrap_anchor("omp") == "VT_init"
    with pytest.raises(ValueError):
        bootstrap_anchor("pvm")


def test_prestart_command_order_is_preserved_through_spin():
    """Commands issued before MPI_Init completes are recorded and only
    acted on after the callback confirms it is safe — and the ranks are
    still captive in the spin when the probes go in."""
    env = Environment()
    cluster = Cluster(env, SPEC, seed=12)
    exe = ExecutableImage("b")
    exe.define("kernel")

    probe_installed_at = {}
    spin_released_at = {}

    def program(pctx):
        yield from pctx.call("MPI_Init")
        spin_released_at[pctx.mpi.rank] = pctx.now
        yield from pctx.call("kernel")
        yield from pctx.call("MPI_Finalize")
        return pctx.now

    job = MpiJob(env, cluster, exe, 4, program, start_suspended=True)
    tool = DynProf(env, cluster, job)

    orig_install = tool._install_into_all

    def spying_install(names):
        for i, image in enumerate(job.images):
            probe_installed_at[i] = env.now
        return orig_install(names)

    tool._install_into_all = spying_install
    proc = tool.run_script("insert kernel\nstart\nquit\n")
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()

    # Installation happened while every rank was still spinning: strictly
    # before any rank's MPI_Init returned.
    first_release = min(spin_released_at.values())
    assert all(t <= first_release for t in probe_installed_at.values())
    # And the second barrier re-synchronised the releases tightly.
    spread = max(spin_released_at.values()) - min(spin_released_at.values())
    assert spread < 0.01


def test_spin_variable_poke_releases_exactly_once():
    """The daemon's set_variable write is what ends DYNVT_spin."""
    env = Environment()
    cluster = Cluster(env, SPEC, seed=2)
    from repro.cluster import Task
    from repro.program import ProcessImage, ProgramContext

    exe = ExecutableImage("s")
    task = Task(env, cluster.node(0), "t", SPEC)
    image = ProcessImage(env, exe, "t")
    pctx = ProgramContext(env, task, image, SPEC)
    image.register_runtime("DPCL_callback", lambda p, *a: None)

    released = []

    def driver():
        yield from vt_init_bootstrap().execute(pctx)
        released.append(env.now)

    def releaser(env):
        yield env.timeout(3.0)
        image.write_variable(SPIN_VARIABLE, 1)

    proc = task.start(driver())
    env.process(releaser(env))
    env.run(until=proc)
    assert released == [pytest.approx(3.0, abs=0.01)]


def test_callback_tag_is_stable():
    # dynprof correlates callbacks by this tag; changing it breaks the
    # spawn handshake, so pin it.
    assert INIT_CALLBACK_TAG == "dynprof:init-done"
    snip = mpi_init_bootstrap()
    assert snip.items[1].args[0].value == INIT_CALLBACK_TAG
