"""Property-based tests for the VT layer: config semantics, trace
well-formedness, batching equivalence, policy cost ordering."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, POWER3_SP, Task
from repro.program import ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment
from repro.vt import (
    BatchPairRecord,
    EnterRecord,
    FunctionRegistry,
    LeaveRecord,
    VTConfig,
    VTProcessState,
)

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)
SETTINGS = dict(max_examples=30, deadline=None)

names = st.sampled_from(["alpha", "beta", "gamma", "delta_x", "util_copy"])
rule = st.tuples(
    st.sampled_from(["*", "a*", "alpha", "beta", "util_*", "*_x", "g?mma"]),
    st.booleans(),
)


# ---------------------------------------------------------------- config


@given(rules=st.lists(rule, max_size=8), default=st.booleans(), name=names)
@settings(**SETTINGS)
def test_config_last_match_wins_reference(rules, default, name):
    """is_active must equal a straightforward reference evaluation."""
    import fnmatch

    cfg = VTConfig(rules=rules, default_on=default)
    expected = default
    for glob, active in rules:
        if fnmatch.fnmatchcase(name, glob):
            expected = active
    assert cfg.is_active(name) == expected


@given(rules=st.lists(rule, max_size=8), default=st.booleans(),
       mpi=st.booleans(), stats=st.booleans())
@settings(**SETTINGS)
def test_config_dump_parse_roundtrip(rules, default, mpi, stats):
    cfg = VTConfig(rules=rules, default_on=default, mpi_trace=mpi, stats=stats)
    assert VTConfig.parse(cfg.dump()) == cfg


@given(rules=st.lists(rule, max_size=8))
@settings(**SETTINGS)
def test_deactivation_table_complements_active_set(rules):
    cfg = VTConfig(rules=rules)
    universe = ["alpha", "beta", "gamma", "delta_x", "util_copy"]
    table = cfg.deactivation_table(universe)
    for n in universe:
        assert (n in table) == (not cfg.is_active(n))


# ---------------------------------------------------------------- tracing


def _make_state(n_funcs=4, config=None):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=1)
    exe = ExecutableImage("prop")
    for i in range(n_funcs):
        exe.define(f"fn{i}")
    exe.instrument_statically()
    task = Task(env, cluster.node(0), "p0", SPEC)
    image = ProcessImage(env, exe, "p0")
    pctx = ProgramContext(env, task, image, SPEC)
    vt = VTProcessState(env, SPEC, image, 0, FunctionRegistry(), config)
    vt.initialize(task)
    return env, task, pctx, vt


@given(calls=st.lists(st.tuples(st.integers(0, 3),
                                st.floats(1e-7, 1e-3)), min_size=1, max_size=60))
@settings(**SETTINGS)
def test_trace_is_well_formed_nested(calls):
    """Sequential begin/end pairs always yield balanced, time-ordered
    records and stats whose total equals the charged body time."""
    env, task, pctx, vt = _make_state()
    total_body = 0.0
    for idx, body in calls:
        fi = pctx.image.func(f"fn{idx}")
        vt.probe_begin(pctx, fi)
        task.charge(body)
        total_body += body
        vt.probe_end(pctx, fi)
    buf = vt.buffers[0]
    # Balanced and alternating.
    assert len(buf.records) == 2 * len(calls)
    times = [r.t for r in buf.records]
    assert times == sorted(times)
    opens = 0
    for rec in buf.records:
        if isinstance(rec, EnterRecord):
            opens += 1
        else:
            opens -= 1
        assert opens >= 0
    assert opens == 0
    stats_total = sum(s.inclusive_time for s in vt.stats.values())
    # Inclusive time = bodies + the end-event costs inside each pair.
    expected = total_body + len(calls) * SPEC.vt_active_event_cost
    assert abs(stats_total - expected) < 1e-9
    assert sum(s.count for s in vt.stats.values()) == len(calls)


@given(n=st.integers(1, 5000), cost=st.floats(1e-8, 1e-5))
@settings(**SETTINGS)
def test_batch_records_equal_loop_records(n, cost):
    """A batch-pair record accounts exactly like n begin/end pairs."""
    env, task, pctx, vt = _make_state()
    fi = pctx.image.func("fn0")
    t0 = task.now
    vt.record_batch_pair(pctx, fi, n, t0, cost + 1e-7, cost)
    assert vt.buffers[0].raw_record_count == 2 * n
    st_ = vt.stats[fi.fid]
    assert st_.count == n
    assert abs(st_.inclusive_time - n * cost) < 1e-12


@given(active=st.booleans(), calls=st.integers(1, 2000))
@settings(**SETTINGS)
def test_active_probes_cost_more_than_inactive(active, calls):
    config = VTConfig.all_on() if active else VTConfig.all_off()
    env, task, pctx, vt = _make_state(config=config)
    fi = pctx.image.func("fn0")
    before = task.pending
    for _ in range(calls):
        vt.probe_begin(pctx, fi)
        vt.probe_end(pctx, fi)
    charged = task.pending - before
    per_pair = charged / calls
    if active:
        # Active pairs may also pay amortised buffer-flush time.
        assert per_pair >= 2 * SPEC.vt_active_event_cost - 1e-12
    else:
        assert abs(per_pair - 2 * SPEC.vt_lookup_cost) < 1e-12
        assert vt.buffers == []


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_registry_ids_stable_and_unique(seed):
    reg = FunctionRegistry()
    import random

    rng = random.Random(seed)
    names_pool = [f"f{i}" for i in range(20)]
    assigned = {}
    for _ in range(100):
        name = rng.choice(names_pool)
        fid = reg.define(name)
        if name in assigned:
            assert assigned[name] == fid
        assigned[name] = fid
        assert reg.name_of(fid) == name
    assert len(set(assigned.values())) == len(assigned)
