"""VT_confsync integration tests: the Figure 2 / Section 5 machinery."""

import pytest

from repro.cluster import POWER3_SP
from repro.program import ExecutableImage
from repro.vt import VTConfig, vt_confsync

from ..mpi.conftest import run_mpi

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def build_exe(nfuncs=4):
    exe = ExecutableImage("capp")
    for i in range(nfuncs):
        exe.define(f"fn{i}")
    exe.instrument_statically()
    return exe


def confsync_program(body):
    def program(pctx):
        yield from pctx.call("MPI_Init")
        result = yield from body(pctx)
        yield from pctx.call("MPI_Finalize")
        return result

    return program


def test_confsync_no_change_returns_none():
    def body(pctx):
        applied = yield from vt_confsync(pctx)
        return applied

    _job, results = run_mpi(4, confsync_program(body), exe=build_exe(), spec=SPEC)
    assert results == [None] * 4


def test_confsync_is_collective_barrier():
    def body(pctx):
        yield from pctx.compute(0.05 * pctx.mpi.rank)
        yield from vt_confsync(pctx)
        return pctx.now

    _job, results = run_mpi(4, confsync_program(body), exe=build_exe(), spec=SPEC)
    # Nobody leaves before the slowest rank arrived.
    assert min(results) >= 0.15


def test_confsync_distributes_new_config_from_rank0():
    new_cfg = VTConfig.subset(["fn1"])

    def body(pctx):
        vt = pctx.image.vt
        if pctx.mpi.rank == 0:
            vt.break_hook = lambda _pctx: new_cfg
        applied = yield from vt_confsync(pctx)
        fid0 = pctx.image.func("fn0").fid
        fid1 = pctx.image.func("fn1").fid
        return (applied is not None, vt.is_fid_active(fid0), vt.is_fid_active(fid1), vt.epoch)

    _job, results = run_mpi(4, confsync_program(body), exe=build_exe(), spec=SPEC)
    # Every rank applied the config broadcast from rank 0's breakpoint.
    assert all(r == (True, False, True, 1) for r in results)


def test_break_hook_only_runs_on_rank0():
    hits = []

    def body(pctx):
        vt = pctx.image.vt
        vt.break_hook = lambda _pctx: hits.append(pctx.mpi.rank)
        yield from vt_confsync(pctx)
        return None

    run_mpi(4, confsync_program(body), exe=build_exe(), spec=SPEC)
    assert hits == [0]


def test_blocking_break_hook_halts_all_ranks():
    """The monitoring tool halts the app at configuration_break; other
    ranks stall in the broadcast until rank 0 resumes."""
    HOLD = 3.0

    def body(pctx):
        vt = pctx.image.vt
        if pctx.mpi.rank == 0:
            def hook(p):
                yield p.env.timeout(HOLD)  # user thinks...
                return VTConfig.all_off()
            vt.break_hook = hook
        t0 = pctx.now
        yield from vt_confsync(pctx)
        return pctx.now - t0

    _job, results = run_mpi(4, confsync_program(body), exe=build_exe(), spec=SPEC)
    assert all(dt >= HOLD for dt in results)


def test_confsync_cost_grows_with_ranks():
    def body(pctx):
        t0 = pctx.now
        for _ in range(4):
            yield from vt_confsync(pctx)
        return (pctx.now - t0) / 4

    _j, r2 = run_mpi(2, confsync_program(body), exe=build_exe(), spec=SPEC)
    _j, r16 = run_mpi(16, confsync_program(body), exe=build_exe(), spec=SPEC)
    assert max(r16) > max(r2)
    # Paper Figure 8(a): well under 0.04 s even at scale.
    assert max(r16) < 0.04


def test_confsync_with_stats_writes_cost_more():
    def make_body(stats):
        def body(pctx):
            t0 = pctx.now
            yield from vt_confsync(pctx, write_stats=stats)
            return pctx.now - t0

        return body

    _j, plain = run_mpi(8, confsync_program(make_body(False)), exe=build_exe(), spec=SPEC)
    _j, stats = run_mpi(8, confsync_program(make_body(True)), exe=build_exe(), spec=SPEC)
    assert max(stats) > max(plain)


def test_confsync_outside_mpi_raises():
    from repro.cluster import Cluster, Task
    from repro.program import ProcessImage, ProgramContext
    from repro.simt import Environment
    from repro.vt import FunctionRegistry, VTProcessState

    env = Environment()
    cluster = Cluster(env, SPEC, seed=0)
    exe = build_exe()
    task = Task(env, cluster.node(0), "t", SPEC)
    image = ProcessImage(env, exe, "t")
    pctx = ProgramContext(env, task, image, SPEC)
    VTProcessState(env, SPEC, image, 0, FunctionRegistry())

    def driver():
        yield from vt_confsync(pctx)

    proc = task.start(driver())
    with pytest.raises(RuntimeError, match="outside an MPI program"):
        env.run(until=proc)


def test_confsync_without_vt_raises():
    exe = ExecutableImage("novt")

    def program(pctx):
        yield from pctx.call("MPI_Init")
        try:
            yield from vt_confsync(pctx)
        except RuntimeError as e:
            return "no-vt" in str(e) or "VT library" in str(e)

    _job, results = run_mpi(2, program, exe=exe, spec=SPEC, link_vt=False)
    assert results == [True, True]
