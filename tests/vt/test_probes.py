"""Dynamic VT probe snippets: execution, batching, cost equivalence."""

import pytest

from repro.cluster import Cluster, POWER3_SP, Task
from repro.program import ENTRY, EXIT, ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment
from repro.vt import BEGIN, END, FunctionRegistry, VTProbeSnippet, VTProcessState

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def make(static=False, nleaf=2):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=2)
    exe = ExecutableImage("app")
    for i in range(nleaf):
        exe.define(f"leaf{i}")
    if static:
        exe.instrument_statically()
    task = Task(env, cluster.node(0), "app[0]", SPEC)
    image = ProcessImage(env, exe, "app[0]")
    pctx = ProgramContext(env, task, image, SPEC)
    vt = VTProcessState(env, SPEC, image, 0, FunctionRegistry())
    vt.initialized = True
    return env, pctx, vt


def instrument_dynamic(pctx, vt, name):
    """What dynprof does per function: funcdef + entry/exit probes."""
    fi = pctx.image.func(name)
    vt.funcdef(pctx.task, name)
    pctx.image.install_probe(name, ENTRY, VTProbeSnippet(fi, BEGIN))
    pctx.image.install_probe(name, EXIT, VTProbeSnippet(fi, END))
    return fi


def drive(env, pctx, gen):
    proc = pctx.task.start(gen)
    return env.run(until=proc)


def test_bad_kind_rejected():
    env, pctx, vt = make()
    with pytest.raises(ValueError):
        VTProbeSnippet(pctx.image.func("leaf0"), "middle")


def test_dynamic_probe_records_enter_and_leave():
    env, pctx, vt = make()
    instrument_dynamic(pctx, vt, "leaf0")

    def driver():
        yield from pctx.call("leaf0")
        yield from pctx.flush()

    drive(env, pctx, driver())
    kinds = [type(r).__name__ for r in vt.buffers[0].records]
    assert kinds == ["EnterRecord", "LeaveRecord"]


def test_uninstrumented_function_costs_nothing():
    env, pctx, vt = make()

    def driver():
        yield from pctx.call("leaf0")
        yield from pctx.flush()

    drive(env, pctx, driver())
    assert env.now == 0.0
    assert pctx.task.compute_time == 0.0


def test_batched_dynamic_equals_looped_dynamic():
    """The leaf batching fast path must charge exactly what a loop does."""
    env, pctx, vt = make(nleaf=2)
    fi_a = instrument_dynamic(pctx, vt, "leaf0")
    fi_b = instrument_dynamic(pctx, vt, "leaf1")
    n, cost = 400, 2e-6

    def driver():
        t0 = pctx.task.now  # funcdef registration was already charged
        yield from pctx.call_batch(fi_a, n, cost)
        t_batch = pctx.task.now - t0
        for _ in range(n):
            yield from pctx.call(fi_b)
            pctx.task.charge(cost)
        # NOTE: the loop above charges body cost outside the call, while
        # batch charges it inside; both total the same.
        return t_batch, pctx.task.now - t0 - t_batch

    t_batch, t_loop = drive(env, pctx, driver())
    assert t_batch == pytest.approx(t_loop, rel=1e-9)
    assert fi_a.call_count == n and fi_b.call_count == n
    # Both leave the same number of raw records behind.
    recs = vt.buffers[0]
    assert recs.raw_record_count == 4 * n


def test_batched_records_have_consistent_timestamps():
    env, pctx, vt = make()
    fi = instrument_dynamic(pctx, vt, "leaf0")

    def driver():
        yield from pctx.compute(1.0)
        yield from pctx.call_batch(fi, 10, 1e-3)
        yield from pctx.flush()

    drive(env, pctx, driver())
    recs = [r for r in vt.buffers[0].records if hasattr(r, "n")]
    assert len(recs) == 1
    rec = recs[0]
    assert rec.n == 10
    assert rec.t_first >= 1.0
    assert rec.duration > 0
    # Last leave happens before the run's end time.
    assert rec.t_last_leave <= env.now + 1e-12


def test_static_and_dynamic_probes_can_coexist():
    env, pctx, vt = make(static=True)
    vt.initialize(pctx.task)
    fi = instrument_dynamic(pctx, vt, "leaf0")

    def driver():
        yield from pctx.call(fi)
        yield from pctx.flush()

    drive(env, pctx, driver())
    # Static pair + dynamic pair = 4 events.
    assert vt.buffers[0].raw_record_count == 4


def test_describe_names_function():
    env, pctx, vt = make()
    fi = pctx.image.func("leaf0")
    assert "leaf0" in VTProbeSnippet(fi, BEGIN).describe()
    assert "end" in VTProbeSnippet(fi, END).describe()
