"""Tests for the VT process state: init, probe costs, records, stats."""

import pytest

from repro.cluster import Cluster, POWER3_SP, Task
from repro.program import ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment
from repro.vt import (
    BatchPairRecord,
    EnterRecord,
    FunctionRegistry,
    LeaveRecord,
    TraceFile,
    VTConfig,
    VTProcessState,
)

SPEC = POWER3_SP.with_overrides(net_jitter=0.0)


def make_world(config=None, static=True, nfuncs=3):
    env = Environment()
    cluster = Cluster(env, SPEC, seed=2)
    exe = ExecutableImage("app")
    names = [f"fn{i}" for i in range(nfuncs)]
    for n in names:
        exe.define(n)
    if static:
        exe.instrument_statically()
    node = cluster.node(0)
    task = Task(env, node, "app[0]", SPEC)
    image = ProcessImage(env, exe, "app[0]")
    pctx = ProgramContext(env, task, image, SPEC)
    vt = VTProcessState(env, SPEC, image, 0, FunctionRegistry(), config)
    return env, task, pctx, vt, names


def test_initialize_registers_static_functions():
    env, task, pctx, vt, names = make_world()
    assert not vt.initialized
    vt.initialize(task)
    assert vt.initialized
    for name in names:
        assert pctx.image.func(name).fid is not None
    # Registration charged funcdef cost per function.
    assert task.pending == pytest.approx(len(names) * SPEC.vt_funcdef_cost)


def test_initialize_is_idempotent():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    charged = task.pending
    vt.initialize(task)
    assert task.pending == charged


def test_probe_before_init_charges_lookup_only():
    env, task, pctx, vt, _ = make_world()
    fi = pctx.image.func("fn0")
    vt.probe_begin(pctx, fi)
    assert task.pending == pytest.approx(SPEC.vt_lookup_cost)
    assert vt.buffers == []


def test_active_probe_records_and_charges_active_cost():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    base = task.pending
    fi = pctx.image.func("fn0")
    vt.probe_begin(pctx, fi)
    task.charge(1e-3)  # the body
    vt.probe_end(pctx, fi)
    assert task.pending - base == pytest.approx(2 * SPEC.vt_active_event_cost + 1e-3)
    buf = vt.buffers[0]
    assert len(buf.records) == 2
    assert isinstance(buf.records[0], EnterRecord)
    assert isinstance(buf.records[1], LeaveRecord)
    assert buf.records[1].t > buf.records[0].t


def test_deactivated_probe_charges_lookup_no_record():
    env, task, pctx, vt, _ = make_world(config=VTConfig.all_off())
    vt.initialize(task)
    base = task.pending
    fi = pctx.image.func("fn0")
    vt.probe_begin(pctx, fi)
    vt.probe_end(pctx, fi)
    assert task.pending - base == pytest.approx(2 * SPEC.vt_lookup_cost)
    assert vt.buffers == []  # no buffer was even created


def test_subset_config_splits_active_and_inactive():
    env, task, pctx, vt, _ = make_world(config=VTConfig.subset(["fn1"]))
    vt.initialize(task)
    assert vt.is_fid_active(pctx.image.func("fn1").fid)
    assert not vt.is_fid_active(pctx.image.func("fn0").fid)


def test_stats_accumulate_inclusive_time():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    fi = pctx.image.func("fn0")
    for _ in range(3):
        vt.probe_begin(pctx, fi)
        task.charge(0.5)
        vt.probe_end(pctx, fi)
    rows = vt.stats_table()
    assert len(rows) == 1
    name, count, t = rows[0]
    assert name == "fn0" and count == 3
    assert t == pytest.approx(3 * (0.5 + SPEC.vt_active_event_cost))


def test_nested_calls_stats():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    outer, inner = pctx.image.func("fn0"), pctx.image.func("fn1")
    vt.probe_begin(pctx, outer)
    task.charge(0.1)
    vt.probe_begin(pctx, inner)
    task.charge(0.2)
    vt.probe_end(pctx, inner)
    task.charge(0.1)
    vt.probe_end(pctx, outer)
    stats = {name: t for name, _c, t in vt.stats_table()}
    assert stats["fn1"] == pytest.approx(0.2 + SPEC.vt_active_event_cost)
    # Outer inclusive covers inner entirely.
    assert stats["fn0"] > stats["fn1"] + 0.2


def test_apply_config_rebuilds_table_and_bumps_epoch():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    assert vt.epoch == 0
    fid = pctx.image.func("fn0").fid
    assert vt.is_fid_active(fid)
    vt.apply_config(VTConfig.all_off(), task=task)
    assert vt.epoch == 1
    assert not vt.is_fid_active(fid)
    vt.apply_config(VTConfig.all_on(), task=task)
    assert vt.is_fid_active(fid)
    assert vt.epoch == 2


def test_funcdef_dynamic_registration():
    env, task, pctx, vt, _ = make_world(static=False)
    vt.initialized = True  # bypass init path
    fid = vt.funcdef(task, "fn2")
    assert pctx.image.func("fn2").fid == fid
    # Registering again returns the same id.
    assert vt.funcdef(task, "fn2") == fid


def test_record_batch_pair_counts():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    fi = pctx.image.func("fn0")
    vt.record_batch_pair(pctx, fi, 100, 1.0, 1e-5, 8e-6)
    buf = vt.buffers[0]
    assert len(buf.records) == 1
    rec = buf.records[0]
    assert isinstance(rec, BatchPairRecord)
    assert rec.record_count() == 200
    assert buf.raw_record_count == 200
    rows = vt.stats_table()
    assert rows[0][1] == 100
    assert rows[0][2] == pytest.approx(100 * 8e-6)


def test_batch_mark_pairs_begin_and_end():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    fi = pctx.image.func("fn0")
    vt.batch_mark(pctx, fi, "begin", 50, 2.0, 1e-5)
    assert vt.buffers == [] or len(vt.buffers[0].records) == 0
    vt.batch_mark(pctx, fi, "end", 50, 2.0 + 7e-6, 1e-5)
    rec = vt.buffers[0].records[0]
    assert rec.n == 50
    assert rec.duration == pytest.approx(7e-6)


def test_batch_mark_inactive_is_dropped():
    env, task, pctx, vt, _ = make_world(config=VTConfig.all_off())
    vt.initialize(task)
    fi = pctx.image.func("fn0")
    vt.batch_mark(pctx, fi, "begin", 50, 2.0, 1e-5)
    vt.batch_mark(pctx, fi, "end", 50, 2.1, 1e-5)
    assert vt.buffers == []


def test_message_logging_respects_mpi_trace_flag():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    vt.log_message(pctx, "send", 1, 0, 100)
    assert vt.buffers[0].records[-1].kind == "send"

    env2, task2, pctx2, vt2, _ = make_world(
        config=VTConfig(rules=[], mpi_trace=False)
    )
    vt2.initialize(task2)
    vt2.log_message(pctx2, "send", 1, 0, 100)
    assert vt2.buffers == []


def test_flush_to_trace_file():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    fi = pctx.image.func("fn0")
    vt.probe_begin(pctx, fi)
    vt.probe_end(pctx, fi)
    trace = TraceFile("app")
    vt.flush_to(trace)
    assert trace.raw_record_count == 2
    assert trace.function_name(fi.fid) == "fn0"
    assert trace.size_bytes == 2 * trace.record_bytes


def test_stats_payload_scales_with_functions():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    empty = vt.stats_payload_bytes()
    for name in ("fn0", "fn1"):
        fi = pctx.image.func(name)
        vt.probe_begin(pctx, fi)
        vt.probe_end(pctx, fi)
    assert vt.stats_payload_bytes() > empty


def test_flush_to_mirrors_compression_obs_counters():
    from repro import obs
    from repro.vt.state import compact_accounting

    with obs.collecting() as registry, compact_accounting():
        env, task, pctx, vt, _ = make_world()
        vt.initialize(task)
        fi = pctx.image.func("fn0")
        for _ in range(50):
            vt.probe_begin(pctx, fi)
            vt.probe_end(pctx, fi)
        trace = TraceFile("app")
        vt.flush_to(trace)
        counters = registry.snapshot()["counters"]
    raw = counters["vt.trace_raw_bytes"]
    compact = counters["vt.trace_compact_bytes"]
    assert raw == trace.size_bytes
    assert 0 < compact < raw  # the repetitive stream compresses


def test_flush_to_mirrors_only_raw_bytes_by_default():
    # The VGVZ encode is an O(records) pass, far above the registry's
    # dict-op budget, so plain obs-enabled runs get only the analytic
    # counter unless ``set_compact_accounting`` opts in.
    from repro import obs
    from repro.vt.state import set_compact_accounting

    with obs.collecting() as registry:
        env, task, pctx, vt, _ = make_world()
        vt.initialize(task)
        fi = pctx.image.func("fn0")
        vt.probe_begin(pctx, fi)
        vt.probe_end(pctx, fi)
        trace = TraceFile("app")
        vt.flush_to(trace)
        counters = registry.snapshot()["counters"]
    assert counters["vt.trace_raw_bytes"] == trace.size_bytes
    assert "vt.trace_compact_bytes" not in counters


def test_set_compact_accounting_returns_previous_state():
    from repro.vt.state import set_compact_accounting

    assert set_compact_accounting(True) is False
    assert set_compact_accounting(False) is True


def test_flush_to_skips_compression_accounting_without_obs():
    env, task, pctx, vt, _ = make_world()
    vt.initialize(task)
    fi = pctx.image.func("fn0")
    vt.probe_begin(pctx, fi)
    vt.probe_end(pctx, fi)
    trace = TraceFile("app")
    vt.flush_to(trace)  # no registry installed: must not raise
    assert trace.raw_record_count == 2
