"""Round-trip tests for the on-disk trace format."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vt import ThreadTraceBuffer, TraceFile, load_trace, save_trace


def build_trace():
    trace = TraceFile("my app", record_bytes=24)
    trace.register_function(1, "main")
    trace.register_function(2, "solve me")  # name with a space
    b0 = ThreadTraceBuffer(0, 0)
    b0.enter(1, 0.0)
    b0.enter(2, 0.5)
    b0.leave(2, 1.5)
    b0.batch_pair(2, 100, 2.0, 1e-6, 5e-7)
    b0.message("send", 1, 7, 2048, 3.0)
    b0.collective("MPI_All reduce", 4, 3.5, 3.6)
    b0.marker("suspended", 4.0, 5.0)
    b0.leave(1, 6.0)
    trace.add_buffer(b0)
    b1 = ThreadTraceBuffer(1, 2)
    b1.enter(1, 0.25)
    b1.leave(1, 0.75)
    trace.add_buffer(b1)
    return trace


def assert_traces_equal(a, b):
    assert a.app_name == b.app_name
    assert a.record_bytes == b.record_bytes
    assert a.func_names == b.func_names
    assert set(a.buffers) == set(b.buffers)
    for key in a.buffers:
        ra, rb = a.buffers[key].records, b.buffers[key].records
        assert [repr(x) for x in ra] == [repr(x) for x in rb]
        assert a.buffers[key].raw_record_count == b.buffers[key].raw_record_count


def test_roundtrip(tmp_path):
    trace = build_trace()
    path = tmp_path / "run.vgv"
    lines = save_trace(trace, str(path))
    assert lines > 10
    again = load_trace(str(path))
    assert_traces_equal(trace, again)
    assert again.raw_record_count == trace.raw_record_count


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.vgv"
    path.write_text("not a trace\n")
    with pytest.raises(ValueError, match="not a VGVTRACE"):
        load_trace(str(path))


def test_load_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.vgv"
    path.write_text("VGVTRACE 99 app 24\n")
    with pytest.raises(ValueError, match="version"):
        load_trace(str(path))


def test_load_rejects_record_before_buffer(tmp_path):
    path = tmp_path / "bad.vgv"
    path.write_text("VGVTRACE 1 app 24\nE 1 0.0\n")
    with pytest.raises(ValueError, match="before any buffer"):
        load_trace(str(path))


def test_load_reports_line_numbers(tmp_path):
    path = tmp_path / "bad.vgv"
    path.write_text("VGVTRACE 1 app 24\nB 0 0\nZ what\n")
    with pytest.raises(ValueError, match=":3:"):
        load_trace(str(path))


@given(
    times=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=30
    )
)
@settings(max_examples=25, deadline=None)
def test_roundtrip_preserves_float_exactness(tmp_path_factory, times):
    trace = TraceFile("prop")
    trace.register_function(1, "f")
    buf = ThreadTraceBuffer(0, 0)
    for t in times:
        buf.enter(1, t)
    trace.add_buffer(buf)
    path = tmp_path_factory.mktemp("io") / "t.vgv"
    save_trace(trace, str(path))
    again = load_trace(str(path))
    loaded = [r.t for r in again.records_of(0)]
    assert loaded == times  # repr() round-trips floats exactly


def test_end_to_end_with_analysis(tmp_path):
    """Save a real run's trace, load it, analyse the copy."""
    from repro.analysis import ProfileView
    from repro.apps import SWEEP3D

    # A tiny dynamic run produces a real trace on job.trace... use the
    # policy runner then persist + reload its trace.
    from repro.cluster import Cluster, POWER3_SP
    from repro.jobs import MpiJob
    from repro.simt import Environment

    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=2)
    exe = SWEEP3D.build_exe(True)
    job = MpiJob(env, cluster, exe, 2, SWEEP3D.make_program(2, 0.05))
    job.run()
    env.run()

    path = tmp_path / "sweep3d.vgv"
    save_trace(job.trace, str(path))
    again = load_trace(str(path))
    pv_orig = ProfileView(job.trace)
    pv_load = ProfileView(again)
    assert {p.name for p in pv_orig.table()} == {p.name for p in pv_load.table()}
    assert pv_load.of("sweep").count == pv_orig.of("sweep").count
