"""Tests for the VT configuration file parser and deactivation tables."""

import pytest

from repro.vt import VTConfig, VTConfigError


def test_parse_empty_is_all_on():
    cfg = VTConfig.parse("")
    assert cfg.is_active("anything")
    assert cfg.mpi_trace is True
    assert cfg.stats is False


def test_parse_comments_and_blanks():
    cfg = VTConfig.parse("""
    # full line comment

    SYMBOL foo OFF   # trailing comment
    """)
    assert not cfg.is_active("foo")
    assert cfg.is_active("bar")


def test_last_matching_rule_wins():
    cfg = VTConfig.parse("SYMBOL * OFF\nSYMBOL hypre_* ON\nSYMBOL hypre_debug OFF\n")
    assert cfg.is_active("hypre_Solve")
    assert not cfg.is_active("hypre_debug")
    assert not cfg.is_active("main")


def test_default_directive():
    cfg = VTConfig.parse("DEFAULT OFF\nSYMBOL important ON\n")
    assert cfg.is_active("important")
    assert not cfg.is_active("other")


def test_mpi_trace_and_stats_flags():
    cfg = VTConfig.parse("MPI-TRACE OFF\nSTATS ON\n")
    assert cfg.mpi_trace is False
    assert cfg.stats is True


def test_case_insensitive_keywords():
    cfg = VTConfig.parse("symbol Foo off\ndefault on\n")
    assert not cfg.is_active("Foo")
    # Globs themselves stay case-sensitive.
    assert cfg.is_active("foo")


def test_parse_errors():
    with pytest.raises(VTConfigError):
        VTConfig.parse("SYMBOL foo MAYBE")
    with pytest.raises(VTConfigError):
        VTConfig.parse("SYMBOL foo")
    with pytest.raises(VTConfigError):
        VTConfig.parse("FROBNICATE ON")
    with pytest.raises(VTConfigError):
        VTConfig.parse("DEFAULT")


def test_all_off_factory_matches_paper_full_off():
    cfg = VTConfig.all_off()
    assert not cfg.is_active("anything")


def test_subset_factory_matches_paper_subset():
    cfg = VTConfig.subset(["solveA", "solveB"])
    assert cfg.is_active("solveA")
    assert cfg.is_active("solveB")
    assert not cfg.is_active("util_copy")


def test_deactivation_table():
    cfg = VTConfig.subset(["keep"])
    table = cfg.deactivation_table(["keep", "drop1", "drop2"])
    assert table == {"drop1", "drop2"}


def test_dump_roundtrip():
    cfg = VTConfig.subset(["a", "b"])
    cfg.stats = True
    cfg.mpi_trace = False
    again = VTConfig.parse(cfg.dump())
    assert again == cfg
    assert again.payload_bytes() == cfg.payload_bytes()


def test_equality_semantics():
    assert VTConfig.all_on() == VTConfig.all_on()
    assert VTConfig.all_on() != VTConfig.all_off()
    assert VTConfig.all_on().__eq__(42) is NotImplemented
