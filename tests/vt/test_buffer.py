"""Tests for trace buffers, records and the postmortem trace file."""

import pytest

from repro.vt import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
    ThreadTraceBuffer,
    TraceFile,
)


def test_record_counts():
    assert EnterRecord(1, 0.0).record_count() == 1
    assert LeaveRecord(1, 0.0).record_count() == 1
    assert BatchPairRecord(1, 250, 0.0, 1e-6, 5e-7).record_count() == 500
    assert MsgRecord("send", 1, 0, 10, 0.0).record_count() == 1
    assert CollectiveRecord("MPI_Barrier", 4, 0.0, 1.0).record_count() == 1
    assert MarkerRecord("suspended", 0.0, 1.0).record_count() == 1


def test_msg_record_validates_kind():
    with pytest.raises(ValueError):
        MsgRecord("forward", 1, 0, 10, 0.0)


def test_batch_pair_geometry():
    rec = BatchPairRecord(7, 10, 100.0, 0.5, 0.2)
    assert rec.time == 100.0
    assert rec.t_last_leave == pytest.approx(100.0 + 9 * 0.5 + 0.2)


def test_marker_defaults_to_point():
    m = MarkerRecord("tick", 3.0)
    assert m.t_start == m.t_end == 3.0


def test_buffer_raw_count_tracks_appends():
    buf = ThreadTraceBuffer(0, 0)
    buf.enter(1, 0.0)
    buf.leave(1, 1.0)
    buf.batch_pair(2, 100, 1.0, 1e-6, 5e-7)
    buf.message("recv", 3, 9, 128, 2.0)
    buf.collective("MPI_Bcast", 8, 2.0, 2.1)
    buf.marker("suspended", 3.0, 4.0)
    assert len(buf) == 6
    assert buf.raw_record_count == 1 + 1 + 200 + 1 + 1 + 1


def test_tracefile_accounting():
    trace = TraceFile("app", record_bytes=32)
    b0 = ThreadTraceBuffer(0, 0)
    b0.enter(1, 0.0)
    b0.leave(1, 1.0)
    b1 = ThreadTraceBuffer(1, 0)
    b1.batch_pair(1, 50, 0.0, 1e-6, 5e-7)
    trace.add_buffer(b0)
    trace.add_buffer(b1)
    assert trace.n_processes == 2
    assert trace.n_threads == 2
    assert trace.raw_record_count == 102
    assert trace.size_bytes == 102 * 32
    assert len(trace.records_of(0)) == 2


def test_tracefile_duplicate_buffer_rejected():
    trace = TraceFile("app")
    trace.add_buffer(ThreadTraceBuffer(0, 0))
    with pytest.raises(ValueError, match="duplicate"):
        trace.add_buffer(ThreadTraceBuffer(0, 0))


def test_tracefile_function_names():
    trace = TraceFile("app")
    trace.register_function(1, "solve")
    trace.register_function(1, "solve")  # idempotent
    with pytest.raises(ValueError, match="maps to both"):
        trace.register_function(1, "other")
    assert trace.function_name(1) == "solve"
    assert trace.function_name(99) == "fid#99"


def test_all_records_iterates_everything():
    trace = TraceFile("app")
    for p in range(3):
        buf = ThreadTraceBuffer(p, 0)
        buf.enter(1, float(p))
        trace.add_buffer(buf)
    seen = list(trace.all_records())
    assert len(seen) == 3
    assert {p for p, _t, _r in seen} == {0, 1, 2}


# --------------------------------------------------- compaction accounting


def repetitive_buffer(iterations=200):
    buf = ThreadTraceBuffer(0, 0)
    t = 0.0
    for _ in range(iterations):
        buf.enter(7, t)
        buf.leave(7, t + 0.5)
        t += 1.0
    return buf


def test_buffer_raw_bytes_follows_the_analytic_model():
    buf = repetitive_buffer(10)
    assert buf.raw_bytes == buf.raw_record_count * 24
    buf.batch_pair(7, 50, 100.0, 1e-6, 5e-7)
    assert buf.raw_bytes == (20 + 100) * 24


def test_buffer_compact_bytes_reflects_redundancy():
    buf = repetitive_buffer()
    assert 0 < buf.compact_bytes < buf.raw_bytes / 5
    # An empty buffer still has framing, but almost none.
    assert ThreadTraceBuffer(1, 0).compact_bytes < 16


def test_buffer_compact_bytes_memo_invalidates_on_append():
    buf = repetitive_buffer()
    first = buf.compact_bytes
    assert buf.compact_bytes == first  # memoized, same value
    buf.message("send", 1, 3, 4096, 500.0)
    grown = buf.compact_bytes
    assert grown > first
