"""Benchmarks regenerating Figure 7 (a-d): execution time of the
instrumented application versions under the Table 3 policies.

Each benchmark runs the same harness as ``repro-experiments fig7x`` at a
reduced workload scale and process range (ratios are scale-invariant),
verifies the paper's qualitative claims, and attaches the headline
numbers as extra_info.
"""


from repro.apps import SMG98, SPPM, SWEEP3D, UMT98
from repro.experiments import fig7_shape_report, run_fig7

SCALE = 0.05
SEED = 7


def _series_summary(fig):
    return {
        s.label: [None if v is None else round(v, 3) for v in s.values]
        for s in fig.series
    }


def test_fig7a_smg98(benchmark):
    cpus = (1, 4, 16, 64)

    def run():
        return run_fig7(SMG98, cpu_counts=cpus, scale=SCALE, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    report = fig7_shape_report(fig, SMG98)
    assert all(line.startswith("PASS") for line in report), "\n".join(report)
    benchmark.extra_info["series"] = _series_summary(fig)
    benchmark.extra_info["full_over_none_at_64"] = round(fig.ratio("Full", "None", 64), 2)
    benchmark.extra_info["dynamic_over_none_at_64"] = round(fig.ratio("Dynamic", "None", 64), 3)


def test_fig7b_sppm(benchmark):
    cpus = (1, 4, 16, 64)

    def run():
        return run_fig7(SPPM, cpu_counts=cpus, scale=SCALE, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    report = fig7_shape_report(fig, SPPM)
    assert all(line.startswith("PASS") for line in report), "\n".join(report)
    benchmark.extra_info["series"] = _series_summary(fig)
    benchmark.extra_info["full_over_none_at_64"] = round(fig.ratio("Full", "None", 64), 2)


def test_fig7c_sweep3d(benchmark):
    cpus = (2, 8, 32, 64)

    def run():
        return run_fig7(SWEEP3D, cpu_counts=cpus, scale=SCALE, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    report = fig7_shape_report(fig, SWEEP3D)
    assert all(line.startswith("PASS") for line in report), "\n".join(report)
    benchmark.extra_info["series"] = _series_summary(fig)


def test_fig7d_umt98(benchmark):
    cpus = (1, 2, 4, 8)

    def run():
        return run_fig7(UMT98, cpu_counts=cpus, scale=SCALE, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    report = fig7_shape_report(fig, UMT98)
    assert all(line.startswith("PASS") for line in report), "\n".join(report)
    benchmark.extra_info["series"] = _series_summary(fig)
