"""Benchmark regenerating Figure 9: time to create and instrument."""


from repro.experiments import run_fig9

SEED = 7


def test_fig9_create_and_instrument(benchmark):
    cpus = (1, 2, 8, 32, 64)

    def run():
        return run_fig9(cpu_counts=cpus, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)

    smg = fig.get("Smg98").values
    umt = fig.get("Umt98").values
    # MPI instrumentation time grows with the process count...
    assert smg[-1] > smg[1] * 4
    # ...while the single-image OpenMP app stays flat over 1..8 CPUs.
    umt_points = [v for v in umt if v is not None]
    assert max(umt_points) <= min(umt_points) * 1.2
    benchmark.extra_info["series"] = {
        s.label: [None if v is None else round(v, 2) for v in s.values]
        for s in fig.series
    }
