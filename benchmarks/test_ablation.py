"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation reruns a Figure 7(a) cell with one cost-model mechanism
altered, verifying that the paper's separation is produced by the
claimed mechanism and not by an accident of calibration:

* no trace-I/O contention  -> Full's blow-up collapses toward the pure
  per-event cost (the flush mechanism is what melts Full down at scale);
* free deactivation lookups -> Full-Off/Subset collapse onto None (the
  lookup residual is what keeps them apart);
* pricier trampolines      -> Dynamic drifts up from None in proportion
  to the instrumented subset's call count (and stays far from Full).
"""


from repro.apps import SMG98
from repro.cluster import POWER3_SP
from repro.dynprof import run_policy

SCALE = 0.05
CPUS = 16
SEED = 5


def _cell(policy, machine):
    return run_policy(SMG98, policy, CPUS, scale=SCALE, machine=machine, seed=SEED).time


def test_ablation_trace_io_contention(benchmark):
    """Remove FS contention: Full's overhead collapses to CPU-only."""

    def run():
        base = POWER3_SP
        fast_fs = POWER3_SP.with_overrides(trace_fs_bandwidth=1e12)
        return {
            "full": _cell("Full", base),
            "none": _cell("None", base),
            "full_fast_fs": _cell("Full", fast_fs),
            "none_fast_fs": _cell("None", fast_fs),
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio_base = t["full"] / t["none"]
    ratio_fast = t["full_fast_fs"] / t["none_fast_fs"]
    # The flush mechanism carries most of Full's blow-up.
    assert ratio_fast < ratio_base * 0.7
    assert ratio_fast > 1.1  # per-event costs alone still hurt
    benchmark.extra_info["full_over_none"] = round(ratio_base, 2)
    benchmark.extra_info["full_over_none_fast_fs"] = round(ratio_fast, 2)


def test_ablation_lookup_residual(benchmark):
    """Free lookups: Full-Off and Subset collapse onto None."""

    def run():
        base = POWER3_SP
        free_lookup = POWER3_SP.with_overrides(vt_lookup_cost=0.0)
        return {
            "off": _cell("Full-Off", base),
            "none": _cell("None", base),
            "off_free": _cell("Full-Off", free_lookup),
            "none_free": _cell("None", free_lookup),
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t["off"] / t["none"] > 1.2               # the paper's residual
    assert t["off_free"] / t["none_free"] < 1.02    # vanishes without it
    benchmark.extra_info["residual"] = round(t["off"] / t["none"], 3)
    benchmark.extra_info["residual_free_lookup"] = round(
        t["off_free"] / t["none_free"], 3
    )


def test_ablation_trampoline_cost(benchmark):
    """100x pricier trampolines barely move Dynamic: the subset is
    called rarely — the asymmetry that makes dynamic instrumentation
    win."""

    def run():
        base = POWER3_SP
        heavy = POWER3_SP.with_overrides(
            tramp_base_cost=35e-6, tramp_mini_cost=10e-6,
        )
        return {
            "dyn": _cell("Dynamic", base),
            "none": _cell("None", base),
            "dyn_heavy": _cell("Dynamic", heavy),
            "full": _cell("Full", base),
        }

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t["dyn_heavy"] / t["none"] < 1.05
    assert t["dyn_heavy"] < t["full"] / 2
    benchmark.extra_info["dynamic_over_none"] = round(t["dyn"] / t["none"], 4)
    benchmark.extra_info["dynamic_heavy_over_none"] = round(
        t["dyn_heavy"] / t["none"], 4
    )
