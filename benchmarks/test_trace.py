"""Tracing-disabled overhead benchmarks.

The causal tracer's contract is that with tracing off (the default,
the NULL_TRACER backend) every instrumented hot path pays exactly one
attribute check. These benchmarks pin that: the probe hot path with
the trace guards compiled in must perform within noise of the same
path hammering an enabled tracer's guard-only branch — and, more
importantly, they give CI a number to watch if someone ever puts work
in front of the ``enabled`` check.
"""

from repro.cluster import Cluster, POWER3_SP, Task
from repro.obs import trace as obs_trace
from repro.program import ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment
from repro.vt import FunctionRegistry, VTProcessState


def _probe_rig():
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    exe = ExecutableImage("trace-bench")
    exe.define("f")
    exe.instrument_statically()
    task = Task(env, cluster.node(0), "t", POWER3_SP)
    image = ProcessImage(env, exe, "t")
    pctx = ProgramContext(env, task, image, POWER3_SP)
    vt = VTProcessState(env, POWER3_SP, image, 0, FunctionRegistry())
    vt.initialize(task)
    return pctx, vt, image.func("f")


def test_probe_hot_path_tracing_disabled(benchmark):
    """The guarded probe path against the NULL_TRACER backend."""
    assert not obs_trace.is_enabled()
    pctx, vt, fi = _probe_rig()

    def run():
        for _ in range(5_000):
            vt.probe_begin(pctx, fi)
            vt.probe_end(pctx, fi)

    benchmark(run)
    assert vt.stats[fi.fid].count >= 5_000


def test_probe_hot_path_tracing_enabled_coarse(benchmark):
    """Same path with a live coarse tracer: only the drop-immune
    counters fire (no per-function ring events), so the delta over the
    disabled benchmark is the full cost of having tracing on."""
    with obs_trace.tracing(detail="coarse") as tracer:
        pctx, vt, fi = _probe_rig()

        def run():
            for _ in range(5_000):
                vt.probe_begin(pctx, fi)
                vt.probe_end(pctx, fi)

        benchmark(run)
    assert tracer.counts["vt.probe_events"] >= 10_000
