"""Record and check committed performance baselines.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_baseline.py            # record
    PYTHONPATH=src python benchmarks/record_baseline.py --check    # compare

Recording writes two small JSON documents next to this script:

``BENCH_engine.json``
    Raw simulation throughput — ``simt.events`` processed per second
    for one representative Figure 7 cell, measured under a live
    :mod:`repro.obs` registry (so the number includes the enabled-
    observation overhead a profiled run actually pays).

``BENCH_fig7.json``
    End-to-end sweep cost — wall time of the quick Figure 7a grid cold
    (every point simulated) and fully cached (every point served from a
    :class:`ResultCache`), plus the resulting speedup.  The cached
    re-run is the number the service layer exists to protect: a warm
    regeneration should cost milliseconds.

Throughput is reported as the **best of N repeats** (default 5).  The
minimum wall time over several runs is the standard way to measure a
deterministic workload on a machine with frequency scaling and noisy
neighbours: every source of interference only ever makes a run slower,
so the fastest observation is the closest to the machine's true speed.
Mean/median would fold scheduler noise into the committed number.

``--check`` re-measures the engine cell and compares against the
committed ``BENCH_engine.json``:

* the event **count** must match exactly — it is a determinism check,
  any drift means the simulation itself changed;
* ``events_per_sec`` must be within ``--tolerance`` (default 0.15,
  i.e. no more than 15% slower than the committed baseline).

The check exits non-zero on failure so CI can gate on it (the
``bench-smoke`` job).  The tolerance absorbs runner-to-runner machine
variance; a real hot-path regression lands well outside it.
"""

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__, obs
from repro.apps import SWEEP3D, get_app
from repro.dynprof import run_policy
from repro.experiments import run_fig7
from repro.runner import SweepRunner

HERE = Path(__file__).resolve().parent

ENGINE_CELL = {"app": "sweep3d", "policy": "Full", "procs": 16,
               "scale": 0.1, "seed": 7}
FIG7 = {"cpu_counts": (1, 4, 16), "scale": 0.05, "seed": 7}
DEFAULT_REPEATS = 5
DEFAULT_TOLERANCE = 0.15


def _context():
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "command": "PYTHONPATH=src python benchmarks/record_baseline.py",
    }


def measure_engine(repeats=DEFAULT_REPEATS):
    """Best-of-``repeats`` engine throughput for the representative cell.

    Returns ``(events, best_wall_s, events_per_sec)``.  The event count
    is asserted identical across repeats — the simulation is seeded, so
    any variation is a bug worth failing loudly on.
    """
    app = get_app(ENGINE_CELL["app"])
    # One untimed warm-up run so import costs and allocator warm-up
    # don't land in the measured number.
    run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
               scale=ENGINE_CELL["scale"], seed=ENGINE_CELL["seed"])
    events = None
    best = None
    for _ in range(repeats):
        with obs.collecting() as registry:
            t0 = time.perf_counter()
            run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
                       scale=ENGINE_CELL["scale"], seed=ENGINE_CELL["seed"])
            wall = time.perf_counter() - t0
        n = registry.counters.get("simt.events", 0)
        if events is None:
            events = n
        elif n != events:
            raise AssertionError(
                f"non-deterministic event count: {n} != {events}")
        if best is None or wall < best:
            best = wall
    return events, best, round(events / best) if best > 0 else None


def record_engine(repeats=DEFAULT_REPEATS):
    events, wall, eps = measure_engine(repeats)
    doc = {
        "benchmark": "engine-event-throughput",
        "cell": dict(ENGINE_CELL),
        "events": events,
        "repeats": repeats,
        "wall_time_s": round(wall, 4),
        "events_per_sec": eps,
        **_context(),
    }
    (HERE / "BENCH_engine.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def record_fig7():
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        t0 = time.perf_counter()
        cold_runner = SweepRunner(jobs=1, cache=cache_dir)
        run_fig7(SWEEP3D, runner=cold_runner, **FIG7)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_runner = SweepRunner(jobs=1, cache=cache_dir)
        run_fig7(SWEEP3D, runner=warm_runner, **FIG7)
        cached = time.perf_counter() - t0
        hit_rate = warm_runner.telemetry.summary()["hit_rate"]

    doc = {
        "benchmark": "fig7-wall-time",
        "grid": {"app": "sweep3d", "cpu_counts": list(FIG7["cpu_counts"]),
                 "scale": FIG7["scale"], "seed": FIG7["seed"]},
        "points": warm_runner.telemetry.summary()["total"],
        "cold_wall_time_s": round(cold, 4),
        "cached_wall_time_s": round(cached, 4),
        "cached_speedup": round(cold / cached, 1) if cached > 0 else None,
        "cached_hit_rate": hit_rate,
        **_context(),
    }
    (HERE / "BENCH_fig7.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def check_engine(tolerance=DEFAULT_TOLERANCE, repeats=DEFAULT_REPEATS):
    """Compare a fresh measurement against the committed baseline.

    Returns 0 on pass, 1 on regression.
    """
    path = HERE / "BENCH_engine.json"
    if not path.exists():
        print(f"check: no committed baseline at {path}", file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    events, wall, eps = measure_engine(repeats)
    floor = baseline["events_per_sec"] * (1.0 - tolerance)
    print(f"check: measured {events} events in {wall:.4f}s "
          f"-> {eps} events/sec (best of {repeats})")
    print(f"check: committed baseline {baseline['events_per_sec']} "
          f"events/sec, floor at -{tolerance:.0%} = {floor:.0f}")
    ok = True
    if events != baseline["events"]:
        print(f"check: FAIL - event count drifted: {events} != "
              f"{baseline['events']} (simulation no longer deterministic "
              f"vs baseline)", file=sys.stderr)
        ok = False
    if eps < floor:
        print(f"check: FAIL - throughput regression: {eps} < {floor:.0f} "
              f"events/sec", file=sys.stderr)
        ok = False
    if ok:
        print("check: OK")
    return 0 if ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Record or check committed performance baselines.")
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh measurement against BENCH_engine.json "
             "instead of recording; exits 1 on regression")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional events/sec slowdown in --check mode "
             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help=f"timing repeats; the best run counts (default {DEFAULT_REPEATS})")
    args = parser.parse_args(argv)

    if args.check:
        return check_engine(tolerance=args.tolerance, repeats=args.repeats)

    engine = record_engine(repeats=args.repeats)
    print(f"engine: {engine['events']} events in {engine['wall_time_s']}s "
          f"-> {engine['events_per_sec']} events/sec "
          f"(best of {engine['repeats']})")
    fig7 = record_fig7()
    print(f"fig7:   cold {fig7['cold_wall_time_s']}s, "
          f"cached {fig7['cached_wall_time_s']}s "
          f"(x{fig7['cached_speedup']}, hit rate {fig7['cached_hit_rate']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
