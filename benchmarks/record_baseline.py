"""Record committed performance baselines for the engine and Figure 7.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_baseline.py

Writes two small JSON documents next to this script:

``BENCH_engine.json``
    Raw simulation throughput — ``simt.events`` processed per second
    for one representative Figure 7 cell, measured under a live
    :mod:`repro.obs` registry (so the number includes the enabled-
    observation overhead a profiled run actually pays).

``BENCH_fig7.json``
    End-to-end sweep cost — wall time of the quick Figure 7a grid cold
    (every point simulated) and fully cached (every point served from a
    :class:`ResultCache`), plus the resulting speedup.  The cached
    re-run is the number the service layer exists to protect: a warm
    regeneration should cost milliseconds.

The baselines are committed so a future change that slows the engine or
breaks cache hits shows up as a diff against a recorded machine, not as
a vague recollection.  They are *descriptive*, not enforced in CI —
wall time on shared runners is too noisy to gate on.
"""

import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__, obs
from repro.apps import SWEEP3D, get_app
from repro.dynprof import run_policy
from repro.experiments import run_fig7
from repro.runner import SweepRunner

HERE = Path(__file__).resolve().parent

ENGINE_CELL = {"app": "sweep3d", "policy": "Full", "procs": 16,
               "scale": 0.1, "seed": 7}
FIG7 = {"cpu_counts": (1, 4, 16), "scale": 0.05, "seed": 7}


def _context():
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "command": "PYTHONPATH=src python benchmarks/record_baseline.py",
    }


def record_engine():
    app = get_app(ENGINE_CELL["app"])
    # One untimed warm-up run so import costs and allocator warm-up
    # don't land in the measured number.
    run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
               scale=ENGINE_CELL["scale"], seed=ENGINE_CELL["seed"])
    with obs.collecting() as registry:
        t0 = time.perf_counter()
        run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
                   scale=ENGINE_CELL["scale"], seed=ENGINE_CELL["seed"])
        wall = time.perf_counter() - t0
    events = registry.counters.get("simt.events", 0)
    doc = {
        "benchmark": "engine-event-throughput",
        "cell": dict(ENGINE_CELL),
        "events": events,
        "wall_time_s": round(wall, 4),
        "events_per_sec": round(events / wall) if wall > 0 else None,
        **_context(),
    }
    (HERE / "BENCH_engine.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def record_fig7():
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        t0 = time.perf_counter()
        cold_runner = SweepRunner(jobs=1, cache=cache_dir)
        run_fig7(SWEEP3D, runner=cold_runner, **FIG7)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_runner = SweepRunner(jobs=1, cache=cache_dir)
        run_fig7(SWEEP3D, runner=warm_runner, **FIG7)
        cached = time.perf_counter() - t0
        hit_rate = warm_runner.telemetry.summary()["hit_rate"]

    doc = {
        "benchmark": "fig7-wall-time",
        "grid": {"app": "sweep3d", "cpu_counts": list(FIG7["cpu_counts"]),
                 "scale": FIG7["scale"], "seed": FIG7["seed"]},
        "points": warm_runner.telemetry.summary()["total"],
        "cold_wall_time_s": round(cold, 4),
        "cached_wall_time_s": round(cached, 4),
        "cached_speedup": round(cold / cached, 1) if cached > 0 else None,
        "cached_hit_rate": hit_rate,
        **_context(),
    }
    (HERE / "BENCH_fig7.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def main():
    engine = record_engine()
    print(f"engine: {engine['events']} events in {engine['wall_time_s']}s "
          f"-> {engine['events_per_sec']} events/sec")
    fig7 = record_fig7()
    print(f"fig7:   cold {fig7['cold_wall_time_s']}s, "
          f"cached {fig7['cached_wall_time_s']}s "
          f"(x{fig7['cached_speedup']}, hit rate {fig7['cached_hit_rate']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
