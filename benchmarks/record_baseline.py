"""Record and check committed performance baselines.

Run from the repository root::

    PYTHONPATH=src python benchmarks/record_baseline.py            # record
    PYTHONPATH=src python benchmarks/record_baseline.py --check    # compare

Recording writes two small JSON documents next to this script:

``BENCH_engine.json``
    Raw simulation throughput — ``simt.events`` processed per second
    for one representative Figure 7 cell, measured under a live
    :mod:`repro.obs` registry (so the number includes the enabled-
    observation overhead a profiled run actually pays), plus a
    ``sampler`` cell: the same run with metric sampling enabled
    (:mod:`repro.obs.timeseries`), recording the event and sample
    counts and the throughput the sampler costs.  The sampler-off cell
    staying inside the tolerance band is the "sampling off is free"
    gate; the sampler-on cell makes the enabled cost a visible,
    determinism-checked number.  A ``recorder`` cell does the same for
    order recording (:mod:`repro.replay`): the plain cell is the
    "recording off is free" gate, the recorder-on cell pins the event
    and order-log decision counts exactly and the enabled throughput
    within tolerance.

``BENCH_fig7.json``
    End-to-end sweep cost — wall time of the quick Figure 7a grid cold
    (every point simulated) and fully cached (every point served from a
    :class:`ResultCache`), plus the resulting speedup.  The cached
    re-run is the number the service layer exists to protect: a warm
    regeneration should cost milliseconds.

``BENCH_trace.json``
    Trace-compaction trajectory — for each ASCI app's small Full cell:
    raw records, VGVZ compact bytes, bytes/record, the compression
    ratio against the analytic ``records x 24`` volume model, and the
    codec's encode throughput over a capped expanded (unbatched)
    record stream.  Records and compact bytes are exact (the codec is
    deterministic); throughput carries the tolerance.

Throughput is reported as the **best of N repeats** (default 5).  The
minimum wall time over several runs is the standard way to measure a
deterministic workload on a machine with frequency scaling and noisy
neighbours: every source of interference only ever makes a run slower,
so the fastest observation is the closest to the machine's true speed.
Mean/median would fold scheduler noise into the committed number.

``--check`` re-measures the engine cell and the trace-compaction
trajectory and compares against the committed ``BENCH_engine.json``
and ``BENCH_trace.json``:

* the event **count** must match exactly — it is a determinism check,
  any drift means the simulation itself changed;
* per app, the trace **record count** and **compact bytes** must match
  exactly (codec determinism: same records, byte-identical stream);
* ``events_per_sec`` and the per-app encode throughput must be within
  ``--tolerance`` (default 0.15, i.e. no more than 15% slower than the
  committed baseline).

The check exits non-zero on failure so CI can gate on it (the
``bench-smoke`` job).  The tolerance absorbs runner-to-runner machine
variance; a real hot-path regression lands well outside it.
"""

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__, obs
from repro.apps import SWEEP3D, get_app
from repro.dynprof import run_policy
from repro.experiments import run_fig7
from repro.runner import SweepRunner

HERE = Path(__file__).resolve().parent

ENGINE_CELL = {"app": "sweep3d", "policy": "Full", "procs": 16,
               "scale": 0.1, "seed": 7}
#: Sampling interval for the enabled-sampler cell (simulated seconds).
SAMPLER_INTERVAL = 0.25
FIG7 = {"cpu_counts": (1, 4, 16), "scale": 0.05, "seed": 7}
TRACE_CELL = {"policy": "Full", "procs": 4, "scale": 0.05, "seed": 7}
TRACE_APPS = ("smg98", "sppm", "sweep3d", "umt98")
#: Encode-throughput stream length (expanded records per app).
TRACE_STREAM_CAP = 100_000
DEFAULT_REPEATS = 5
DEFAULT_TOLERANCE = 0.15


def _context():
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
        "recorded_at": time.strftime("%Y-%m-%d", time.gmtime()),
        "command": "PYTHONPATH=src python benchmarks/record_baseline.py",
    }


def measure_engine(repeats=DEFAULT_REPEATS):
    """Best-of-``repeats`` engine throughput for the representative cell.

    Returns ``(events, best_wall_s, events_per_sec)``.  The event count
    is asserted identical across repeats — the simulation is seeded, so
    any variation is a bug worth failing loudly on.
    """
    app = get_app(ENGINE_CELL["app"])
    # One untimed warm-up run so import costs and allocator warm-up
    # don't land in the measured number.
    run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
               scale=ENGINE_CELL["scale"], seed=ENGINE_CELL["seed"])
    events = None
    best = None
    for _ in range(repeats):
        with obs.collecting() as registry:
            t0 = time.perf_counter()
            run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
                       scale=ENGINE_CELL["scale"], seed=ENGINE_CELL["seed"])
            wall = time.perf_counter() - t0
        n = registry.counters.get("simt.events", 0)
        if events is None:
            events = n
        elif n != events:
            raise AssertionError(
                f"non-deterministic event count: {n} != {events}")
        if best is None or wall < best:
            best = wall
    return events, best, round(events / best) if best > 0 else None


def measure_sampler_on(interval=SAMPLER_INTERVAL, repeats=DEFAULT_REPEATS):
    """Best-of-``repeats`` throughput for the same cell with the metric
    sampler enabled.

    Returns ``(events, samples, best_wall_s, events_per_sec)``.  The
    event count *includes* the sampler's own wakeups (they are real
    simulated events), so comparing it to the sampler-off count is the
    exact cost accounting; both counts are determinism-gated.
    """
    from repro.obs import timeseries

    app = get_app(ENGINE_CELL["app"])
    events = None
    samples = None
    best = None
    for _ in range(repeats + 1):  # first iteration is the warm-up
        with obs.collecting() as registry:
            with timeseries.sampling(interval=interval) as recorder:
                t0 = time.perf_counter()
                run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
                           scale=ENGINE_CELL["scale"],
                           seed=ENGINE_CELL["seed"])
                wall = time.perf_counter() - t0
        n = registry.counters.get("simt.events", 0)
        s = recorder.samples
        if events is None:
            events, samples = n, s
            continue  # warm-up run: seed the expectation, skip timing
        if n != events or s != samples:
            raise AssertionError(
                f"non-deterministic sampled run: {n}/{s} != "
                f"{events}/{samples} (events/samples)")
        if best is None or wall < best:
            best = wall
    return events, samples, best, round(events / best) if best > 0 else None


def measure_recorder_on(repeats=DEFAULT_REPEATS):
    """Best-of-``repeats`` throughput for the same cell with order
    recording (:mod:`repro.replay`) enabled.

    Returns ``(events, decisions, best_wall_s, events_per_sec)``.  Both
    the event count and the order-log decision count are asserted
    identical across repeats — recording a deterministic run must
    itself be deterministic.  The plain engine cell doubles as the
    "recording off is free" gate: it runs with no recorder installed.
    """
    from repro.replay import hooks

    app = get_app(ENGINE_CELL["app"])
    events = None
    decisions = None
    best = None
    for _ in range(repeats + 1):  # first iteration is the warm-up
        with obs.collecting() as registry:
            with hooks.recording() as recorder:
                t0 = time.perf_counter()
                run_policy(app, ENGINE_CELL["policy"], ENGINE_CELL["procs"],
                           scale=ENGINE_CELL["scale"],
                           seed=ENGINE_CELL["seed"])
                wall = time.perf_counter() - t0
        n = registry.counters.get("simt.events", 0)
        d = len(recorder.log)
        if events is None:
            events, decisions = n, d
            continue  # warm-up run: seed the expectation, skip timing
        if n != events or d != decisions:
            raise AssertionError(
                f"non-deterministic recorded run: {n}/{d} != "
                f"{events}/{decisions} (events/decisions)")
        if best is None or wall < best:
            best = wall
    return events, decisions, best, round(events / best) if best > 0 else None


def record_engine(repeats=DEFAULT_REPEATS):
    events, wall, eps = measure_engine(repeats)
    on_events, on_samples, on_wall, on_eps = measure_sampler_on(
        repeats=repeats)
    rec_events, decisions, rec_wall, rec_eps = measure_recorder_on(
        repeats=repeats)
    doc = {
        "benchmark": "engine-event-throughput",
        "cell": dict(ENGINE_CELL),
        "events": events,
        "repeats": repeats,
        "wall_time_s": round(wall, 4),
        "events_per_sec": eps,
        "sampler": {
            "interval": SAMPLER_INTERVAL,
            "on_events": on_events,
            "on_samples": on_samples,
            "on_wall_time_s": round(on_wall, 4),
            "on_events_per_sec": on_eps,
        },
        "recorder": {
            "on_events": rec_events,
            "decisions": decisions,
            "on_wall_time_s": round(rec_wall, 4),
            "on_events_per_sec": rec_eps,
        },
        **_context(),
    }
    (HERE / "BENCH_engine.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def record_fig7():
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as cache_dir:
        t0 = time.perf_counter()
        cold_runner = SweepRunner(jobs=1, cache=cache_dir)
        run_fig7(SWEEP3D, runner=cold_runner, **FIG7)
        cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm_runner = SweepRunner(jobs=1, cache=cache_dir)
        run_fig7(SWEEP3D, runner=warm_runner, **FIG7)
        cached = time.perf_counter() - t0
        hit_rate = warm_runner.telemetry.summary()["hit_rate"]

    doc = {
        "benchmark": "fig7-wall-time",
        "grid": {"app": "sweep3d", "cpu_counts": list(FIG7["cpu_counts"]),
                 "scale": FIG7["scale"], "seed": FIG7["seed"]},
        "points": warm_runner.telemetry.summary()["total"],
        "cold_wall_time_s": round(cold, 4),
        "cached_wall_time_s": round(cached, 4),
        "cached_speedup": round(cold / cached, 1) if cached > 0 else None,
        "cached_hit_rate": hit_rate,
        **_context(),
    }
    (HERE / "BENCH_fig7.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def measure_trace_app(app_name, repeats=DEFAULT_REPEATS):
    """Compaction metrics + best-of-``repeats`` encode throughput.

    The full cell's trace is compressed twice and the outputs must be
    byte-identical (codec determinism).  Throughput is measured over a
    capped *expanded* stream (batch records unrolled into their raw
    enter/leave pairs) so the number reflects genuine per-record encode
    cost rather than a handful of aggregate objects.
    """
    import io

    from repro.compact import (CompactWriter, compress_trace_bytes,
                               expand_batch_pairs)
    from repro.dynprof import run_policy_job

    app = get_app(app_name)
    _result, job = run_policy_job(
        app, TRACE_CELL["policy"], TRACE_CELL["procs"],
        scale=TRACE_CELL["scale"], seed=TRACE_CELL["seed"],
    )
    trace = job.trace
    data, stats = compress_trace_bytes(trace)
    data2, _ = compress_trace_bytes(trace)
    if data != data2:
        raise AssertionError(f"{app_name}: non-deterministic VGVZ encode")

    stream = []
    for key in sorted(trace.buffers):
        for rec in expand_batch_pairs(trace.buffers[key].records):
            stream.append(rec)
            if len(stream) >= TRACE_STREAM_CAP:
                break
        if len(stream) >= TRACE_STREAM_CAP:
            break
    best = None
    for _ in range(repeats):
        fh = io.BytesIO()
        writer = CompactWriter(fh)
        writer.begin_buffer(0, 0)
        t0 = time.perf_counter()
        for rec in stream:
            writer.write(rec)
        writer.close()
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return {
        "raw_records": stats.raw_records,
        "record_objects": stats.record_objects,
        "compact_bytes": stats.compact_bytes,
        "bytes_per_record": round(stats.bytes_per_record, 4),
        "ratio": round(stats.ratio, 1),
        "stream_records": len(stream),
        "encode_wall_s": round(best, 4),
        "encode_records_per_sec": round(len(stream) / best),
        "encode_mb_per_s": round(len(stream) * 24 / 1e6 / best, 2),
    }


def record_trace(repeats=DEFAULT_REPEATS):
    doc = {
        "benchmark": "trace-compaction",
        "cell": dict(TRACE_CELL),
        "stream_cap": TRACE_STREAM_CAP,
        "repeats": repeats,
        "apps": {name: measure_trace_app(name, repeats)
                 for name in TRACE_APPS},
        **_context(),
    }
    (HERE / "BENCH_trace.json").write_text(
        json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return doc


def check_trace(tolerance=DEFAULT_TOLERANCE, repeats=DEFAULT_REPEATS):
    """Compare fresh trace-compaction metrics against the baseline.

    Returns 0 on pass, 1 on regression.
    """
    path = HERE / "BENCH_trace.json"
    if not path.exists():
        print(f"check: no committed baseline at {path}", file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    ok = True
    for name in TRACE_APPS:
        want = baseline["apps"][name]
        got = measure_trace_app(name, repeats)
        floor = want["encode_records_per_sec"] * (1.0 - tolerance)
        print(f"check[{name}]: {got['raw_records']} records -> "
              f"{got['compact_bytes']} B (x{got['ratio']}), encode "
              f"{got['encode_records_per_sec']} rec/s "
              f"(floor {floor:.0f})")
        if got["raw_records"] != want["raw_records"]:
            print(f"check[{name}]: FAIL - record count drifted: "
                  f"{got['raw_records']} != {want['raw_records']}",
                  file=sys.stderr)
            ok = False
        if got["compact_bytes"] != want["compact_bytes"]:
            print(f"check[{name}]: FAIL - compact stream drifted: "
                  f"{got['compact_bytes']} B != {want['compact_bytes']} B "
                  f"(codec output changed; re-record if intentional)",
                  file=sys.stderr)
            ok = False
        if got["encode_records_per_sec"] < floor:
            print(f"check[{name}]: FAIL - encode throughput regression: "
                  f"{got['encode_records_per_sec']} < {floor:.0f} rec/s",
                  file=sys.stderr)
            ok = False
    if ok:
        print("check: trace OK")
    return 0 if ok else 1


def check_engine(tolerance=DEFAULT_TOLERANCE, repeats=DEFAULT_REPEATS):
    """Compare a fresh measurement against the committed baseline.

    Returns 0 on pass, 1 on regression.
    """
    path = HERE / "BENCH_engine.json"
    if not path.exists():
        print(f"check: no committed baseline at {path}", file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    events, wall, eps = measure_engine(repeats)
    floor = baseline["events_per_sec"] * (1.0 - tolerance)
    print(f"check: measured {events} events in {wall:.4f}s "
          f"-> {eps} events/sec (best of {repeats})")
    print(f"check: committed baseline {baseline['events_per_sec']} "
          f"events/sec, floor at -{tolerance:.0%} = {floor:.0f}")
    ok = True
    if events != baseline["events"]:
        print(f"check: FAIL - event count drifted: {events} != "
              f"{baseline['events']} (simulation no longer deterministic "
              f"vs baseline)", file=sys.stderr)
        ok = False
    if eps < floor:
        print(f"check: FAIL - throughput regression: {eps} < {floor:.0f} "
              f"events/sec", file=sys.stderr)
        ok = False
    if ok:
        print("check: OK")
    return 0 if ok else 1


def check_sampler(tolerance=DEFAULT_TOLERANCE, repeats=DEFAULT_REPEATS):
    """Compare a fresh enabled-sampler measurement against the baseline.

    The sampler-off cell is ``check_engine``'s job (it must stay inside
    the tolerance band — sampling off costs nothing); this cell gates
    the *enabled* path: event and sample counts exactly (determinism —
    the sampler's wakeups are part of the simulation when it is on),
    throughput within the tolerance band.  Returns 0 on pass.
    """
    path = HERE / "BENCH_engine.json"
    if not path.exists():
        print(f"check: no committed baseline at {path}", file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    want = baseline.get("sampler")
    if not want:
        print("check[sampler]: no sampler cell in BENCH_engine.json "
              "(re-record to add one)", file=sys.stderr)
        return 1
    events, samples, wall, eps = measure_sampler_on(
        interval=want["interval"], repeats=repeats)
    floor = want["on_events_per_sec"] * (1.0 - tolerance)
    print(f"check[sampler]: {events} events / {samples} samples in "
          f"{wall:.4f}s -> {eps} events/sec (floor {floor:.0f})")
    ok = True
    if events != want["on_events"]:
        print(f"check[sampler]: FAIL - event count drifted: {events} != "
              f"{want['on_events']}", file=sys.stderr)
        ok = False
    if samples != want["on_samples"]:
        print(f"check[sampler]: FAIL - sample count drifted: {samples} != "
              f"{want['on_samples']}", file=sys.stderr)
        ok = False
    if eps < floor:
        print(f"check[sampler]: FAIL - throughput regression: {eps} < "
              f"{floor:.0f} events/sec", file=sys.stderr)
        ok = False
    if ok:
        print("check: sampler OK")
    return 0 if ok else 1


def check_recorder(tolerance=DEFAULT_TOLERANCE, repeats=DEFAULT_REPEATS):
    """Compare a fresh recording-enabled measurement against the baseline.

    The recording-off cost is ``check_engine``'s job (the plain cell
    runs with no recorder installed); this cell gates the *enabled*
    path: event and order-log decision counts exactly (recording a
    deterministic run is deterministic), throughput within the
    tolerance band.  Returns 0 on pass.
    """
    path = HERE / "BENCH_engine.json"
    if not path.exists():
        print(f"check: no committed baseline at {path}", file=sys.stderr)
        return 1
    baseline = json.loads(path.read_text(encoding="utf-8"))
    want = baseline.get("recorder")
    if not want:
        print("check[recorder]: no recorder cell in BENCH_engine.json "
              "(re-record to add one)", file=sys.stderr)
        return 1
    events, decisions, wall, eps = measure_recorder_on(repeats=repeats)
    floor = want["on_events_per_sec"] * (1.0 - tolerance)
    print(f"check[recorder]: {events} events / {decisions} decisions in "
          f"{wall:.4f}s -> {eps} events/sec (floor {floor:.0f})")
    ok = True
    if events != want["on_events"]:
        print(f"check[recorder]: FAIL - event count drifted: {events} != "
              f"{want['on_events']}", file=sys.stderr)
        ok = False
    if decisions != want["decisions"]:
        print(f"check[recorder]: FAIL - decision count drifted: "
              f"{decisions} != {want['decisions']}", file=sys.stderr)
        ok = False
    if eps < floor:
        print(f"check[recorder]: FAIL - throughput regression: {eps} < "
              f"{floor:.0f} events/sec", file=sys.stderr)
        ok = False
    if ok:
        print("check: recorder OK")
    return 0 if ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Record or check committed performance baselines.")
    parser.add_argument(
        "--check", action="store_true",
        help="compare a fresh measurement against BENCH_engine.json "
             "instead of recording; exits 1 on regression")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional events/sec slowdown in --check mode "
             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help=f"timing repeats; the best run counts (default {DEFAULT_REPEATS})")
    args = parser.parse_args(argv)

    if args.check:
        rc = check_engine(tolerance=args.tolerance, repeats=args.repeats)
        rc_sampler = check_sampler(tolerance=args.tolerance,
                                   repeats=args.repeats)
        rc_recorder = check_recorder(tolerance=args.tolerance,
                                     repeats=args.repeats)
        rc_trace = check_trace(tolerance=args.tolerance,
                               repeats=args.repeats)
        return rc or rc_sampler or rc_recorder or rc_trace

    engine = record_engine(repeats=args.repeats)
    print(f"engine: {engine['events']} events in {engine['wall_time_s']}s "
          f"-> {engine['events_per_sec']} events/sec "
          f"(best of {engine['repeats']})")
    sampler = engine["sampler"]
    print(f"sampler:{sampler['on_events']} events / "
          f"{sampler['on_samples']} samples at {sampler['interval']}s "
          f"-> {sampler['on_events_per_sec']} events/sec")
    recorder = engine["recorder"]
    print(f"record: {recorder['on_events']} events / "
          f"{recorder['decisions']} decisions "
          f"-> {recorder['on_events_per_sec']} events/sec")
    fig7 = record_fig7()
    print(f"fig7:   cold {fig7['cold_wall_time_s']}s, "
          f"cached {fig7['cached_wall_time_s']}s "
          f"(x{fig7['cached_speedup']}, hit rate {fig7['cached_hit_rate']})")
    trace = record_trace(repeats=args.repeats)
    for name, row in trace["apps"].items():
        print(f"trace:  {name}: {row['raw_records']} records -> "
              f"{row['compact_bytes']} B (x{row['ratio']}), "
              f"{row['bytes_per_record']} B/rec, encode "
              f"{row['encode_mb_per_s']} MB/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
