"""Benchmarks regenerating Tables 1-3 (cheap, but keeps the 'one bench
target per table and figure' contract complete)."""

from repro.experiments import render_table1, render_table2, render_table3


def test_table1_commands(benchmark):
    text = benchmark(render_table1)
    assert "dynprof" in text and "insert-file" in text


def test_table2_applications(benchmark):
    text = benchmark(render_table2)
    for app in ("Smg98", "Sppm", "Sweep3d", "Umt98"):
        assert app in text


def test_table3_policies(benchmark):
    text = benchmark(render_table3)
    for policy in ("Full", "Full-Off", "Subset", "None", "Dynamic"):
        assert policy in text
