"""Benchmarks regenerating Figure 8 (a-c): the cost of VT_confsync."""


from repro.experiments import run_fig8a, run_fig8b, run_fig8c

SEED = 7


def test_fig8a_confsync_ibm(benchmark):
    counts = (2, 8, 32, 128, 512)

    def run():
        return run_fig8a(proc_counts=counts, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    nc = fig.get("No Change").values
    ch = fig.get("Changes").values
    # Paper: under 0.04 s in either case, growing slowly with P.
    assert all(v < 0.04 for v in nc + ch)
    assert nc[-1] > nc[0]
    benchmark.extra_info["no_change"] = [round(v, 4) for v in nc]
    benchmark.extra_info["changes"] = [round(v, 4) for v in ch]


def test_fig8b_stats_ibm(benchmark):
    counts = (2, 8, 32, 128, 512)

    def run():
        return run_fig8b(proc_counts=counts, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    values = fig.get("Statistics").values
    # Paper: an order of magnitude above fig8a, still negligible next to
    # user-interaction time.
    assert values[-1] > 0.05
    assert all(v < 1.0 for v in values)
    benchmark.extra_info["statistics"] = [round(v, 4) for v in values]


def test_fig8c_confsync_ia32(benchmark):
    counts = tuple(range(2, 17, 2))

    def run():
        return run_fig8c(proc_counts=counts, seed=SEED)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    values = fig.get("No Change").values
    # Paper: insignificant delay on the IA32 cluster (< 6 ms).
    assert all(v < 0.006 for v in values)
    benchmark.extra_info["no_change"] = [round(v, 5) for v in values]
