"""Guard the import cost of the simulation core.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_import_cost.py

``import repro.simt`` sits on the critical path of every CLI
invocation, every cached figure regeneration and every test module —
the cached-sweep path in particular exists so a warm figure costs
milliseconds, which an accidental matplotlib import at module scope
would single-handedly destroy.  This script runs ``python -X
importtime -c "import repro.simt"`` in a fresh interpreter and fails
if:

* any **heavy plotting/analysis dependency** (matplotlib, scipy,
  pandas, PIL) shows up in the import graph — those must stay behind
  lazy imports inside the figure-rendering functions;
* the **cumulative import time** exceeds a generous wall-clock budget.
  The core intentionally depends on numpy (``repro.simt.rng``), so the
  budget is sized to "numpy plus small pure-Python modules", not to
  zero.  It is a tripwire for someone adding a heavy module-scope
  import, not a micro-benchmark — hence the slack for slow CI runners.

Exits non-zero on violation so CI can gate on it.
"""

import argparse
import subprocess
import sys

#: Top-level modules that must never be imported by the core.  Each one
#: costs hundreds of milliseconds and none is needed before a figure is
#: actually rendered.
FORBIDDEN = ("matplotlib", "scipy", "pandas", "PIL")

#: Cumulative import-time budget in milliseconds.  ``import repro.simt``
#: measures ~250 ms locally (numpy dominates); 1500 ms leaves room for
#: cold filesystem caches and slow shared runners while still catching
#: a stray matplotlib (~500+ ms on its own, on top of the core).
DEFAULT_BUDGET_MS = 1500

TARGET = "repro.simt"


def check(budget_ms=DEFAULT_BUDGET_MS):
    proc = subprocess.run(
        [sys.executable, "-X", "importtime", "-c", f"import {TARGET}"],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(f"import-cost: FAIL - 'import {TARGET}' itself failed:\n"
              f"{proc.stderr}", file=sys.stderr)
        return 1

    # -X importtime lines: "import time: <self_us> | <cumulative_us> | <module>"
    total_us = 0
    offenders = []
    for line in proc.stderr.splitlines():
        if not line.startswith("import time:"):
            continue
        try:
            fields = line.split("|")
            self_us = int(fields[0].split(":")[1].strip())
            module = fields[2].strip()
        except (IndexError, ValueError):
            continue
        total_us += self_us
        if module.split(".")[0] in FORBIDDEN:
            offenders.append(module)

    total_ms = total_us / 1000.0
    print(f"import-cost: 'import {TARGET}' = {total_ms:.0f} ms "
          f"(budget {budget_ms} ms)")
    ok = True
    if offenders:
        roots = sorted({m.split(".")[0] for m in offenders})
        print(f"import-cost: FAIL - heavy dependencies imported at module "
              f"scope: {', '.join(roots)} ({len(offenders)} modules). "
              f"Move the import inside the function that uses it.",
              file=sys.stderr)
        ok = False
    if total_ms > budget_ms:
        print(f"import-cost: FAIL - {total_ms:.0f} ms exceeds the "
              f"{budget_ms} ms budget", file=sys.stderr)
        ok = False
    if ok:
        print("import-cost: OK")
    return 0 if ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail if the simulation core got expensive to import.")
    parser.add_argument(
        "--budget-ms", type=int, default=DEFAULT_BUDGET_MS,
        help=f"cumulative import-time budget (default {DEFAULT_BUDGET_MS})")
    args = parser.parse_args(argv)
    return check(budget_ms=args.budget_ms)


if __name__ == "__main__":
    sys.exit(main())
