"""Micro-benchmarks of the simulation substrate itself.

Not paper figures — these track the performance of the simulator's hot
paths (the event kernel, the probe fast path, MPI collectives) so that
regressions in the infrastructure are visible independently of the
experiment harness.
"""


from repro.cluster import Cluster, POWER3_SP, Task
from repro.program import ExecutableImage, ProcessImage, ProgramContext
from repro.simt import Environment
from repro.vt import FunctionRegistry, VTProcessState


def test_engine_event_throughput(benchmark):
    """Timeout scheduling/dispatch rate of the DES kernel."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(20_000):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        return env.events_processed

    events = benchmark(run)
    assert events >= 20_000


def test_static_probe_hot_path(benchmark):
    """Per-call cost of the active static probe path (VT_begin/VT_end)."""
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    exe = ExecutableImage("micro")
    exe.define("f")
    exe.instrument_statically()
    task = Task(env, cluster.node(0), "t", POWER3_SP)
    image = ProcessImage(env, exe, "t")
    pctx = ProgramContext(env, task, image, POWER3_SP)
    vt = VTProcessState(env, POWER3_SP, image, 0, FunctionRegistry())
    vt.initialize(task)
    fi = image.func("f")

    def run():
        for _ in range(5_000):
            vt.probe_begin(pctx, fi)
            vt.probe_end(pctx, fi)

    benchmark(run)
    assert vt.stats[fi.fid].count >= 5_000


def test_leaf_batching_fast_path(benchmark):
    """call_batch: millions of probed calls per real millisecond."""
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=0)
    exe = ExecutableImage("micro")
    exe.define("leaf")
    exe.instrument_statically()
    task = Task(env, cluster.node(0), "t", POWER3_SP)
    image = ProcessImage(env, exe, "t")
    pctx = ProgramContext(env, task, image, POWER3_SP)
    vt = VTProcessState(env, POWER3_SP, image, 0, FunctionRegistry())
    vt.initialize(task)

    def run():
        def driver():
            for _ in range(100):
                yield from pctx.call_batch("leaf", 10_000, 1e-7)

        proc = task.start(driver())
        env.run(until=proc)
        return pctx.fn("leaf").call_count

    calls = benchmark.pedantic(run, rounds=1, iterations=1)
    assert calls == 1_000_000


def test_mpi_barrier_scaling(benchmark):
    """Wall cost of simulating a 64-rank dissemination barrier."""
    from repro.jobs import MpiJob

    def run():
        env = Environment()
        cluster = Cluster(env, POWER3_SP, seed=0)
        exe = ExecutableImage("barrier-bench")

        def program(pctx):
            yield from pctx.call("MPI_Init")
            for _ in range(5):
                yield from pctx.mpi.comm.barrier()
            yield from pctx.call("MPI_Finalize")
            return pctx.now

        job = MpiJob(env, cluster, exe, 64, program)
        job.start()
        env.run(until=job.completion())
        env.run()
        return max(p.value for p in job.procs)

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t > 0
