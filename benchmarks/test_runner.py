"""Benchmarks for the sweep execution engine: the serial baseline, the
parallel fan-out, and the fully cached re-run of the same Figure 7
grid.  The cached re-run is the headline number — regenerating a
figure whose points are all memoized should cost milliseconds, not the
wall time of the slowest simulation.
"""


from repro.apps import SMG98
from repro.experiments import run_fig7
from repro.runner import SweepRunner

SCALE = 0.05
SEED = 7
CPUS = (1, 4, 16)


def _grid(runner):
    return run_fig7(SMG98, cpu_counts=CPUS, scale=SCALE, seed=SEED,
                    runner=runner)


def test_runner_serial_fig7a(benchmark):
    fig = benchmark.pedantic(
        lambda: _grid(SweepRunner(jobs=1)), rounds=1, iterations=1
    )
    assert len(fig.series) == 5
    benchmark.extra_info["points"] = len(fig.series) * len(CPUS)


def test_runner_parallel_fig7a(benchmark):
    fig = benchmark.pedantic(
        lambda: _grid(SweepRunner(jobs=4)), rounds=1, iterations=1
    )
    assert fig.to_dict() == _grid(SweepRunner(jobs=1)).to_dict()
    benchmark.extra_info["jobs"] = 4


def test_runner_cached_rerun_fig7a(benchmark, tmp_path):
    _grid(SweepRunner(jobs=4, cache=tmp_path))  # warm the cache

    def rerun():
        runner = SweepRunner(jobs=1, cache=tmp_path)
        fig = _grid(runner)
        assert runner.telemetry.summary()["hit_rate"] == 1.0
        return fig

    fig = benchmark.pedantic(rerun, rounds=3, iterations=1)
    assert len(fig.series) == 5
    benchmark.extra_info["hit_rate"] = 1.0


def test_runner_cache_probe_overhead(benchmark, tmp_path):
    """Per-point cost of key derivation + a cache hit."""
    from repro.runner import SweepPoint

    point = SweepPoint.confsync(2, reps=2)
    SweepRunner(jobs=1, cache=tmp_path).run([point])  # warm

    def probe():
        return SweepRunner(jobs=1, cache=tmp_path).run([point])[point]

    result = benchmark(probe)
    assert result.cached
