"""Job assembly: glue cluster, images, VT and MPI/OpenMP into runnable jobs.

This is the poe-level plumbing shared by tests, the example programs and
dynprof: build a cluster, place ranks, create one task + process image
(+ VT library + wrapper) per rank, attach the MPI world, and run the
application program on every rank.

An application *program* is a generator function ``program(pctx)`` that
drives one rank; it is responsible for calling ``MPI_Init`` /
``MPI_Finalize`` through the call protocol, exactly like a real MPI main.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from .cluster import Cluster, MachineSpec, Task
from .dpcl import DaemonHost
from .mpi import MpiWorld, install_mpi_symbols
from .openmp import OpenMPRuntime
from .program import ExecutableImage, ProcessImage, ProgramContext
from .simt import AllOf, Environment, Event, Process
from .vt import FunctionRegistry, TraceFile, VTConfig, VTMpiWrapper, VTProcessState

__all__ = ["MpiJob", "OmpJob", "RankProgram", "install_omp_symbols"]

RankProgram = Callable[[ProgramContext], Generator]


class MpiJob:
    """One MPI application job on a simulated cluster.

    Parameters
    ----------
    program:
        ``program(pctx)`` generator run on every rank.
    link_vt:
        Link the VT instrumentation library (all Table 3 policies except
        a bare un-linked build do this; the "None" policy still links VT
        so MPI events can be traced — it just compiles no subroutine
        probes).
    vt_config:
        The VT configuration file content (a :class:`VTConfig`); defaults
        to everything active.
    start_suspended:
        Create the target stopped at its first instruction, the way
        dynprof's spawn-then-instrument flow needs it (Section 3.3).
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        exe: ExecutableImage,
        n_procs: int,
        program: RankProgram,
        *,
        link_vt: bool = True,
        vt_config: Optional[VTConfig] = None,
        procs_per_node: Optional[int] = None,
        threads_per_proc: int = 1,
        start_suspended: bool = False,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.spec: MachineSpec = cluster.spec
        self.exe = exe
        self.program = program
        self.start_suspended = start_suspended

        if "MPI_Init" not in exe:
            install_mpi_symbols(exe)

        self.placement = cluster.place(
            n_procs, procs_per_node=procs_per_node, threads_per_proc=threads_per_proc
        )
        self.world = MpiWorld(env, cluster, list(self.placement.nodes))
        self.registry = FunctionRegistry()
        self.trace = TraceFile(exe.name, record_bytes=self.spec.trace_record_bytes)
        self.world.trace = self.trace

        self.tasks: List[Task] = []
        self.images: List[ProcessImage] = []
        self.pctxs: List[ProgramContext] = []
        self.vt_states: List[Optional[VTProcessState]] = []

        # The cluster-wide DPCL target registry (shared across jobs so
        # daemons persist between runs on the same simulated machine).
        host = getattr(cluster, "_daemon_host", None)
        if host is None:
            host = DaemonHost()
            cluster._daemon_host = host
        self.daemon_host: DaemonHost = host

        for rank in range(n_procs):
            node = self.placement.node_of(rank)
            task = Task(env, node, f"{exe.name}[{rank}]", self.spec)
            image = ProcessImage(env, exe, f"{exe.name}[{rank}]")
            pctx = ProgramContext(env, task, image, self.spec)
            self.world.attach_rank(rank, task, pctx)
            if link_vt:
                vt = VTProcessState(
                    env, self.spec, image, rank,
                    registry=self.registry,
                    config=vt_config if vt_config is not None else VTConfig.all_on(),
                )
                vt.n_cotracers = n_procs
                self.world.set_wrapper(rank, VTMpiWrapper(vt))
                self.vt_states.append(vt)
            else:
                self.vt_states.append(None)
            self.tasks.append(task)
            self.images.append(image)
            self.pctxs.append(pctx)
            host.register(task.name, task, image)

        self.procs: List[Process] = []

    @property
    def n_procs(self) -> int:
        return len(self.tasks)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> List[Process]:
        """Spawn every rank's program as a simulation process."""
        if self.procs:
            raise RuntimeError("job already started")
        for rank, (task, pctx) in enumerate(zip(self.tasks, self.pctxs)):
            if self.start_suspended:
                task.request_suspend()
            self.procs.append(task.start(self._rank_main(pctx), name=task.name))
        faults = getattr(self.cluster, "faults", None)
        if faults is not None:
            faults.apply_to_job(self)
        return self.procs

    def _rank_main(self, pctx: ProgramContext) -> Generator:
        # Honour "created but suspended at its first instruction".
        yield from pctx.task.checkpoint()
        return (yield from self.program(pctx))

    def resume_all(self) -> None:
        """Release ranks spawned with start_suspended."""
        for task in self.tasks:
            if task.is_suspend_requested:
                task.resume()

    def completion(self) -> Event:
        """Event triggering when every rank's program has returned."""
        if not self.procs:
            raise RuntimeError("job not started")
        return AllOf(self.env, self.procs)

    def run(self) -> float:
        """Start (unless already started), run to completion, return the
        job's makespan (latest rank finish time)."""
        if not self.procs:
            self.start()
        self.env.run(until=self.completion())
        return self.env.now

    def __repr__(self) -> str:
        return f"<MpiJob {self.exe.name} x{self.n_procs} on {self.spec.name}>"


def install_omp_symbols(exe: ExecutableImage) -> None:
    """Add the Guide-compiler-planted VT_init symbol to an OpenMP app.

    The Guide compiler statically inserts a call to VT_init at the
    beginning of main (Section 3.4); dynprof patches the end of VT_init
    with its callback + spin bootstrap.  VT_init is guaranteed to run in
    a single-threaded region, so — unlike MPI_Init — no barriers are
    needed around the inserted code.
    """

    def vt_init(pctx: ProgramContext) -> None:
        vt = pctx.image.vt
        if vt is not None:
            vt.initialize(pctx.task)

    exe.define("VT_init", body=vt_init, module="libguide")


class OmpJob:
    """One OpenMP application: a single process with a thread team.

    The whole job lives on one SMP node (OpenMP is shared-memory only,
    which is why the paper's Umt98 runs are restricted to 1..8
    processors of a single node).
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        exe: ExecutableImage,
        n_threads: int,
        program: RankProgram,
        *,
        link_vt: bool = True,
        vt_config: Optional[VTConfig] = None,
        node_index: int = 0,
        start_suspended: bool = False,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.spec: MachineSpec = cluster.spec
        self.exe = exe
        self.program = program
        self.start_suspended = start_suspended
        if n_threads > self.spec.cores_per_node:
            raise ValueError(
                f"{n_threads} threads exceed the {self.spec.cores_per_node} "
                f"cores of a {self.spec.name} node"
            )
        if "VT_init" not in exe:
            install_omp_symbols(exe)

        node = cluster.node(node_index)
        self.task = Task(env, node, f"{exe.name}[0]", self.spec)
        self.image = ProcessImage(env, exe, f"{exe.name}[0]")
        self.pctx = ProgramContext(env, self.task, self.image, self.spec)
        self.registry = FunctionRegistry()
        self.trace = TraceFile(exe.name, record_bytes=self.spec.trace_record_bytes)
        self.vt: Optional[VTProcessState] = None
        if link_vt:
            self.vt = VTProcessState(
                env, self.spec, self.image, 0,
                registry=self.registry,
                config=vt_config if vt_config is not None else VTConfig.all_on(),
            )
        self.omp = OpenMPRuntime(self.pctx, n_threads)

        host = getattr(cluster, "_daemon_host", None)
        if host is None:
            host = DaemonHost()
            cluster._daemon_host = host
        self.daemon_host: DaemonHost = host
        host.register(self.task.name, self.task, self.image)

        self.proc: Optional[Process] = None

    @property
    def n_threads(self) -> int:
        return self.omp.num_threads

    @property
    def tasks(self) -> List[Task]:
        return [self.task]

    @property
    def images(self) -> List[ProcessImage]:
        return [self.image]

    def start(self) -> Process:
        if self.proc is not None:
            raise RuntimeError("job already started")
        if self.start_suspended:
            self.task.request_suspend()
        self.proc = self.task.start(self._main(), name=self.task.name)
        faults = getattr(self.cluster, "faults", None)
        if faults is not None:
            faults.apply_to_job(self)
        return self.proc

    def _main(self) -> Generator:
        yield from self.task.checkpoint()
        try:
            result = yield from self.program(self.pctx)
        finally:
            self.omp.shutdown()
        if self.vt is not None:
            self.vt.flush_to(self.trace)
        return result

    def resume_all(self) -> None:
        if self.task.is_suspend_requested:
            self.task.resume()

    def completion(self) -> Event:
        if self.proc is None:
            raise RuntimeError("job not started")
        return self.proc

    def run(self) -> float:
        if self.proc is None:
            self.start()
        self.env.run(until=self.proc)
        return self.env.now

    def __repr__(self) -> str:
        return f"<OmpJob {self.exe.name} x{self.n_threads} threads>"
