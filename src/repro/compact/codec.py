"""The compact binary trace codec: VGVZ streaming writer/reader.

This is the on-disk half of the compaction layer.  A VGVZ stream is::

    b"VGVZ" <version byte>
    <string app_name> <uvarint record_bytes>          # header
    ops:
      0x02 FUNC   <uvarint fid> <string name>
      0x01 BUF    <uvarint process> <uvarint thread>  # opens a buffer
      0x10 ENTER  <uvarint fid> <ts>
      0x11 LEAVE  <uvarint fid> <ts>
      0x12 BATCH  <uvarint fid> <uvarint n> <ts> <ts> <ts>
      0x13 MSG    <kind byte> <zz peer> <zz tag> <uvarint size> <ts>
      0x14 COLL   <string op> <uvarint comm_size> <ts> <ts>
      0x15 MARKER <string name> <ts> <ts>
      0x20 LOOP   <uvarint w> <uvarint n> <w structural descriptors>
                  <n * sum(floats per descriptor) ts, iteration-major>
      0x00 END    <uvarint record objects> <uvarint raw records>

``<ts>`` is one timestamp framed by the per-buffer second-order
bit-pattern delta encoder (:mod:`repro.compact.varint`); ``<string>``
is interned per file (id reference after first use); ``zz`` is a
zigzag varint.  A LOOP op is a :class:`~repro.compact.suppress.Fold`:
the body's structure appears once, then only timestamps repeat — a hot
loop costs a handful of bytes per iteration after warm-up, and nothing
is approximated: ``decompress(compress(stream))`` reproduces the
record stream exactly, record for record, bit for bit.

The writer is streaming (bounded memory: the suppressor's window) and
so is the reader (:meth:`CompactReader.iter_records` decodes record by
record).  The END trailer carries object and raw-record counts so
truncation or corruption is detected rather than silently tolerated.
"""

from __future__ import annotations

import io
from typing import Any, BinaryIO, Dict, Iterator, List, Optional, Tuple, Union

from ..vt.buffer import ThreadTraceBuffer, TraceFile
from ..vt.records import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
    TraceRecord,
)
from .suppress import DEFAULT_MAX_WINDOW, Fold, RepeatSuppressor
from .varint import (
    DeltaDecoder,
    DeltaEncoder,
    decode_uvarint,
    encode_uvarint,
    unzigzag,
    zigzag,
)

__all__ = [
    "CompactionStats",
    "CompactWriter",
    "CompactReader",
    "compress_trace",
    "decompress_trace",
    "compress_trace_bytes",
    "measure_compact_bytes",
    "expand_batch_pairs",
    "record_key",
    "MAGIC",
    "VERSION",
]

MAGIC = b"VGVZ"
VERSION = 1

_OP_END = 0x00
_OP_BUF = 0x01
_OP_FUNC = 0x02
_OP_ENTER = 0x10
_OP_LEAVE = 0x11
_OP_BATCH = 0x12
_OP_MSG = 0x13
_OP_COLL = 0x14
_OP_MARKER = 0x15
_OP_LOOP = 0x20


def record_key(rec: TraceRecord) -> Tuple[Any, ...]:
    """The structural identity of a record — everything but its floats.

    Two records fold together exactly when their keys are equal; the
    keys double as the codec's structural descriptors, so suppression
    and encoding agree by construction.
    """
    cls = rec.__class__
    if cls is EnterRecord:
        return (_OP_ENTER, rec.fid)
    if cls is LeaveRecord:
        return (_OP_LEAVE, rec.fid)
    if cls is BatchPairRecord:
        return (_OP_BATCH, rec.fid, rec.n)
    if cls is MsgRecord:
        return (_OP_MSG, rec.kind, rec.peer, rec.tag, rec.size)
    if cls is CollectiveRecord:
        return (_OP_COLL, rec.op, rec.comm_size)
    if cls is MarkerRecord:
        return (_OP_MARKER, rec.name)
    raise TypeError(f"unknown record type {cls.__name__}")


def _record_floats(rec: TraceRecord) -> List[float]:
    """The per-occurrence payload matching :func:`record_key`."""
    cls = rec.__class__
    if cls is EnterRecord or cls is LeaveRecord or cls is MsgRecord:
        return [rec.t]
    if cls is BatchPairRecord:
        return [rec.t_first, rec.period, rec.duration]
    if cls is CollectiveRecord:
        return [rec.t_start, rec.t_end]
    if cls is MarkerRecord:
        return [rec.t_start, rec.t_end]
    raise TypeError(f"unknown record type {cls.__name__}")


def expand_batch_pairs(records: List[TraceRecord]) -> Iterator[TraceRecord]:
    """Expand every :class:`BatchPairRecord` into its 2n constituents.

    Pair ``k`` entered at ``t_first + k * period`` and left ``duration``
    later — the unbatched enter/leave stream the batch record stands
    for.  Non-batch records pass through unchanged.
    """
    for rec in records:
        if rec.__class__ is BatchPairRecord:
            for k in range(rec.n):
                t = rec.t_first + k * rec.period
                yield EnterRecord(rec.fid, t)
                yield LeaveRecord(rec.fid, t + rec.duration)
        else:
            yield rec


class CompactionStats:
    """Accounting of one compression pass."""

    __slots__ = ("record_objects", "raw_records", "compact_bytes",
                 "record_bytes", "folds", "folded_objects")

    def __init__(self, record_bytes: int = 24) -> None:
        #: In-memory record objects written (a batch pair counts once).
        self.record_objects = 0
        #: Raw on-disk records they stand for (a batch pair counts 2n).
        self.raw_records = 0
        #: Bytes of VGVZ output produced.
        self.compact_bytes = 0
        #: Bytes one raw record costs in the analytic volume model.
        self.record_bytes = record_bytes
        #: Folds emitted / record objects absorbed into them.
        self.folds = 0
        self.folded_objects = 0

    @property
    def model_bytes(self) -> int:
        """The analytic volume model's size: ``raw_records x record_bytes``."""
        return self.raw_records * self.record_bytes

    @property
    def ratio(self) -> float:
        """Compression ratio against the analytic volume model."""
        return self.model_bytes / self.compact_bytes if self.compact_bytes else 0.0

    @property
    def bytes_per_record(self) -> float:
        """Compact bytes per raw record (the model charges record_bytes)."""
        return self.compact_bytes / self.raw_records if self.raw_records else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (the ``trace compact --json`` payload)."""
        return {
            "record_objects": self.record_objects,
            "raw_records": self.raw_records,
            "model_bytes": self.model_bytes,
            "compact_bytes": self.compact_bytes,
            "bytes_per_record": round(self.bytes_per_record, 3),
            "ratio": round(self.ratio, 2),
            "folds": self.folds,
            "folded_objects": self.folded_objects,
        }

    def __repr__(self) -> str:
        return (
            f"<CompactionStats {self.raw_records} raw -> "
            f"{self.compact_bytes} B (x{self.ratio:.1f})>"
        )


class _StringTable:
    """Per-file string interning (encode side)."""

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}

    def encode(self, s: str, out: bytearray) -> None:
        sid = self._ids.get(s)
        if sid is not None:
            encode_uvarint(sid + 1, out)
            return
        encode_uvarint(0, out)
        data = s.encode("utf-8")
        encode_uvarint(len(data), out)
        out += data
        self._ids[s] = len(self._ids)


class CompactWriter:
    """Streaming VGVZ encoder.

    Feed records buffer by buffer (:meth:`begin_buffer` /
    :meth:`write` / :meth:`end_buffer`) and :meth:`close` when done;
    output bytes reach ``fh`` incrementally, with at most the
    suppressor's window of records held back.  ``strict_time=True``
    rejects a record whose ``.time`` precedes its predecessor's within
    a buffer (postmortem VT buffers append finalisation markers out of
    order, so the default is tolerant).
    """

    def __init__(
        self,
        fh: BinaryIO,
        app_name: str = "",
        record_bytes: int = 24,
        max_window: int = DEFAULT_MAX_WINDOW,
        suppress: bool = True,
        strict_time: bool = False,
    ) -> None:
        self._fh = fh
        self._strings = _StringTable()
        self._suppress = suppress
        self._max_window = max_window
        self._strict_time = strict_time
        self._suppressor: Optional[RepeatSuppressor] = None
        self._deltas: Optional[DeltaEncoder] = None
        self._last_time = float("-inf")
        self._in_buffer = False
        self._closed = False
        self.stats = CompactionStats(record_bytes)
        out = bytearray(MAGIC)
        out.append(VERSION)
        self._strings.encode(app_name, out)
        encode_uvarint(record_bytes, out)
        self._emit(out)

    # -- plumbing -----------------------------------------------------------------

    def _emit(self, data: bytearray) -> None:
        self.stats.compact_bytes += len(data)
        self._fh.write(bytes(data))

    # -- the writing interface ----------------------------------------------------

    def write_function(self, fid: int, name: str) -> None:
        """Register one function-table entry (fid -> name)."""
        out = bytearray((_OP_FUNC,))
        encode_uvarint(fid, out)
        self._strings.encode(name, out)
        self._emit(out)

    def begin_buffer(self, process: int, thread: int) -> None:
        """Open the (process, thread) buffer; records follow."""
        if self._in_buffer:
            raise ValueError("begin_buffer inside an open buffer")
        self._in_buffer = True
        self._deltas = DeltaEncoder()
        self._last_time = float("-inf")
        if self._suppress:
            self._suppressor = RepeatSuppressor(
                record_key, time=lambda r: r.time, max_window=self._max_window,
            )
        out = bytearray((_OP_BUF,))
        encode_uvarint(process, out)
        encode_uvarint(thread, out)
        self._emit(out)

    def write(self, rec: TraceRecord) -> None:
        """Append one record to the open buffer."""
        if not self._in_buffer:
            raise ValueError("write outside a buffer; call begin_buffer first")
        t = rec.time
        if self._strict_time and t < self._last_time:
            raise ValueError(
                f"out-of-order timestamp: {t!r} after {self._last_time!r} "
                f"in {rec!r}"
            )
        if t > self._last_time:
            self._last_time = t
        self.stats.record_objects += 1
        self.stats.raw_records += rec.record_count()
        if self._suppressor is not None:
            for element in self._suppressor.push(rec):
                self._encode_element(element)
        else:
            self._encode_element(rec)

    def end_buffer(self) -> None:
        """Close the open buffer (flushes the suppressor's tail)."""
        if not self._in_buffer:
            raise ValueError("end_buffer without an open buffer")
        if self._suppressor is not None:
            for element in self._suppressor.flush():
                self._encode_element(element)
            self.stats.folds += self._suppressor.folds
            self.stats.folded_objects += self._suppressor.folded_items
            self._suppressor = None
        self._in_buffer = False
        self._deltas = None

    def close(self) -> CompactionStats:
        """Write the END trailer; returns the accumulated stats."""
        if self._in_buffer:
            self.end_buffer()
        if not self._closed:
            out = bytearray((_OP_END,))
            encode_uvarint(self.stats.record_objects, out)
            encode_uvarint(self.stats.raw_records, out)
            self._emit(out)
            self._closed = True
        return self.stats

    # -- encoding -----------------------------------------------------------------

    def _encode_element(self, element: Union[TraceRecord, Fold]) -> None:
        out = bytearray()
        if isinstance(element, Fold):
            out.append(_OP_LOOP)
            encode_uvarint(element.width, out)
            encode_uvarint(element.n, out)
            for rec in element.iterations[0]:
                self._encode_structure(rec, out)
            deltas = self._deltas
            for iteration in element.iterations:
                for rec in iteration:
                    deltas.encode_many(_record_floats(rec), out)
        else:
            self._encode_structure(element, out)
            self._deltas.encode_many(_record_floats(element), out)
        self._emit(out)

    def _encode_structure(self, rec: TraceRecord, out: bytearray) -> None:
        cls = rec.__class__
        if cls is EnterRecord or cls is LeaveRecord:
            out.append(_OP_ENTER if cls is EnterRecord else _OP_LEAVE)
            encode_uvarint(rec.fid, out)
        elif cls is BatchPairRecord:
            out.append(_OP_BATCH)
            encode_uvarint(rec.fid, out)
            encode_uvarint(rec.n, out)
        elif cls is MsgRecord:
            out.append(_OP_MSG)
            out.append(0 if rec.kind == "send" else 1)
            encode_uvarint(zigzag(rec.peer), out)
            encode_uvarint(zigzag(rec.tag), out)
            encode_uvarint(rec.size, out)
        elif cls is CollectiveRecord:
            out.append(_OP_COLL)
            self._strings.encode(rec.op, out)
            encode_uvarint(rec.comm_size, out)
        elif cls is MarkerRecord:
            out.append(_OP_MARKER)
            self._strings.encode(rec.name, out)
        else:
            raise TypeError(f"unknown record type {cls.__name__}")


class CompactReader:
    """Streaming VGVZ decoder.

    ``iter_records()`` yields ``(process, thread, record)`` lazily, in
    stream order, expanding LOOP groups back into their constituent
    records; :meth:`read_trace` materialises a full
    :class:`~repro.vt.buffer.TraceFile`.
    """

    def __init__(self, data: bytes) -> None:
        if len(data) < 5 or data[:4] != MAGIC:
            raise ValueError("not a VGVZ stream")
        if data[4] != VERSION:
            raise ValueError(f"unsupported VGVZ version {data[4]}")
        self._data = data
        self._strings: List[str] = []
        pos = 5
        self.app_name, pos = self._decode_string(pos)
        self.record_bytes, pos = decode_uvarint(data, pos)
        self._body_start = pos
        self.functions: Dict[int, str] = {}

    @classmethod
    def from_file(cls, path: str) -> "CompactReader":
        """Open a VGVZ file on disk."""
        with open(path, "rb") as fh:
            return cls(fh.read())

    # -- decoding primitives ------------------------------------------------------

    def _decode_string(self, pos: int) -> Tuple[str, int]:
        sid, pos = decode_uvarint(self._data, pos)
        if sid:
            try:
                return self._strings[sid - 1], pos
            except IndexError:
                raise ValueError(f"bad string reference {sid}") from None
        length, pos = decode_uvarint(self._data, pos)
        if len(self._data) < pos + length:
            raise ValueError("truncated string")
        s = self._data[pos:pos + length].decode("utf-8")
        self._strings.append(s)
        return s, pos + length

    def _decode_structure(self, pos: int) -> Tuple[Tuple[Any, ...], int]:
        """One structural descriptor -> (key tuple, new position)."""
        data = self._data
        op = data[pos]
        pos += 1
        if op in (_OP_ENTER, _OP_LEAVE):
            fid, pos = decode_uvarint(data, pos)
            return (op, fid), pos
        if op == _OP_BATCH:
            fid, pos = decode_uvarint(data, pos)
            n, pos = decode_uvarint(data, pos)
            return (op, fid, n), pos
        if op == _OP_MSG:
            kind = "send" if data[pos] == 0 else "recv"
            pos += 1
            peer, pos = decode_uvarint(data, pos)
            tag, pos = decode_uvarint(data, pos)
            size, pos = decode_uvarint(data, pos)
            return (op, kind, unzigzag(peer), unzigzag(tag), size), pos
        if op == _OP_COLL:
            name, pos = self._decode_string(pos)
            comm_size, pos = decode_uvarint(data, pos)
            return (op, name, comm_size), pos
        if op == _OP_MARKER:
            name, pos = self._decode_string(pos)
            return (op, name), pos
        raise ValueError(f"unknown record opcode {op:#x}")

    @staticmethod
    def _build(key: Tuple[Any, ...], floats: List[float]) -> TraceRecord:
        op = key[0]
        if op == _OP_ENTER:
            return EnterRecord(key[1], floats[0])
        if op == _OP_LEAVE:
            return LeaveRecord(key[1], floats[0])
        if op == _OP_BATCH:
            return BatchPairRecord(key[1], key[2], floats[0], floats[1], floats[2])
        if op == _OP_MSG:
            return MsgRecord(key[1], key[2], key[3], key[4], floats[0])
        if op == _OP_COLL:
            return CollectiveRecord(key[1], key[2], floats[0], floats[1])
        if op == _OP_MARKER:
            return MarkerRecord(key[1], floats[0], floats[1])
        raise ValueError(f"unknown record opcode {op:#x}")

    _N_FLOATS = {_OP_ENTER: 1, _OP_LEAVE: 1, _OP_BATCH: 3,
                 _OP_MSG: 1, _OP_COLL: 2, _OP_MARKER: 2}

    # -- the reading interface ----------------------------------------------------

    def iter_records(self) -> Iterator[Tuple[int, int, TraceRecord]]:
        """Yield ``(process, thread, record)`` in stream order."""
        data = self._data
        pos = self._body_start
        process = thread = -1
        deltas: Optional[DeltaDecoder] = None
        objects = 0
        raw = 0
        while True:
            try:
                op = data[pos]
            except IndexError:
                raise ValueError("truncated VGVZ stream (no END trailer)") from None
            pos += 1
            if op == _OP_END:
                want_objects, pos = decode_uvarint(data, pos)
                want_raw, pos = decode_uvarint(data, pos)
                if want_objects != objects or want_raw != raw:
                    raise ValueError(
                        f"VGVZ trailer mismatch: decoded {objects} objects / "
                        f"{raw} raw records, trailer says {want_objects} / "
                        f"{want_raw}"
                    )
                return
            if op == _OP_FUNC:
                fid, pos = decode_uvarint(data, pos)
                name, pos = self._decode_string(pos)
                self.functions[fid] = name
                continue
            if op == _OP_BUF:
                process, pos = decode_uvarint(data, pos)
                thread, pos = decode_uvarint(data, pos)
                deltas = DeltaDecoder()
                continue
            if deltas is None:
                raise ValueError("record opcode before any buffer header")
            if op == _OP_LOOP:
                width, pos = decode_uvarint(data, pos)
                n, pos = decode_uvarint(data, pos)
                keys = []
                for _ in range(width):
                    key, pos = self._decode_structure(pos)
                    keys.append(key)
                for _ in range(n):
                    for key in keys:
                        floats = []
                        for _ in range(self._N_FLOATS[key[0]]):
                            value, pos = deltas.decode(data, pos)
                            floats.append(value)
                        rec = self._build(key, floats)
                        objects += 1
                        raw += rec.record_count()
                        yield process, thread, rec
                continue
            key, pos = self._decode_structure(pos - 1)
            floats = []
            for _ in range(self._N_FLOATS[key[0]]):
                value, pos = deltas.decode(data, pos)
                floats.append(value)
            rec = self._build(key, floats)
            objects += 1
            raw += rec.record_count()
            yield process, thread, rec

    def read_trace(self) -> TraceFile:
        """Materialise the whole stream as a :class:`TraceFile`."""
        trace = TraceFile(self.app_name, record_bytes=self.record_bytes)
        buffers: Dict[Tuple[int, int], ThreadTraceBuffer] = {}
        for process, thread, rec in self.iter_records():
            key = (process, thread)
            buf = buffers.get(key)
            if buf is None:
                buf = ThreadTraceBuffer(process, thread)
                buffers[key] = buf
                trace.add_buffer(buf)
            buf.records.append(rec)
            buf._raw_count += rec.record_count()
        for fid, name in self.functions.items():
            trace.register_function(fid, name)
        return trace


# -- one-call helpers ----------------------------------------------------------------


def compress_trace(
    trace: TraceFile,
    fh: BinaryIO,
    max_window: int = DEFAULT_MAX_WINDOW,
    suppress: bool = True,
    strict_time: bool = False,
) -> CompactionStats:
    """Encode a whole :class:`TraceFile` into ``fh``; returns stats."""
    writer = CompactWriter(
        fh, app_name=trace.app_name, record_bytes=trace.record_bytes,
        max_window=max_window, suppress=suppress, strict_time=strict_time,
    )
    for fid, name in sorted(trace.func_names.items()):
        writer.write_function(fid, name)
    for (process, thread), buf in sorted(trace.buffers.items()):
        writer.begin_buffer(process, thread)
        for rec in buf.records:
            writer.write(rec)
        writer.end_buffer()
    return writer.close()


def compress_trace_bytes(
    trace: TraceFile, **kwargs: Any
) -> Tuple[bytes, CompactionStats]:
    """In-memory :func:`compress_trace`; returns ``(bytes, stats)``."""
    fh = io.BytesIO()
    stats = compress_trace(trace, fh, **kwargs)
    return fh.getvalue(), stats


def decompress_trace(source: Union[bytes, BinaryIO]) -> TraceFile:
    """Decode a VGVZ stream (bytes or binary file) into a TraceFile."""
    data = source if isinstance(source, bytes) else source.read()
    return CompactReader(data).read_trace()


def measure_compact_bytes(records: List[TraceRecord],
                          max_window: int = DEFAULT_MAX_WINDOW) -> int:
    """Compact size of one record list (no header/table overhead).

    This is the per-buffer accounting hook
    :attr:`~repro.vt.buffer.ThreadTraceBuffer.compact_bytes` uses: the
    bytes the buffer's records cost inside a VGVZ stream, excluding the
    file header and function table so per-rank numbers add up.
    """
    fh = io.BytesIO()
    writer = CompactWriter(fh, max_window=max_window)
    header = writer.stats.compact_bytes
    writer.begin_buffer(0, 0)
    for rec in records:
        writer.write(rec)
    stats = writer.close()
    return stats.compact_bytes - header
