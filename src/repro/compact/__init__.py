"""repro.compact — streaming trace redundancy suppression and codec.

Trace volume is the binding constraint of complete profiling at scale
(the paper's 2 MB/s-per-processor estimate); most of that volume is
structural redundancy — the same loop body shape recorded verbatim
every iteration.  This package removes the redundancy *losslessly*:

* :mod:`repro.compact.suppress` — an on-line tandem-repeat detector
  that folds repeated record subsequences (generalising
  ``BatchPairRecord`` to arbitrary loop bodies), plus
  :func:`fold_ring` for bounded ring buffers;
* :mod:`repro.compact.varint` — LEB128/zigzag integer framing and a
  second-order IEEE-754 bit-pattern delta codec for timestamps (hot
  loops cost ~1 byte per timestamp after warm-up);
* :mod:`repro.compact.codec` — the VGVZ binary on-disk format with a
  streaming writer/reader pair and a strict round-trip guarantee:
  ``decompress(compress(stream)) == stream``, record for record.

Everything here is postmortem/off-path: the simulator's hot paths are
untouched, nothing costs anything unless a caller explicitly compresses
a trace or constructs a compacting tracer, and figure outputs are
byte-identical with the whole layer unused.
"""

from .codec import (
    CompactionStats,
    CompactReader,
    CompactWriter,
    compress_trace,
    compress_trace_bytes,
    decompress_trace,
    expand_batch_pairs,
    measure_compact_bytes,
    record_key,
)
from .suppress import DEFAULT_MAX_WINDOW, Fold, RepeatSuppressor, fold_ring
from .varint import (
    DeltaDecoder,
    DeltaEncoder,
    decode_uvarint,
    encode_uvarint,
    unzigzag,
    zigzag,
)

__all__ = [
    "CompactionStats",
    "CompactReader",
    "CompactWriter",
    "compress_trace",
    "compress_trace_bytes",
    "decompress_trace",
    "expand_batch_pairs",
    "measure_compact_bytes",
    "record_key",
    "Fold",
    "RepeatSuppressor",
    "fold_ring",
    "DEFAULT_MAX_WINDOW",
    "DeltaEncoder",
    "DeltaDecoder",
    "encode_uvarint",
    "decode_uvarint",
    "zigzag",
    "unzigzag",
]
