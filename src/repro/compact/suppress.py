"""Streaming repeat suppression over per-(process, thread) item streams.

The paper's trace volume problem is overwhelmingly *structural
redundancy*: an application's timestep loop emits the same
enter/leave/message shape thousands of times, differing only in
timestamps.  :class:`RepeatSuppressor` detects such tandem repeats
on-line — generalising the executor's :class:`~repro.vt.records.\
BatchPairRecord` idea (one function's enter/leave pairs) to *arbitrary*
repeated subsequences (whole loop bodies, mixed record kinds) — and
folds them into :class:`Fold` groups that carry every constituent item,
so downstream encoding stays lossless: the structure is stored once,
only the per-iteration payloads (timestamps) repeat.

The detector is windowed run-length encoding over *structural keys*
(caller-supplied; timestamps excluded): when the last ``2w`` keys form
two identical ``w``-long sequences, a fold opens and keeps absorbing
iterations while the keys keep matching and time keeps moving forward.
Out-of-order timestamps are rejected *from suppression* (never from
the stream): a backwards step closes the fold and the items pass
through verbatim, so compaction can never reorder or corrupt a trace.

Memory and output lag are bounded by ``2 * max_window`` items, which is
what makes the suppressor safe to put inside a streaming writer or a
fixed-capacity ring buffer (:func:`fold_ring`).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple, Union

__all__ = ["Fold", "RepeatSuppressor", "fold_ring", "DEFAULT_MAX_WINDOW"]

#: Longest repeated-subsequence body the detector looks for.
DEFAULT_MAX_WINDOW = 16


class Fold:
    """``n`` consecutive iterations of one repeated item subsequence.

    ``iterations[k][j]`` is iteration ``k``'s item at body position
    ``j``; every iteration has the same structural key sequence, so the
    body structure need only be stored once.
    """

    __slots__ = ("iterations",)

    def __init__(self, iterations: List[List[Any]]) -> None:
        self.iterations = iterations

    @property
    def n(self) -> int:
        """Number of iterations folded."""
        return len(self.iterations)

    @property
    def width(self) -> int:
        """Items per iteration (the repeated body's length)."""
        return len(self.iterations[0])

    @property
    def items(self) -> int:
        """Total items the fold stands for."""
        return self.n * self.width

    def __iter__(self):
        for iteration in self.iterations:
            yield from iteration

    def __repr__(self) -> str:
        return f"<Fold {self.n}x{self.width} items>"


class RepeatSuppressor:
    """On-line tandem-repeat detector over one item stream.

    ``key(item)`` must return a hashable structural key (timestamps and
    other per-occurrence payloads excluded); two items fold together
    only when their keys are equal.  ``time(item)``, when given, must
    return the item's timestamp: folds only form and grow while
    timestamps are non-decreasing.

    :meth:`push` returns the items (and :class:`Fold` groups) that are
    now final, in input order; :meth:`flush` drains the tail.  The
    concatenation of all outputs, with folds expanded in order, is
    exactly the input stream.
    """

    def __init__(
        self,
        key: Callable[[Any], Any],
        time: Optional[Callable[[Any], float]] = None,
        max_window: int = DEFAULT_MAX_WINDOW,
    ) -> None:
        if max_window < 1:
            raise ValueError(f"max_window must be >= 1, got {max_window}")
        self._key = key
        self._time = time
        self.max_window = max_window
        #: Items not yet emitted and not inside the active fold.
        self._pending: List[Any] = []
        self._pending_keys: List[Any] = []
        #: Active fold state (None when no repeat is in progress).
        self._body_keys: Optional[Tuple[Any, ...]] = None
        self._iterations: List[List[Any]] = []
        self._partial: List[Any] = []
        self._last_time: float = float("-inf")
        #: Folds emitted / items absorbed into them (monitoring).
        self.folds = 0
        self.folded_items = 0

    # -- the streaming interface ----------------------------------------------

    def push(self, item: Any) -> List[Union[Any, Fold]]:
        """Feed one item; returns everything that became final."""
        out: List[Union[Any, Fold]] = []
        k = self._key(item)
        t = self._time(item) if self._time is not None else None
        if self._body_keys is not None:
            pos = len(self._partial)
            if k == self._body_keys[pos] and (t is None or t >= self._last_time):
                self._partial.append(item)
                if t is not None:
                    self._last_time = t
                if len(self._partial) == len(self._body_keys):
                    self._iterations.append(self._partial)
                    self._partial = []
                return out
            # The repeat broke: emit the fold, requeue the partial match.
            requeued = self._close_fold(out)
            for prev in requeued:
                self._absorb(prev, self._key(prev), out)
        self._absorb(item, k, out)
        return out

    def flush(self) -> List[Union[Any, Fold]]:
        """Drain the active fold and every pending item, in order."""
        out: List[Union[Any, Fold]] = []
        if self._body_keys is not None:
            out.extend(self._close_fold(out) or [])
        out.extend(self._pending)
        self._pending = []
        self._pending_keys = []
        self._last_time = float("-inf")
        return out

    # -- internals --------------------------------------------------------------

    def _close_fold(self, out: List[Union[Any, Fold]]) -> List[Any]:
        """Emit the active fold into ``out``; returns the partial tail."""
        fold = Fold(self._iterations)
        self.folds += 1
        self.folded_items += fold.items
        out.append(fold)
        partial = self._partial
        self._body_keys = None
        self._iterations = []
        self._partial = []
        return partial

    def _absorb(self, item: Any, k: Any, out: List[Union[Any, Fold]]) -> None:
        """Append to pending, then look for a fresh tandem repeat."""
        pending = self._pending
        keys = self._pending_keys
        pending.append(item)
        keys.append(k)
        n = len(pending)
        time_fn = self._time
        for w in range(1, min(self.max_window, n // 2) + 1):
            if keys[n - 2 * w:n - w] != keys[n - w:]:
                continue
            region = pending[n - 2 * w:]
            if time_fn is not None and not _non_decreasing(region, time_fn):
                continue
            # Everything before the repeat region is final now.
            out.extend(pending[:n - 2 * w])
            self._body_keys = tuple(keys[n - w:])
            self._iterations = [region[:w], region[w:]]
            if time_fn is not None:
                self._last_time = time_fn(region[-1])
            pending.clear()
            keys.clear()
            return
        # Bound memory/lag: the head can no longer join any repeat the
        # window could still detect.
        while len(pending) > 2 * self.max_window:
            out.append(pending.pop(0))
            keys.pop(0)


def _non_decreasing(items: List[Any], time_fn: Callable[[Any], float]) -> bool:
    prev = float("-inf")
    for item in items:
        t = time_fn(item)
        if t < prev:
            return False
        prev = t
    return True


def fold_ring(
    items: List[Any],
    key: Callable[[Any], Any],
    merge: Callable[[Fold], List[Any]],
    max_window: int = 8,
) -> List[Any]:
    """One batch compaction pass over a bounded buffer's contents.

    Runs the suppressor over ``items`` and replaces every detected
    :class:`Fold` with ``merge(fold)`` — typically the first iteration's
    items annotated with the fold count — so a full ring can shed
    *redundancy* before it has to shed *information*.  Items that did
    not fold pass through unchanged, in order.
    """
    suppressor = RepeatSuppressor(key, max_window=max_window)
    out: List[Any] = []
    for item in items:
        for element in suppressor.push(item):
            if isinstance(element, Fold):
                out.extend(merge(element))
            else:
                out.append(element)
    for element in suppressor.flush():
        if isinstance(element, Fold):
            out.extend(merge(element))
        else:
            out.append(element)
    return out
