"""Integer and timestamp framing primitives of the compact trace codec.

Three layers, each exactly invertible:

* **LEB128 varints** — non-negative integers in 7-bit groups, low group
  first, high bit = continuation.  Small values (record opcodes, fids,
  loop counts) cost one byte.
* **ZigZag** — signed-to-unsigned folding (0, -1, 1, -2, ... -> 0, 1,
  2, 3, ...) so small-magnitude deltas of either sign stay short.
  Implemented arithmetically, so it is correct for arbitrary-precision
  Python integers (bit-pattern deltas can exceed 64 bits when the sign
  flips).
* **Timestamp deltas** — a float is mapped to the signed 64-bit integer
  holding its IEEE-754 bit pattern.  For finite doubles of one sign the
  bit pattern is monotonic in the value and *affine within a binade*,
  so a loop with a constant time step produces a constant bit-pattern
  delta — which the second-order (delta-of-delta) encoder collapses to
  a single zero byte per timestamp.  Encoding bit patterns (not
  quantized values) is what makes the codec lossless: every float,
  including -0.0, subnormals, infinities and NaN payloads, round-trips
  bit-for-bit.

:class:`DeltaEncoder`/:class:`DeltaDecoder` hold the per-stream
registers (previous bits, previous delta); one pair per trace buffer
keeps buffers independently decodable.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "zigzag",
    "unzigzag",
    "float_to_bits",
    "bits_to_float",
    "DeltaEncoder",
    "DeltaDecoder",
]

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<q")


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` (>= 0) to ``out`` as an LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read one LEB128 varint at ``pos``; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        try:
            byte = data[pos]
        except IndexError:
            raise ValueError("truncated varint") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag(n: int) -> int:
    """Fold a signed integer into a non-negative one, small stays small."""
    return n * 2 if n >= 0 else -n * 2 - 1


def unzigzag(z: int) -> int:
    """Inverse of :func:`zigzag`."""
    return z >> 1 if z % 2 == 0 else -(z >> 1) - 1


def float_to_bits(value: float) -> int:
    """The signed 64-bit integer holding ``value``'s IEEE-754 pattern."""
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return _PACK_D.unpack(_PACK_Q.pack(bits))[0]


class DeltaEncoder:
    """Second-order delta encoder over float bit patterns.

    Emits ``zigzag(delta - previous_delta)`` where ``delta`` is the
    bit-pattern difference to the previous value; a periodic timestamp
    stream (constant step within a binade) therefore costs one zero
    byte per value after the second sample.
    """

    __slots__ = ("_bits", "_delta")

    def __init__(self) -> None:
        self._bits = 0
        self._delta = 0

    def encode(self, value: float, out: bytearray) -> None:
        """Append the framed encoding of ``value`` to ``out``."""
        bits = float_to_bits(value)
        delta = bits - self._bits
        encode_uvarint(zigzag(delta - self._delta), out)
        self._bits = bits
        self._delta = delta

    def encode_many(self, values: List[float], out: bytearray) -> None:
        """Append every value of ``values`` in order."""
        for value in values:
            self.encode(value, out)


class DeltaDecoder:
    """Mirror of :class:`DeltaEncoder`; registers must stay in lockstep."""

    __slots__ = ("_bits", "_delta")

    def __init__(self) -> None:
        self._bits = 0
        self._delta = 0

    def decode(self, data: bytes, pos: int) -> Tuple[float, int]:
        """Read one framed float at ``pos``; returns ``(value, new_pos)``."""
        z, pos = decode_uvarint(data, pos)
        delta = self._delta + unzigzag(z)
        bits = self._bits + delta
        self._bits = bits
        self._delta = delta
        return bits_to_float(bits), pos
