"""repro.mpi — the simulated MPI library.

A generator-based MPI over the cluster model: communicators with
mpi4py-style point-to-point and collective operations, eager/rendezvous
protocols, non-overtaking message matching, nonblocking requests, and
MPI_Init/MPI_Finalize as instrumentable image symbols with the VT
wrapper interface hooked in.
"""

from .comm import Communicator
from .messages import ANY_SOURCE, ANY_TAG, Envelope, Status
from .request import Request, wait_all
from .runtime import MpiWorld, RankContext, install_mpi_symbols
from .transport import Mailbox, Transport
from .util import payload_size

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Envelope",
    "Status",
    "Request",
    "wait_all",
    "MpiWorld",
    "RankContext",
    "install_mpi_symbols",
    "Mailbox",
    "Transport",
    "payload_size",
]
