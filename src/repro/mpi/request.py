"""Nonblocking-operation requests (MPI_Request analog)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Tuple

from ..simt import Event

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Communicator

__all__ = ["Request"]


class Request:
    """Handle for a pending isend/irecv.

    ``wait()`` is a generator (yield from it); ``test()`` is a
    non-blocking completion probe.  A completion hook converts the raw
    event value (e.g. an envelope) into the user-visible result and may
    itself block (rendezvous payload transfer), which is why ``wait``
    rather than the event is the completion point.
    """

    __slots__ = ("comm", "_event", "_finisher", "kind", "_done", "_result")

    def __init__(
        self,
        comm: "Communicator",
        event: Event,
        kind: str,
        finisher: Optional[Callable[[Any], Generator]] = None,
    ) -> None:
        self.comm = comm
        self._event = event
        self._finisher = finisher
        self.kind = kind
        self._done = False
        self._result: Any = None

    def wait(self) -> Generator:
        """Block until the operation completes; returns its result."""
        if self._done:
            return self._result
        raw = yield self._event
        if self._finisher is not None:
            raw = yield from self._finisher(raw)
        self._done = True
        self._result = raw
        return raw

    def test(self) -> Tuple[bool, Any]:
        """(completed?, result).  Never blocks; completion requires that
        any finisher work (rendezvous transfer) has already been done by
        a prior ``wait``, or that none is needed."""
        if self._done:
            return True, self._result
        if self._event.triggered and self._finisher is None:
            self._done = True
            self._result = self._event._value
            return True, self._result
        return False, None

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<Request {self.kind} {state}>"


def wait_all(requests) -> "Generator":
    """Complete a set of requests (MPI_Waitall); returns their results
    in request order."""
    results = []
    for request in requests:
        results.append((yield from request.wait()))
    return results
