"""Payload size estimation for the MPI simulator."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["payload_size"]


def payload_size(obj: Any) -> int:
    """Estimate the wire size of a Python payload, in bytes.

    numpy arrays report their true buffer size; scalars count as one
    8-byte element; containers sum their elements plus a small per-item
    header, mirroring a pickle-based transport like mpi4py's lowercase
    API.
    """
    if obj is None:
        return 8
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 16 + sum(payload_size(x) + 8 for x in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            payload_size(k) + payload_size(v) + 16 for k, v in obj.items()
        )
    size_hint = getattr(obj, "payload_bytes", None)
    if callable(size_hint):
        return int(size_hint())
    return 64
