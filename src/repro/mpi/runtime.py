"""The MPI runtime: world/job state, rank contexts, MPI_Init semantics.

``MPI_Init`` and ``MPI_Finalize`` are registered as *symbols in the
application image* and invoked through the normal call protocol
(``yield from pctx.call("MPI_Init")``).  This matters: dynprof patches
the **exit probe point of MPI_Init** with its bootstrap snippet
(Figure 6), which only works if MPI_Init is an instrumentable function
of the image.  The VT library initialises itself inside MPI_Init via
the wrapper interface, exactly like the real Vampirtrace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, List, Optional

from ..cluster import Cluster, Node, Task
from ..simt import Environment
from .comm import Communicator
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover
    from ..program import ExecutableImage, ProgramContext
    from ..vt import TraceFile

__all__ = ["MpiWorld", "RankContext", "install_mpi_symbols"]


class RankContext:
    """Per-rank MPI state, attached to the rank's ProgramContext as
    ``pctx.mpi``."""

    __slots__ = ("world", "rank", "task", "pctx", "comm", "initialized", "finalized")

    def __init__(self, world: "MpiWorld", rank: int, task: Task, pctx: "ProgramContext") -> None:
        self.world = world
        self.rank = rank
        self.task = task
        self.pctx = pctx
        self.comm = Communicator(world, rank)
        self.initialized = False
        self.finalized = False

    @property
    def size(self) -> int:
        return self.world.n_ranks

    # -- MPI_Init / MPI_Finalize bodies ------------------------------------------

    def init_body(self, pctx: "ProgramContext") -> Generator:
        """The body of MPI_Init: runtime setup + implicit synchronisation,
        then the VT wrapper hook (VT initialises *inside* MPI_Init)."""
        if self.initialized:
            raise RuntimeError(f"rank {self.rank}: MPI_Init called twice")
        task = self.task
        task.charge(self.world.spec.mpi_init_cost)
        yield from self.comm._dissemination()  # ranks synchronise in init
        wrapper = self.world.wrappers[self.rank]
        if wrapper is not None:
            wrapper.on_init_complete(pctx)
        self.initialized = True
        self.world._init_count += 1

    def finalize_body(self, pctx: "ProgramContext") -> Generator:
        """The body of MPI_Finalize: drain, synchronise, flush traces."""
        if not self.initialized:
            raise RuntimeError(f"rank {self.rank}: MPI_Finalize before MPI_Init")
        if self.finalized:
            raise RuntimeError(f"rank {self.rank}: MPI_Finalize called twice")
        yield from self.comm._dissemination()
        wrapper = self.world.wrappers[self.rank]
        if wrapper is not None:
            wrapper.on_finalize(pctx, self.world.trace)
        self.finalized = True

    def __repr__(self) -> str:
        return f"<RankContext {self.rank}/{self.size}>"


class MpiWorld:
    """One MPI job: ranks, transport, wrappers, shared trace file."""

    def __init__(self, env: Environment, cluster: Cluster, rank_nodes: List[Node]) -> None:
        if not rank_nodes:
            raise ValueError("an MPI job needs at least one rank")
        self.env = env
        self.cluster = cluster
        self.spec = cluster.spec
        self.rank_nodes = rank_nodes
        self.transport = Transport(env, cluster, rank_nodes)
        self.rank_contexts: List[Optional[RankContext]] = [None] * len(rank_nodes)
        #: Per-rank VT wrapper hooks (None when VT is not linked in).
        self.wrappers: List[Any] = [None] * len(rank_nodes)
        #: The postmortem trace file wrappers flush into at finalize.
        self.trace: Optional["TraceFile"] = None
        self._init_count = 0

    @property
    def n_ranks(self) -> int:
        return len(self.rank_nodes)

    @property
    def all_initialized(self) -> bool:
        return self._init_count == self.n_ranks

    def attach_rank(self, rank: int, task: Task, pctx: "ProgramContext") -> RankContext:
        """Bind rank ``rank`` to its task and program context."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        if self.rank_contexts[rank] is not None:
            raise ValueError(f"rank {rank} already attached")
        rctx = RankContext(self, rank, task, pctx)
        self.rank_contexts[rank] = rctx
        pctx.mpi = rctx
        # Snippets inserted by dynprof may call MPI_Barrier by name (Fig 6).
        pctx.image.register_runtime(
            "MPI_Barrier", lambda p: p.mpi.comm._dissemination()
        )
        return rctx

    def set_wrapper(self, rank: int, wrapper: Any) -> None:
        self.wrappers[rank] = wrapper

    def __repr__(self) -> str:
        return f"<MpiWorld {self.n_ranks} ranks on {self.cluster.spec.name}>"


def install_mpi_symbols(exe: "ExecutableImage") -> None:
    """Add MPI_Init / MPI_Finalize to an application's symbol table.

    Their bodies delegate to the rank context; their probe points are
    instrumentable like any other function — which is exactly what the
    dynprof bootstrap exploits.
    """

    def mpi_init(pctx: "ProgramContext") -> Generator:
        yield from pctx.mpi.init_body(pctx)

    def mpi_finalize(pctx: "ProgramContext") -> Generator:
        yield from pctx.mpi.finalize_body(pctx)

    exe.define("MPI_Init", body=mpi_init, module="libmpi")
    exe.define("MPI_Finalize", body=mpi_finalize, module="libmpi")
