"""The communicator: point-to-point and collective operations.

The API shape follows mpi4py's lowercase (pickle-based) methods —
``send``/``recv``/``bcast``/``reduce``/… — except that every operation is
a *generator* (``yield from comm.send(...)``) because the simulation is
cooperative.  ``Get_rank``/``Get_size`` aliases are provided for
familiarity.

Collectives are implemented on top of the simulated point-to-point layer
with the classic algorithms (dissemination barrier, binomial-tree
bcast/reduce/gather), so their latency scales O(log P) with real message
traffic — this is what gives VT_confsync its Figure 8 scaling.  Internal
collective traffic uses a separate match context and is not logged by
the VT wrapper (only the collective itself is, as with real PMPI).
"""

from __future__ import annotations

import operator
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional

from .messages import ANY_SOURCE, ANY_TAG, COLL, P2P, Status
from .request import Request
from .util import payload_size

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import MpiWorld

__all__ = ["Communicator"]


def _log2_ceil(n: int) -> int:
    bits = 0
    while (1 << bits) < n:
        bits += 1
    return bits


class Communicator:
    """One rank's view of MPI_COMM_WORLD.

    Only the world communicator is modelled — the paper's applications
    and experiments never split communicators.
    """

    def __init__(self, world: "MpiWorld", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.n_ranks
        self._coll_seq = 0

    # mpi4py-style accessors.
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- plumbing ------------------------------------------------------------

    @property
    def _pctx(self):
        return self.world.rank_contexts[self.rank].pctx

    @property
    def _task(self):
        return self.world.rank_contexts[self.rank].task

    @property
    def _spec(self):
        return self.world.spec

    @property
    def _wrapper(self):
        return self.world.wrappers[self.rank]

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"{what} rank {peer} out of range [0, {self.size})")

    # -- point-to-point ---------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0, size: Optional[int] = None) -> Generator:
        """Blocking standard-mode send."""
        yield from self._send(obj, dest, tag, size, context=P2P, log=True)

    def _send(self, obj: Any, dest: int, tag: int, size: Optional[int], context: str, log: bool) -> Generator:
        self._check_peer(dest, "destination")
        task = self._task
        nbytes = payload_size(obj) if size is None else int(size)
        task.charge(self._spec.mpi_overhead)
        if log:
            wrapper = self._wrapper
            if wrapper is not None:
                wrapper.on_send(self._pctx, dest, tag, nbytes)
        yield from task.flush()
        transport = self.world.transport
        if nbytes <= self._spec.eager_limit:
            transport.send_eager(self.rank, dest, tag, context, obj, nbytes)
        else:
            handshake = transport.send_rendezvous(self.rank, dest, tag, context, obj, nbytes)
            transfer = yield from task.blocked_wait(handshake)
            yield self.world.env.timeout(transfer)
        yield from task.checkpoint()

    def isend(self, obj: Any, dest: int, tag: int = 0, size: Optional[int] = None) -> Request:
        """Nonblocking send; completion via the returned Request."""
        self._check_peer(dest, "destination")
        task = self._task
        nbytes = payload_size(obj) if size is None else int(size)
        task.charge(self._spec.mpi_overhead)
        wrapper = self._wrapper
        if wrapper is not None:
            wrapper.on_send(self._pctx, dest, tag, nbytes)
        transport = self.world.transport
        if nbytes <= self._spec.eager_limit:
            # Eager sends buffer immediately: already complete.
            done = self.world.env.event()
            done.succeed(None)
            transport.send_eager(self.rank, dest, tag, P2P, obj, nbytes)
            return Request(self, done, "isend")
        handshake = transport.send_rendezvous(self.rank, dest, tag, P2P, obj, nbytes)

        def finish(transfer: float) -> Generator:
            yield self.world.env.timeout(transfer)
            return None

        return Request(self, handshake, "isend", finisher=finish)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Optional[Status] = None,
    ) -> Generator:
        """Blocking receive; returns the payload object."""
        return (yield from self._recv(source, tag, status, context=P2P, log=True))

    def _recv(self, source: int, tag: int, status: Optional[Status], context: str, log: bool) -> Generator:
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        task = self._task
        yield from task.flush()
        mailbox = self.world.transport.mailboxes[self.rank]
        envelope = yield from task.blocked_wait(mailbox.post_recv(source, tag, context))
        if envelope.rendezvous:
            transfer = self.world.transport.payload_transfer_time(
                envelope.src, self.rank, envelope.size
            )
            envelope.handshake.succeed(transfer)
            yield self.world.env.timeout(transfer)
        yield from task.checkpoint()
        task.charge(self._spec.mpi_overhead)
        if log:
            wrapper = self._wrapper
            if wrapper is not None:
                wrapper.on_recv(self._pctx, envelope.src, envelope.tag, envelope.size)
        if status is not None:
            status.source = envelope.src
            status.tag = envelope.tag
            status.size = envelope.size
        return envelope.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        mailbox = self.world.transport.mailboxes[self.rank]
        event = mailbox.post_recv(source, tag, P2P)

        def finish(envelope) -> Generator:
            if envelope.rendezvous:
                transfer = self.world.transport.payload_transfer_time(
                    envelope.src, self.rank, envelope.size
                )
                envelope.handshake.succeed(transfer)
                yield self.world.env.timeout(transfer)
            self._task.charge(self._spec.mpi_overhead)
            wrapper = self._wrapper
            if wrapper is not None:
                wrapper.on_recv(self._pctx, envelope.src, envelope.tag, envelope.size)
            return envelope.payload

        return Request(self, event, "irecv", finisher=finish)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
    ) -> Generator:
        """Combined send+receive (deadlock-free exchange)."""
        req = self.isend(sendobj, dest, sendtag)
        result = yield from self.recv(source, recvtag)
        yield from req.wait()
        return result

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is waiting (MPI_Iprobe)."""
        mailbox = self.world.transport.mailboxes[self.rank]
        return mailbox.probe(source, tag, P2P) is not None

    # -- collective internals -----------------------------------------------------

    def _ctag(self, round_: int) -> int:
        """Tag for an internal collective message of the current op."""
        return self._coll_seq * 64 + round_

    def _csend(self, obj: Any, dest: int, round_: int, size: Optional[int] = None) -> Generator:
        yield from self._send(obj, dest, self._ctag(round_), size, context=COLL, log=False)

    def _crecv(self, source: int, round_: int) -> Generator:
        return (yield from self._recv(source, self._ctag(round_), None, context=COLL, log=False))

    def _coll_begin(self) -> float:
        self._coll_seq += 1
        return self._task.now

    def _coll_end(self, op: str, t_start: float) -> None:
        wrapper = self._wrapper
        if wrapper is not None:
            wrapper.on_collective(self._pctx, op, self.size, t_start)

    # -- collectives ------------------------------------------------------------------

    def barrier(self) -> Generator:
        """Dissemination barrier: ceil(log2 P) rounds of shifted exchange."""
        t0 = self._coll_begin()
        yield from self._dissemination()
        self._coll_end("MPI_Barrier", t0)

    def _dissemination(self) -> Generator:
        P = self.size
        if P > 1:
            for k in range(_log2_ceil(P)):
                dist = 1 << k
                yield from self._csend(0, (self.rank + dist) % P, k, size=4)
                yield from self._crecv((self.rank - dist) % P, k)
        yield from self._task.checkpoint()

    def bcast(self, obj: Any, root: int = 0, size: Optional[int] = None) -> Generator:
        """Binomial-tree broadcast; returns the root's object on all ranks."""
        self._check_peer(root, "root")
        t0 = self._coll_begin()
        P = self.size
        vrank = (self.rank - root) % P
        if vrank != 0:
            parent = _clear_highest_bit(vrank)
            obj = yield from self._crecv((parent + root) % P, 0)
        j = 0
        while True:
            bit = 1 << j
            if bit > vrank:
                child = vrank + bit
                if child >= P:
                    break
                yield from self._csend(obj, (child + root) % P, 0, size=size)
            j += 1
        self._coll_end("MPI_Bcast", t0)
        return obj

    def reduce(
        self,
        obj: Any,
        op: Callable[[Any, Any], Any] = operator.add,
        root: int = 0,
    ) -> Generator:
        """Binomial-tree reduction; root returns the combined value."""
        self._check_peer(root, "root")
        t0 = self._coll_begin()
        P = self.size
        vrank = (self.rank - root) % P
        partial = obj
        j = 0
        while True:
            bit = 1 << j
            if bit > vrank:
                child = vrank + bit
                if child >= P:
                    break
                contribution = yield from self._crecv((child + root) % P, 0)
                partial = op(partial, contribution)
            j += 1
        if vrank != 0:
            parent = _clear_highest_bit(vrank)
            yield from self._csend(partial, (parent + root) % P, 0)
            self._coll_end("MPI_Reduce", t0)
            return None
        self._coll_end("MPI_Reduce", t0)
        return partial

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = operator.add) -> Generator:
        """Reduce-to-0 followed by broadcast (2 log P stages)."""
        t0 = self._coll_begin()
        partial = yield from self.reduce(obj, op, root=0)
        result = yield from self.bcast(partial, root=0)
        self._coll_end("MPI_Allreduce", t0)
        return result

    def gather(self, obj: Any, root: int = 0, size: Optional[int] = None) -> Generator:
        """Binomial gather; root returns [value_0, ..., value_{P-1}]."""
        self._check_peer(root, "root")
        t0 = self._coll_begin()
        P = self.size
        vrank = (self.rank - root) % P
        collected = {vrank: obj}
        j = 0
        while True:
            bit = 1 << j
            if bit > vrank:
                child = vrank + bit
                if child >= P:
                    break
                part = yield from self._crecv((child + root) % P, 0)
                collected.update(part)
            j += 1
        if vrank != 0:
            parent = _clear_highest_bit(vrank)
            yield from self._csend(collected, (parent + root) % P, 0, size=size)
            self._coll_end("MPI_Gather", t0)
            return None
        self._coll_end("MPI_Gather", t0)
        return [collected[v] for v in range(P)]

    def allgather(self, obj: Any) -> Generator:
        """Gather to 0 + broadcast of the assembled list."""
        t0 = self._coll_begin()
        gathered = yield from self.gather(obj, root=0)
        result = yield from self.bcast(gathered, root=0)
        self._coll_end("MPI_Allgather", t0)
        return result

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Generator:
        """Flat-tree scatter; each rank returns its element of root's list."""
        self._check_peer(root, "root")
        t0 = self._coll_begin()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"scatter root needs a list of exactly {self.size} items"
                )
            mine = objs[root]
            for dest in range(self.size):
                if dest != root:
                    yield from self._csend(objs[dest], dest, 0)
        else:
            mine = yield from self._crecv(root, 0)
        self._coll_end("MPI_Scatter", t0)
        return mine

    def alltoall(self, objs: List[Any]) -> Generator:
        """Pairwise-exchange all-to-all; returns the received list."""
        if len(objs) != self.size:
            raise ValueError(f"alltoall needs a list of exactly {self.size} items")
        t0 = self._coll_begin()
        P = self.size
        result: List[Any] = [None] * P
        result[self.rank] = objs[self.rank]
        for k in range(1, P):
            dest = (self.rank + k) % P
            src = (self.rank - k) % P
            # Ordered exchange avoids rendezvous deadlock on large payloads.
            if self.rank < dest:
                yield from self._csend(objs[dest], dest, k)
                result[src] = yield from self._crecv(src, k)
            else:
                result[src] = yield from self._crecv(src, k)
                yield from self._csend(objs[dest], dest, k)
        self._coll_end("MPI_Alltoall", t0)
        return result

    def __repr__(self) -> str:
        return f"<Communicator rank={self.rank}/{self.size}>"


def _clear_highest_bit(v: int) -> int:
    """Parent of ``v`` in a binomial tree rooted at 0."""
    bit = 1
    while bit <= v:
        bit <<= 1
    return v - (bit >> 1)
