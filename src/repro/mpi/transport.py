"""The MPI transport: mailboxes, matching, wire-time scheduling.

Messages travel through the cluster :class:`Interconnect` with sampled
latency/bandwidth.  Because latency jitter could reorder two messages on
the same (source, destination, context) flow, arrival times are clamped
to be non-decreasing per flow — preserving MPI's non-overtaking
guarantee.

Matching follows the standard: a posted receive matches the earliest-
arrived envelope with a compatible (source, tag) in the same context;
unexpected messages queue at the receiver until a matching receive is
posted.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..cluster import Cluster, Node
from ..obs import get as _obs_get
from ..obs.trace import get as _trace_get
from ..replay.hooks import get as _replay_get
from ..simt import Environment, Event
from .messages import Envelope

__all__ = ["Mailbox", "Transport"]

#: Histogram bucket upper bounds for on-wire message sizes (bytes).
MSG_SIZE_EDGES = (64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304)


class _PostedRecv:
    """A receive waiting for a matching envelope."""

    __slots__ = ("source", "tag", "context", "event")

    def __init__(self, source: int, tag: int, context: str, event: Event) -> None:
        self.source = source
        self.tag = tag
        self.context = context
        self.event = event


class Mailbox:
    """Per-rank incoming-message state."""

    def __init__(self, env: Environment, rank: int) -> None:
        self.env = env
        self.rank = rank
        self._unexpected: Deque[Envelope] = deque()
        self._posted: Deque[_PostedRecv] = deque()
        self._obs = _obs_get()
        self._trace = _trace_get()
        self._replay = _replay_get()

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)

    def deliver(self, envelope: Envelope) -> None:
        """An envelope has arrived on the wire."""
        envelope.arrived_at = self.env.now
        if envelope.flow is not None and self._trace.enabled:
            # Close the causal edge the sender opened: this delivery
            # could not have happened before that send.
            self._trace.flow_end(
                self.rank, 0, envelope.flow, "mpi.deliver", "mpi",
                self.env.now,
                args={"src": envelope.src, "tag": envelope.tag,
                      "bytes": envelope.size},
            )
        for position, posted in enumerate(self._posted):
            if envelope.matches(posted.source, posted.tag, posted.context):
                self._posted.remove(posted)
                posted.event.succeed(envelope)
                if self._obs.enabled:
                    self._obs.inc("mpi.matched_posted")
                if self._replay.enabled:
                    self._replay.on_deliver(
                        envelope.src, self.rank, envelope.tag,
                        envelope.context, position, self.env.now,
                    )
                return
        self._unexpected.append(envelope)
        if self._obs.enabled:
            self._obs.gauge_max("mpi.unexpected_hwm", len(self._unexpected))
        if self._replay.enabled:
            # -1 = filed as unexpected (no posted receive matched).
            self._replay.on_deliver(
                envelope.src, self.rank, envelope.tag, envelope.context,
                -1, self.env.now,
            )

    def post_recv(self, source: int, tag: int, context: str) -> Event:
        """Post a receive; the event triggers with the matched envelope."""
        event = Event(self.env)
        for position, envelope in enumerate(self._unexpected):
            if envelope.matches(source, tag, context):
                self._unexpected.remove(envelope)
                event.succeed(envelope)
                if self._obs.enabled:
                    self._obs.inc("mpi.matched_unexpected")
                if self._replay.enabled:
                    self._replay.on_match(
                        envelope.src, self.rank, envelope.tag,
                        envelope.context, position, self.env.now,
                    )
                return event
        self._posted.append(_PostedRecv(source, tag, context, event))
        return event

    def probe(self, source: int, tag: int, context: str) -> Optional[Envelope]:
        """Non-destructive match against the unexpected queue (MPI_Iprobe)."""
        for envelope in self._unexpected:
            if envelope.matches(source, tag, context):
                return envelope
        return None

    def cancel_recv(self, event: Event) -> bool:
        """Withdraw a posted receive (MPI_Cancel on a recv request).

        Two cases:

        * the receive is still posted and unmatched — it is simply
          removed from the posted queue;
        * the receive already matched an envelope but the completion
          event has not been processed yet (it is riding the event
          queue) — the match is undone: the event is lazily cancelled
          via :meth:`Environment.cancel` and the envelope is re-filed
          into the unexpected queue in arrival order, so a different
          receive can still match it.

        Returns True if the receive was withdrawn; False if it already
        completed (the caller owns the envelope) or was never ours.
        """
        for posted in self._posted:
            if posted.event is event:
                self._posted.remove(posted)
                if self._obs.enabled:
                    self._obs.inc("mpi.cancelled_recvs")
                return True
        if event.triggered and not event.processed:
            envelope = event._value
            if isinstance(envelope, Envelope) and self.env.cancel(event):
                # Re-file preserving arrival order among the unexpected.
                arrived = envelope.arrived_at or 0.0
                for i, other in enumerate(self._unexpected):
                    if (other.arrived_at or 0.0) > arrived:
                        self._unexpected.insert(i, envelope)
                        break
                else:
                    self._unexpected.append(envelope)
                if self._obs.enabled:
                    self._obs.inc("mpi.cancelled_recvs")
                return True
        return False


class Transport:
    """Moves envelopes between ranks through the interconnect."""

    def __init__(self, env: Environment, cluster: Cluster, rank_nodes: List[Node]) -> None:
        self.env = env
        self.cluster = cluster
        self.spec = cluster.spec
        self.rank_nodes = rank_nodes
        self.mailboxes: List[Mailbox] = [Mailbox(env, r) for r in range(len(rank_nodes))]
        #: Per-flow last-arrival clamp: (src, dst, context) -> time.
        self._last_arrival: Dict[Tuple[int, int, str], float] = {}
        #: Diagnostics.
        self.eager_sends = 0
        self.rendezvous_sends = 0
        self._obs = _obs_get()
        self._trace = _trace_get()

    def n_ranks(self) -> int:
        return len(self.rank_nodes)

    def _wire_time(self, src: int, dst: int, nbytes: int) -> float:
        return self.cluster.interconnect.transfer_time(
            self.rank_nodes[src], self.rank_nodes[dst], nbytes
        )

    def _arrival(self, src: int, dst: int, context: str, delay: float) -> float:
        """Wire arrival time with the non-overtaking clamp applied."""
        t = self.env.now + delay
        key = (src, dst, context)
        prev = self._last_arrival.get(key, 0.0)
        if t < prev:
            t = prev
            if self._obs.enabled:
                self._obs.inc("mpi.clamp_activations")
        self._last_arrival[key] = t
        return t

    def _schedule_delivery(self, envelope: Envelope, at: float) -> None:
        # Always route through the event queue, even at zero wire time: a
        # synchronous deliver() here would let this envelope match ahead
        # of same-timestamp events that are already queued, breaking the
        # FIFO ordering the queue's sequence counter exists to guarantee.
        delay = at - self.env.now
        if delay < 0.0:  # pragma: no cover - _arrival never goes backwards
            delay = 0.0
        mailbox = self.mailboxes[envelope.dst]
        if self._obs.enabled:
            self._obs.span("mpi.wire", delay)
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _ev: mailbox.deliver(envelope))

    # -- send paths --------------------------------------------------------------

    def send_eager(self, src: int, dst: int, tag: int, context: str, payload: object, size: int) -> None:
        """Fire-and-forget small-message send; the sender does not block."""
        self.eager_sends += 1
        if self._obs.enabled:
            self._obs.inc("mpi.eager_sends")
            self._obs.inc("mpi.wire_bytes", size)
            self._obs.observe("mpi.msg_bytes", size, MSG_SIZE_EDGES)
        envelope = Envelope(src, dst, tag, context, payload, size, self.env.now)
        if self._trace.enabled:
            envelope.flow = self._trace.new_flow()
            self._trace.flow_start(
                src, 0, envelope.flow, "mpi.send", "mpi", self.env.now,
                args={"dst": dst, "tag": tag, "bytes": size,
                      "proto": "eager", "ctx": context},
            )
        arrival = self._arrival(src, dst, context, self._wire_time(src, dst, size))
        self._schedule_delivery(envelope, arrival)

    def send_rendezvous(self, src: int, dst: int, tag: int, context: str, payload: object, size: int) -> Event:
        """Large-message send: returns the handshake event.

        The envelope itself is the ready-to-send token: it is matched
        like any message, but its payload only "transfers" once the
        receive is posted.  The returned event triggers (with the match
        time) when the receiver has matched; the *caller* then charges
        the payload transfer time to complete the send.
        """
        self.rendezvous_sends += 1
        if self._obs.enabled:
            # 64 B of RTS control traffic now; the payload bytes are
            # committed to the wire as part of the same send.
            self._obs.inc("mpi.rendezvous_sends")
            self._obs.inc("mpi.wire_bytes", 64 + size)
            self._obs.observe("mpi.msg_bytes", size, MSG_SIZE_EDGES)
        handshake = Event(self.env)
        envelope = Envelope(
            src, dst, tag, context, payload, size, self.env.now,
            rendezvous=True, handshake=handshake,
        )
        if self._trace.enabled:
            envelope.flow = self._trace.new_flow()
            self._trace.flow_start(
                src, 0, envelope.flow, "mpi.send", "mpi", self.env.now,
                args={"dst": dst, "tag": tag, "bytes": size,
                      "proto": "rendezvous", "ctx": context},
            )
        # The RTS control message is small.
        arrival = self._arrival(src, dst, context, self._wire_time(src, dst, 64))
        self._schedule_delivery(envelope, arrival)
        return handshake

    def payload_transfer_time(self, src: int, dst: int, size: int) -> float:
        """Bulk-transfer time of a rendezvous payload."""
        return self._wire_time(src, dst, size)
