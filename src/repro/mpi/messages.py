"""Message envelopes and matching constants for the MPI simulator."""

from __future__ import annotations

from typing import Any, Optional

from ..simt import Event

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "Status"]

#: Wildcard source for receives (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for receives (MPI_ANY_TAG).
ANY_TAG = -1

#: Communication contexts: user point-to-point traffic vs. the internal
#: traffic of collective algorithms (separate match spaces, as the MPI
#: standard's communicator contexts guarantee).
P2P = "p2p"
COLL = "coll"


class Envelope:
    """One in-flight message."""

    __slots__ = (
        "src",
        "dst",
        "tag",
        "context",
        "payload",
        "size",
        "sent_at",
        "arrived_at",
        "rendezvous",
        "handshake",
        "flow",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        tag: int,
        context: str,
        payload: Any,
        size: int,
        sent_at: float,
        rendezvous: bool = False,
        handshake: Optional[Event] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.context = context
        self.payload = payload
        self.size = size
        self.sent_at = sent_at
        self.arrived_at: Optional[float] = None
        #: True for large messages using the rendezvous protocol; the
        #: envelope then acts as the ready-to-send token and ``handshake``
        #: is triggered when the matching receive is posted.
        self.rendezvous = rendezvous
        self.handshake = handshake
        #: Trace flow id linking this send to its delivery (None when
        #: causal tracing is disabled).
        self.flow: Optional[int] = None

    def matches(self, source: int, tag: int, context: str) -> bool:
        if context != self.context:
            return False
        if source != ANY_SOURCE and source != self.src:
            return False
        if tag != ANY_TAG and tag != self.tag:
            return False
        return True

    def __repr__(self) -> str:
        proto = "rndv" if self.rendezvous else "eager"
        return (
            f"<Envelope {self.src}->{self.dst} tag={self.tag} "
            f"ctx={self.context} {self.size}B {proto}>"
        )


class Status:
    """Completion status of a receive (MPI_Status analog)."""

    __slots__ = ("source", "tag", "size")

    def __init__(self, source: int, tag: int, size: int) -> None:
        self.source = source
        self.tag = tag
        self.size = size

    def __repr__(self) -> str:
        return f"<Status source={self.source} tag={self.tag} size={self.size}>"
