"""The Guide-style OpenMP runtime: fork/join over a persistent pool.

The Guide compiler transforms OpenMP directives into thread-based code
linked against the Guidetrace library (Section 3.1).  Like Guide, the
runtime keeps a *persistent* worker-thread pool: workers are created on
first use, pinned to cores of the process's node, and sleep on a work
queue between parallel regions.  :class:`OpenMPRuntime` plays that role
for one process:

* ``parallel(...)`` dispatches a region body to the pool, runs thread
  0's share on the master, and joins;
* region entry/exit is logged to VT per thread (Guidetrace events);
* all threads share the process's single :class:`ProcessImage`, so
  patching the image instruments every thread at once — the reason
  Umt98's instrumentation time is flat in Figure 9;
* the master task carries a ``thread_group`` so a blocking DPCL suspend
  stops every thread of the process before the shared image is patched
  (idle pool workers count as stopped: they are runtime-blocked and
  park before touching application code on wake).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Generator, List, Optional

from ..cluster import MachineSpec, Task
from ..program import ProgramContext
from ..simt import Channel, Environment, Latch
from .team import DynamicSchedule, GuidedSchedule, StaticSchedule, Team

__all__ = ["OpenMPRuntime", "RegionBody"]

#: A region body: body(tctx, team) -> generator, run once per thread.
RegionBody = Callable[[ProgramContext, Team], Generator]


class _Worker:
    """One pool thread: persistent task + context + work queue."""

    __slots__ = ("task", "pctx", "queue", "proc")

    def __init__(self, runtime: "OpenMPRuntime", index: int) -> None:
        master = runtime.master
        self.task = Task(
            runtime.env,
            master.task.node,
            f"{master.task.name}.t{index}",
            runtime.spec,
        )
        self.pctx = ProgramContext(
            runtime.env, self.task, master.image, runtime.spec, thread_id=index
        )
        self.pctx.mpi = master.mpi
        self.pctx.omp = runtime
        self.queue = Channel(runtime.env, name=f"{self.task.name}.work")
        self.proc = self.task.start(runtime._worker_loop(self), name=self.task.name)


class OpenMPRuntime:
    """Per-process OpenMP state, attached to the master pctx as ``pctx.omp``."""

    def __init__(self, master: ProgramContext, num_threads: int) -> None:
        if num_threads < 1:
            raise ValueError("need at least one thread")
        self.master = master
        self.env: Environment = master.env
        self.spec: MachineSpec = master.spec
        self.num_threads = num_threads
        self._region_ids = count(1)
        self._pool: List[_Worker] = []
        self._shut_down = False
        master.omp = self
        master.task.thread_group = self._thread_group

    def _thread_group(self) -> List[Task]:
        """All tasks of this process: master + pool workers."""
        return [self.master.task] + [w.task for w in self._pool]

    # -- the pool -------------------------------------------------------------------

    def _ensure_workers(self, n: int) -> None:
        """Grow the pool to at least ``n`` workers (thread ids 1..n)."""
        while len(self._pool) < n:
            self._pool.append(_Worker(self, len(self._pool) + 1))

    def _worker_loop(self, worker: _Worker) -> Generator:
        while True:
            item = yield from worker.task.blocked_wait(worker.queue.get())
            if item is None:  # shutdown
                return
            body, team, region_fid, results, latch = item
            tctx = worker.pctx
            self._log_region(tctx, region_fid, enter=True)
            results[tctx.thread_id] = yield from body(tctx, team)
            self._log_region(tctx, region_fid, enter=False)
            yield from tctx.task.flush()
            latch.count_down()

    def shutdown(self) -> None:
        """Retire the pool (end-of-process); idempotent."""
        if self._shut_down:
            return
        self._shut_down = True
        for worker in self._pool:
            worker.queue.put(None)

    # -- parallel regions ----------------------------------------------------------

    def parallel(
        self,
        body: RegionBody,
        num_threads: Optional[int] = None,
        name: str = "parallel",
    ) -> Generator:
        """Execute ``body`` on a team; returns the per-thread results.

        Called from the master's program; blocks (join) until every
        thread finished the region.
        """
        if self._shut_down:
            raise RuntimeError("OpenMP runtime already shut down")
        if self.env.active_process is not None and any(
            self.env.active_process is w.proc for w in self._pool
        ):
            raise RuntimeError(
                "nested parallel regions are not supported: parallel() "
                "must be called from the master thread (the Guide runtime "
                "serialised nested parallelism too)"
            )
        T = num_threads if num_threads is not None else self.num_threads
        if T < 1:
            raise ValueError("need at least one thread")
        master = self.master
        spec = self.spec
        team = Team(self.env, next(self._region_ids), T, spec)

        # Fork cost on the master; flush so workers start at master.now.
        master.task.charge(
            spec.omp_fork_base_cost + T * spec.omp_fork_per_thread_cost
        )
        yield from master.task.flush()

        region_fid = self._register_region(name)
        self._ensure_workers(T - 1)

        team.members.append(master)
        for worker in self._pool[: T - 1]:
            team.members.append(worker.pctx)

        results: List[Any] = [None] * T
        latch = Latch(self.env, T - 1)
        for worker in self._pool[: T - 1]:
            worker.queue.put((body, team, region_fid, results, latch))

        # Thread 0 runs on the master itself.
        self._log_region(master, region_fid, enter=True)
        results[0] = yield from body(master, team)
        self._log_region(master, region_fid, enter=False)
        yield from master.task.flush()

        if T > 1:
            yield from master.task.blocked_wait(latch.wait())
        # Join: implicit barrier cost on the master.
        master.task.charge(spec.omp_barrier_cost)
        yield from master.task.checkpoint()
        return results

    def parallel_for(
        self,
        n: int,
        body: Callable[[ProgramContext, int, int], Generator],
        schedule: Any = None,
        num_threads: Optional[int] = None,
        name: str = "parallel_for",
    ) -> Generator:
        """``#pragma omp parallel for``: body(tctx, start, stop) per chunk."""
        schedule = schedule if schedule is not None else StaticSchedule()

        def region(tctx: ProgramContext, team: Team) -> Generator:
            if isinstance(schedule, StaticSchedule):
                for start, stop in team.for_static(tctx, n, schedule.chunk):
                    yield from body(tctx, start, stop)
            elif isinstance(schedule, DynamicSchedule):
                loop_id = self._shared_loop(team)
                while True:
                    chunk = yield from team.next_dynamic_chunk(tctx, loop_id, n, schedule.chunk)
                    if chunk is None:
                        break
                    yield from body(tctx, chunk[0], chunk[1])
            elif isinstance(schedule, GuidedSchedule):
                loop_id = self._shared_loop(team)
                while True:
                    remaining = n - team._loop_counters[loop_id]
                    if remaining <= 0:
                        break
                    size = max(schedule.min_chunk, remaining // (2 * team.size))
                    chunk = yield from team.next_dynamic_chunk(tctx, loop_id, n, size)
                    if chunk is None:
                        break
                    yield from body(tctx, chunk[0], chunk[1])
            else:
                raise TypeError(f"unknown schedule {schedule!r}")
            yield from team.barrier(tctx)

        return (yield from self.parallel(region, num_threads, name=name))

    def _shared_loop(self, team: Team) -> int:
        """The single worksharing loop of a parallel_for region,
        allocated by whichever thread arrives first (cooperative
        scheduling makes first-arrival deterministic)."""
        loop_id = getattr(team, "_active_loop", None)
        if loop_id is None:
            loop_id = team.new_dynamic_loop()
            team._active_loop = loop_id
        return loop_id

    # -- tracing hooks ---------------------------------------------------------------

    def _register_region(self, name: str) -> Optional[int]:
        vt = self.master.image.vt
        if vt is None or not vt.initialized:
            return None
        return vt.funcdef(self.master.task, f"$omp${name}")

    def _log_region(self, tctx: ProgramContext, fid: Optional[int], enter: bool) -> None:
        vt = tctx.image.vt
        if vt is None or fid is None or not vt.is_fid_active(fid):
            return
        task = tctx.task
        task.charge(self.spec.vt_active_event_cost)
        buf = vt.buffer_for(task, tctx.thread_id)
        if enter:
            buf.enter(fid, task.now)
        else:
            buf.leave(fid, task.now)

    def __repr__(self) -> str:
        return f"<OpenMPRuntime threads={self.num_threads} pool={len(self._pool)}>"
