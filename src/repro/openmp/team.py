"""OpenMP thread teams: barriers, worksharing, critical, reductions.

A :class:`Team` exists for the duration of one parallel region.  Thread 0
is the forking master's own task; workers get fresh tasks bound to cores
of the same node.  All synchronisation is cooperative (simulation
processes), with per-operation costs from the machine spec.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..cluster import MachineSpec
from ..simt import Environment, Event
from ..program import ProgramContext

__all__ = ["Team", "StaticSchedule", "DynamicSchedule", "GuidedSchedule"]


class Team:
    """One parallel region's thread team."""

    def __init__(self, env: Environment, region_id: int, size: int, spec: MachineSpec) -> None:
        if size < 1:
            raise ValueError("team size must be >= 1")
        self.env = env
        self.region_id = region_id
        self.size = size
        self.spec = spec
        #: Thread contexts, filled in by the runtime at fork.
        self.members: List[ProgramContext] = []
        # Barrier state (sense-reversing).
        self._barrier_count = 0
        self._barrier_event = Event(env)
        # Critical sections, keyed by name.
        self._locks: Dict[str, bool] = {}
        self._lock_waiters: Dict[str, List[Event]] = {}
        # Reduction scratch.
        self._reduce_slots: Dict[int, List[Any]] = {}
        # Shared index for dynamic scheduling, per loop id.
        self._loop_counters: Dict[int, int] = {}
        self._loop_seq = 0
        # single-construct bookkeeping: per-thread site counters and the
        # first-arriver ownership per site.
        self._single_counters: Dict[int, int] = {}
        self._single_owner: Dict[int, int] = {}

    # -- barrier --------------------------------------------------------------

    def barrier(self, tctx: ProgramContext) -> Generator:
        """Team-wide barrier; every member must call it."""
        task = tctx.task
        task.charge(self.spec.omp_barrier_cost)
        yield from task.flush()
        self._barrier_count += 1
        if self._barrier_count == self.size:
            self._barrier_count = 0
            event, self._barrier_event = self._barrier_event, Event(self.env)
            event.succeed()
            yield from task.checkpoint()
        else:
            yield from task.blocked_wait(self._barrier_event)

    # -- critical sections -------------------------------------------------------

    def critical(self, tctx: ProgramContext, name: str = "") -> Generator:
        """Enter a named critical section; pair with :meth:`end_critical`."""
        task = tctx.task
        task.charge(self.spec.omp_lock_cost)
        yield from task.flush()
        while self._locks.get(name, False):
            waiter = Event(self.env)
            self._lock_waiters.setdefault(name, []).append(waiter)
            yield from task.blocked_wait(waiter)
        self._locks[name] = True
        yield from task.checkpoint()

    def end_critical(self, tctx: ProgramContext, name: str = "") -> Generator:
        if not self._locks.get(name, False):
            raise RuntimeError(f"end_critical({name!r}) without critical()")
        tctx.task.charge(self.spec.omp_lock_cost)
        yield from tctx.task.flush()
        self._locks[name] = False
        waiters = self._lock_waiters.get(name)
        if waiters:
            waiters.pop(0).succeed()

    # -- reductions ----------------------------------------------------------------

    def reduce(self, tctx: ProgramContext, value: Any, op: Callable[[Any, Any], Any]) -> Generator:
        """All-threads reduction; every member receives the result."""
        rid = self._loop_seq  # reuse sequence space for uniqueness
        slot = self._reduce_slots.setdefault(rid, [None] * self.size)
        slot[tctx.thread_id] = (True, value)
        yield from self.barrier(tctx)
        parts = self._reduce_slots[rid]
        result = None
        first = True
        for item in parts:
            assert item is not None, "reduce called by only part of the team"
            _flag, v = item
            result = v if first else op(result, v)
            first = False
        yield from self.barrier(tctx)
        if tctx.thread_id == 0:
            self._reduce_slots.pop(rid, None)
            self._loop_seq += 1
        yield from self.barrier(tctx)
        return result

    # -- master / single constructs ---------------------------------------------

    def is_master(self, tctx: ProgramContext) -> bool:
        """``#pragma omp master``: true only on thread 0 (no sync)."""
        return tctx.thread_id == 0

    def single(self, tctx: ProgramContext) -> bool:
        """``#pragma omp single nowait``: true on exactly one thread.

        Threads must reach the single sites of a region in the same
        order; the first thread to arrive at each site owns it.  No
        implied barrier — call :meth:`barrier` afterwards for the
        standard (non-nowait) form.
        """
        site = self._single_counters.get(tctx.thread_id, 0)
        self._single_counters[tctx.thread_id] = site + 1
        owner = self._single_owner.get(site)
        if owner is None:
            self._single_owner[site] = tctx.thread_id
            return True
        return owner == tctx.thread_id

    # -- worksharing -----------------------------------------------------------------

    def for_static(self, tctx: ProgramContext, n: int, chunk: Optional[int] = None) -> List[Tuple[int, int]]:
        """Static schedule: this thread's (start, stop) chunks for n iters."""
        if n < 0:
            raise ValueError("negative iteration count")
        tid, T = tctx.thread_id, self.size
        if chunk is None:
            # One contiguous block per thread.
            base, extra = divmod(n, T)
            start = tid * base + min(tid, extra)
            stop = start + base + (1 if tid < extra else 0)
            return [(start, stop)] if stop > start else []
        chunks = []
        pos = tid * chunk
        while pos < n:
            chunks.append((pos, min(pos + chunk, n)))
            pos += T * chunk
        return chunks

    def new_dynamic_loop(self) -> int:
        """Allocate a loop id for a dynamic/guided schedule."""
        self._loop_seq += 1
        loop_id = self._loop_seq
        self._loop_counters[loop_id] = 0
        return loop_id

    def next_dynamic_chunk(self, tctx: ProgramContext, loop_id: int, n: int, chunk: int) -> Generator:
        """Grab the next chunk of a dynamic loop, or None when exhausted.

        Generator: the caller's accrued compute is flushed *before* the
        shared counter is read, so chunks are claimed in simulated-time
        order — without this, cooperative scheduling would let one
        thread drain the whole loop before the others ever ran.
        """
        tctx.task.charge(self.spec.omp_chunk_cost)
        yield from tctx.task.flush()
        pos = self._loop_counters[loop_id]
        if pos >= n:
            return None
        stop = min(pos + chunk, n)
        self._loop_counters[loop_id] = stop
        return (pos, stop)

    def __repr__(self) -> str:
        return f"<Team region={self.region_id} size={self.size}>"


class StaticSchedule:
    """schedule(static[, chunk]) marker for parallel_for."""

    def __init__(self, chunk: Optional[int] = None) -> None:
        self.chunk = chunk


class DynamicSchedule:
    """schedule(dynamic, chunk) marker for parallel_for."""

    def __init__(self, chunk: int = 1) -> None:
        if chunk < 1:
            raise ValueError("dynamic chunk must be >= 1")
        self.chunk = chunk


class GuidedSchedule:
    """schedule(guided) — chunk sizes decay geometrically."""

    def __init__(self, min_chunk: int = 1) -> None:
        if min_chunk < 1:
            raise ValueError("guided min_chunk must be >= 1")
        self.min_chunk = min_chunk
