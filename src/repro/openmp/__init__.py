"""repro.openmp — the Guide-style OpenMP runtime analog.

Fork/join parallel regions over simulated threads (tasks on one SMP
node's cores), worksharing schedules (static/dynamic/guided), barriers,
critical sections, reductions, and Guidetrace-style per-thread region
logging into VT.
"""

from .runtime import OpenMPRuntime, RegionBody
from .team import DynamicSchedule, GuidedSchedule, StaticSchedule, Team

__all__ = [
    "OpenMPRuntime",
    "RegionBody",
    "Team",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
]
