"""repro — Dynamic Instrumentation of Large-Scale MPI and OpenMP Applications.

A complete Python reproduction of Thiffault, Voss, Healey & Kim (IPPS
2003): the dynprof dynamic instrumenter, the DPCL daemon system, the
Vampirtrace library with dynamic control of instrumentation, Guide-style
OpenMP and a full MPI runtime — all running over a deterministic
discrete-event simulation of the paper's Power3 and IA32 testbeds —
plus analogs of the four ASCI kernel benchmarks and a harness that
regenerates every table and figure of the paper.

Typical entry points::

    from repro import Environment, Cluster, POWER3_SP, MpiJob, DynProf
    from repro.apps import SMG98
    from repro.dynprof import run_policy
    from repro.experiments import run_fig7

See README.md for a walkthrough and DESIGN.md for the architecture.
"""

from .cluster import (
    IA32_LINUX,
    POWER3_SP,
    Cluster,
    MachineSpec,
    Node,
    Placement,
    Task,
    get_machine,
)
from .dpcl import DaemonHost, DpclClient
from .dynprof import (
    POLICIES,
    DynamicControlMonitor,
    DynProf,
    PolicyResult,
    run_policy,
)
from . import obs
from .jobs import MpiJob, OmpJob, install_omp_symbols
from .mpi import ANY_SOURCE, ANY_TAG, Communicator, MpiWorld, install_mpi_symbols
from .obs import MetricsRegistry
from .openmp import DynamicSchedule, GuidedSchedule, OpenMPRuntime, StaticSchedule
from .program import ExecutableImage, ProcessImage, ProgramContext
from .runner import (
    PointResult,
    ResultCache,
    SweepError,
    SweepPoint,
    SweepRunner,
    SweepTelemetry,
    point_key,
)
from .simt import Environment, RandomStreams
from .vt import TraceFile, VTConfig, VTProcessState, vt_confsync

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # simulation
    "Environment",
    "RandomStreams",
    # machine
    "Cluster",
    "MachineSpec",
    "POWER3_SP",
    "IA32_LINUX",
    "get_machine",
    "Node",
    "Placement",
    "Task",
    # program model
    "ExecutableImage",
    "ProcessImage",
    "ProgramContext",
    # runtimes
    "MpiWorld",
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
    "install_mpi_symbols",
    "OpenMPRuntime",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    # instrumentation stack
    "VTConfig",
    "VTProcessState",
    "TraceFile",
    "vt_confsync",
    "DpclClient",
    "DaemonHost",
    # the paper's tools
    "DynProf",
    "DynamicControlMonitor",
    "POLICIES",
    "PolicyResult",
    "run_policy",
    # job assembly
    "MpiJob",
    "OmpJob",
    "install_omp_symbols",
    # observability
    "obs",
    "MetricsRegistry",
    # sweep engine
    "SweepRunner",
    "SweepPoint",
    "SweepError",
    "SweepTelemetry",
    "PointResult",
    "ResultCache",
    "point_key",
]
