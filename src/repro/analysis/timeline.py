"""Time-line data model — the headless analog of VGV's main display.

VGV shows MPI processes and OpenMP threads as horizontal bars with
function intervals, message lines, and (with dynamic instrumentation)
regions of inactivity where the target was suspended.  This module
rebuilds that data model from a :class:`~repro.vt.buffer.TraceFile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..vt import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
    TraceFile,
)

__all__ = ["Interval", "Message", "InactivityPeriod", "TimelineBar", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One function-execution interval on a bar."""

    name: str
    start: float
    end: float
    depth: int
    #: Number of aggregated back-to-back executions this stands for.
    count: int = 1
    #: Actual time spent inside the function.  Equal to the span for a
    #: single execution; for an aggregated batch it is count * duration
    #: of one execution, which is less than the span (the span includes
    #: the inter-call gaps).
    busy: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def busy_time(self) -> float:
        return self.duration if self.busy is None else self.busy


@dataclass(frozen=True)
class Message:
    """One message event on a bar (send or receive side)."""

    kind: str
    peer: int
    tag: int
    size: int
    time: float


@dataclass(frozen=True)
class InactivityPeriod:
    """A suspension interval ("region of inactivity", Section 4.2)."""

    start: float
    end: float
    reason: str = "suspended"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TimelineBar:
    """One (process, thread) horizontal bar."""

    process: int
    thread: int
    intervals: List[Interval] = field(default_factory=list)
    messages: List[Message] = field(default_factory=list)
    collectives: List[Tuple[str, float, float]] = field(default_factory=list)
    inactivity: List[InactivityPeriod] = field(default_factory=list)
    unmatched_enters: int = 0

    @property
    def span(self) -> Tuple[float, float]:
        times = (
            [iv.start for iv in self.intervals]
            + [iv.end for iv in self.intervals]
            + [m.time for m in self.messages]
            + [t for _op, t, _e in self.collectives]
            + [p.end for p in self.inactivity]
        )
        if not times:
            return (0.0, 0.0)
        return (min(times), max(times))


class Timeline:
    """The assembled time-line of one application run."""

    def __init__(self, trace: TraceFile, expand_batches_up_to: int = 64) -> None:
        self.trace = trace
        self.expand_limit = expand_batches_up_to
        self.bars: Dict[Tuple[int, int], TimelineBar] = {}
        for (process, thread), buf in sorted(trace.buffers.items()):
            self.bars[(process, thread)] = self._build_bar(process, thread, buf.records)

    def _build_bar(self, process: int, thread: int, records) -> TimelineBar:
        bar = TimelineBar(process, thread)
        stack: List[Tuple[int, float]] = []  # (fid, start)
        for rec in records:
            if isinstance(rec, EnterRecord):
                stack.append((rec.fid, rec.t))
            elif isinstance(rec, LeaveRecord):
                depth = None
                # Pop to the matching enter (tolerates skew).
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i][0] == rec.fid:
                        _fid, start = stack.pop(i)
                        depth = i
                        bar.intervals.append(Interval(
                            self.trace.function_name(rec.fid), start, rec.t, depth,
                        ))
                        break
            elif isinstance(rec, BatchPairRecord):
                name = self.trace.function_name(rec.fid)
                depth = len(stack)
                if rec.n <= self.expand_limit:
                    for k in range(rec.n):
                        s = rec.t_first + k * rec.period
                        bar.intervals.append(Interval(name, s, s + rec.duration, depth))
                else:
                    bar.intervals.append(Interval(
                        name, rec.t_first, rec.t_last_leave, depth,
                        count=rec.n, busy=rec.n * rec.duration,
                    ))
            elif isinstance(rec, MsgRecord):
                bar.messages.append(Message(rec.kind, rec.peer, rec.tag, rec.size, rec.t))
            elif isinstance(rec, CollectiveRecord):
                bar.collectives.append((rec.op, rec.t_start, rec.t_end))
            elif isinstance(rec, MarkerRecord):
                if rec.name == "suspended":
                    bar.inactivity.append(InactivityPeriod(rec.t_start, rec.t_end))
        bar.unmatched_enters = len(stack)
        bar.intervals.sort(key=lambda iv: (iv.start, -iv.duration))
        return bar

    # -- queries ----------------------------------------------------------------

    @property
    def n_bars(self) -> int:
        return len(self.bars)

    def bar(self, process: int, thread: int = 0) -> TimelineBar:
        return self.bars[(process, thread)]

    @property
    def span(self) -> Tuple[float, float]:
        starts, ends = [], []
        for bar in self.bars.values():
            s, e = bar.span
            if e > s:
                starts.append(s)
                ends.append(e)
        if not starts:
            return (0.0, 0.0)
        return (min(starts), max(ends))

    def total_inactivity(self) -> float:
        return sum(
            p.duration for bar in self.bars.values() for p in bar.inactivity
        )

    def busy_time_of(self, process: int, thread: int = 0) -> float:
        """Sum of top-level (depth 0) interval durations on a bar."""
        bar = self.bar(process, thread)
        return sum(
            iv.duration for iv in bar.intervals if iv.depth == 0
        )

    def __repr__(self) -> str:
        s, e = self.span
        return f"<Timeline {self.n_bars} bars span=[{s:.3f}, {e:.3f}]>"
