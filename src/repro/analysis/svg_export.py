"""SVG export of the time-line display — a visual VGV stand-in.

Renders a :class:`~repro.analysis.timeline.Timeline` as a standalone SVG
(optionally wrapped in an HTML page): one lane per (process, thread),
coloured function intervals with hover tool-tips, collective spans,
message lines from sender to matched receiver, and hatched inactivity
regions where the target was suspended — the paper's Figure 4, headless.
"""

from __future__ import annotations

import hashlib
import html
from typing import Dict, List, Optional, Tuple

from .timeline import Timeline

__all__ = ["timeline_to_svg", "save_timeline_html"]

_LANE_H = 22
_LANE_GAP = 8
_LABEL_W = 90
_AXIS_H = 28


def _color_of(name: str) -> str:
    """Stable, readable colour per function name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    hue = digest[0] * 360 // 256
    sat = 45 + digest[1] % 30
    light = 42 + digest[2] % 18
    return f"hsl({hue},{sat}%,{light}%)"


def _match_messages(timeline: Timeline) -> List[Tuple[int, float, int, float]]:
    """Pair sends with receives: (src, t_send, dst, t_recv) lines.

    Matching is by (src, dst, tag) in time order — the same
    non-overtaking order the transport guarantees.
    """
    sends: Dict[Tuple[int, int, int], List[float]] = {}
    recvs: Dict[Tuple[int, int, int], List[float]] = {}
    for (process, _thread), bar in timeline.bars.items():
        for msg in bar.messages:
            if msg.kind == "send":
                sends.setdefault((process, msg.peer, msg.tag), []).append(msg.time)
            else:
                recvs.setdefault((msg.peer, process, msg.tag), []).append(msg.time)
    lines = []
    for key, send_times in sends.items():
        recv_times = recvs.get(key, [])
        src, dst, _tag = key
        for t_send, t_recv in zip(sorted(send_times), sorted(recv_times)):
            lines.append((src, t_send, dst, t_recv))
    return lines


def timeline_to_svg(
    timeline: Timeline,
    width: int = 1200,
    title: Optional[str] = None,
    draw_messages: bool = True,
    max_message_lines: int = 2000,
) -> str:
    """Render the timeline as a standalone SVG document string."""
    t0, t1 = timeline.span
    span = max(t1 - t0, 1e-12)
    bars = sorted(timeline.bars.items())
    lane_y: Dict[Tuple[int, int], int] = {}
    for i, (key, _bar) in enumerate(bars):
        lane_y[key] = _AXIS_H + i * (_LANE_H + _LANE_GAP)
    height = _AXIS_H + max(1, len(bars)) * (_LANE_H + _LANE_GAP) + 10
    plot_w = width - _LABEL_W - 10

    def x_of(t: float) -> float:
        return _LABEL_W + (t - t0) / span * plot_w

    parts: List[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">'
    )
    parts.append(
        '<defs><pattern id="hatch" width="6" height="6" '
        'patternUnits="userSpaceOnUse" patternTransform="rotate(45)">'
        '<rect width="6" height="6" fill="#eee"/>'
        '<line x1="0" y1="0" x2="0" y2="6" stroke="#999" stroke-width="2"/>'
        "</pattern></defs>"
    )
    if title:
        parts.append(
            f'<text x="{_LABEL_W}" y="14" font-size="13">{html.escape(title)}</text>'
        )
    # Axis ticks.
    for k in range(6):
        t = t0 + span * k / 5
        x = x_of(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_AXIS_H - 4}" x2="{x:.1f}" '
            f'y2="{height - 6}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_AXIS_H - 8}" text-anchor="middle" '
            f'fill="#555">{t:.2f}s</text>'
        )

    # Lanes.
    for key, bar in bars:
        y = lane_y[key]
        process, thread = key
        label = f"p{process}" + (f".t{thread}" if thread else "")
        parts.append(
            f'<text x="4" y="{y + _LANE_H - 7}" fill="#333">{html.escape(label)}</text>'
        )
        parts.append(
            f'<rect x="{_LABEL_W}" y="{y}" width="{plot_w}" height="{_LANE_H}" '
            f'fill="#fafafa" stroke="#ccc"/>'
        )
        for op, s, e in bar.collectives:
            parts.append(
                f'<rect x="{x_of(s):.1f}" y="{y + 2}" '
                f'width="{max(1.0, x_of(e) - x_of(s)):.1f}" height="{_LANE_H - 4}" '
                f'fill="#c9a227" opacity="0.6"><title>{html.escape(op)} '
                f"[{s:.4f}, {e:.4f}]</title></rect>"
            )
        for iv in bar.intervals:
            w = max(0.75, x_of(iv.end) - x_of(iv.start))
            inset = min(8, 2 * iv.depth)
            note = f"{iv.name} [{iv.start:.4f}, {iv.end:.4f}]"
            if iv.count > 1:
                note += f" x{iv.count}"
            parts.append(
                f'<rect x="{x_of(iv.start):.1f}" y="{y + 1 + inset / 2:.1f}" '
                f'width="{w:.1f}" height="{_LANE_H - 2 - inset:.1f}" '
                f'fill="{_color_of(iv.name)}">'
                f"<title>{html.escape(note)}</title></rect>"
            )
        for pause in bar.inactivity:
            w = max(1.0, x_of(pause.end) - x_of(pause.start))
            parts.append(
                f'<rect x="{x_of(pause.start):.1f}" y="{y}" width="{w:.1f}" '
                f'height="{_LANE_H}" fill="url(#hatch)">'
                f"<title>suspended [{pause.start:.4f}, {pause.end:.4f}]</title></rect>"
            )

    # Message lines (sender lane bottom -> receiver lane top).
    if draw_messages:
        lanes_of_process: Dict[int, int] = {}
        for (process, thread), y in lane_y.items():
            if thread == 0:
                lanes_of_process[process] = y
        drawn = 0
        for src, t_send, dst, t_recv in _match_messages(timeline):
            if drawn >= max_message_lines:
                break
            ys = lanes_of_process.get(src)
            yd = lanes_of_process.get(dst)
            if ys is None or yd is None:
                continue
            parts.append(
                f'<line x1="{x_of(t_send):.1f}" y1="{ys + _LANE_H / 2:.1f}" '
                f'x2="{x_of(t_recv):.1f}" y2="{yd + _LANE_H / 2:.1f}" '
                f'stroke="#333" stroke-width="0.6" opacity="0.45"/>'
            )
            drawn += 1

    parts.append("</svg>")
    return "".join(parts)


def save_timeline_html(
    timeline: Timeline,
    path: str,
    title: str = "timeline",
    width: int = 1200,
) -> None:
    """Write a standalone HTML page embedding the SVG timeline."""
    svg = timeline_to_svg(timeline, width=width, title=title)
    legend_names: List[str] = []
    for bar in timeline.bars.values():
        for iv in bar.intervals:
            if iv.name not in legend_names:
                legend_names.append(iv.name)
    legend = "".join(
        f'<span style="margin-right:14px">'
        f'<span style="display:inline-block;width:12px;height:12px;'
        f'background:{_color_of(n)};margin-right:4px"></span>{html.escape(n)}</span>'
        for n in legend_names[:24]
    )
    doc = (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title></head>"
        "<body style='font-family:monospace'>"
        f"<h3>{html.escape(title)}</h3>{svg}"
        f"<p>{legend}</p>"
        "<p>hatched = suspended (dynamic instrumentation inactivity); "
        "gold = MPI collectives; thin lines = point-to-point messages.</p>"
        "</body></html>"
    )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(doc)
