"""Message statistics — VGV's communication-matrix view.

Aggregates the MPI message records of a trace into per-rank and
rank-pair statistics: counts, bytes, and the send/receive balance.
VGV presents these as its "message statistics" displays; here they are
queryable objects plus a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..vt import MsgRecord, TraceFile

__all__ = ["MessageStats", "render_message_matrix"]


@dataclass
class _PairStats:
    count: int = 0
    bytes: int = 0


class MessageStats:
    """Communication statistics of one trace."""

    def __init__(self, trace: TraceFile) -> None:
        self.trace = trace
        #: (src, dst) -> stats, built from the senders' records.
        self.pairs: Dict[Tuple[int, int], _PairStats] = {}
        #: per-rank (sent_count, sent_bytes, recv_count, recv_bytes).
        self.per_rank: Dict[int, List[int]] = {}
        self._build()

    def _build(self) -> None:
        for process, _thread, rec in self.trace.all_records():
            if not isinstance(rec, MsgRecord):
                continue
            rank_row = self.per_rank.setdefault(process, [0, 0, 0, 0])
            if rec.kind == "send":
                key = (process, rec.peer)
                pair = self.pairs.get(key)
                if pair is None:
                    pair = self.pairs[key] = _PairStats()
                pair.count += 1
                pair.bytes += rec.size
                rank_row[0] += 1
                rank_row[1] += rec.size
            else:
                rank_row[2] += 1
                rank_row[3] += rec.size

    # -- queries --------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        return sum(p.count for p in self.pairs.values())

    @property
    def total_bytes(self) -> int:
        return sum(p.bytes for p in self.pairs.values())

    def between(self, src: int, dst: int) -> Tuple[int, int]:
        """(count, bytes) sent from src to dst."""
        pair = self.pairs.get((src, dst))
        return (pair.count, pair.bytes) if pair is not None else (0, 0)

    def sent_by(self, rank: int) -> Tuple[int, int]:
        row = self.per_rank.get(rank, [0, 0, 0, 0])
        return (row[0], row[1])

    def received_by(self, rank: int) -> Tuple[int, int]:
        row = self.per_rank.get(rank, [0, 0, 0, 0])
        return (row[2], row[3])

    def is_balanced(self) -> bool:
        """Every sent message was received (trace-level conservation).

        Holds for completed runs; a truncated trace (mid-run snapshot)
        may legitimately be unbalanced by the in-flight messages.
        """
        sent = sum(r[0] for r in self.per_rank.values())
        received = sum(r[2] for r in self.per_rank.values())
        return sent == received

    def heaviest_pairs(self, n: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        """Top-n (src, dst) pairs by bytes."""
        return sorted(
            ((key, p.bytes) for key, p in self.pairs.items()),
            key=lambda item: -item[1],
        )[:n]

    def __repr__(self) -> str:
        return (
            f"<MessageStats {self.total_messages} msgs, "
            f"{self.total_bytes / 1e6:.2f} MB over {len(self.pairs)} pairs>"
        )


def render_message_matrix(stats: MessageStats, max_ranks: int = 16) -> str:
    """ASCII src x dst byte matrix (KB), VGV message-statistics style."""
    ranks = sorted(stats.per_rank)
    if not ranks:
        return "(no message records)\n"
    shown = ranks[:max_ranks]
    lines = [
        f"message matrix (KB sent), {stats.total_messages} messages / "
        f"{stats.total_bytes / 1e6:.2f} MB total"
    ]
    header = "src\\dst " + "".join(f"{r:>8d}" for r in shown)
    lines.append(header)
    for src in shown:
        cells = []
        for dst in shown:
            _c, b = stats.between(src, dst)
            cells.append(f"{b / 1024:>8.1f}" if b else f"{'.':>8s}")
        lines.append(f"{src:>7d} " + "".join(cells))
    if len(ranks) > max_ranks:
        lines.append(f"({len(ranks) - max_ranks} more ranks not shown)")
    return "\n".join(lines) + "\n"
