"""Text rendering of timelines, profiles, and trace-size reports.

The paper's VGV screenshots (Figure 4) become ASCII here: one lane per
process/thread, glyphs for computation / MPI / inactivity, plus a
GuideView-style profile table and the trace-volume report that motivates
the whole exercise ("2 megabytes per second ... impractical for all but
the shortest programs").
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..vt import TraceFile
from .profileview import ProfileView
from .timeline import Timeline

__all__ = [
    "render_timeline",
    "render_profile",
    "render_trace_report",
    "render_obs_report",
    "render_causal_trace_report",
]


def render_timeline(timeline: Timeline, width: int = 100) -> str:
    """ASCII time-line: '#' computation, 'm' message events, '.' idle,
    ' ' (blank) suspension inactivity."""
    t0, t1 = timeline.span
    if t1 <= t0:
        return "(empty timeline)\n"
    span = t1 - t0

    def column(t: float) -> int:
        return min(width - 1, max(0, int((t - t0) / span * width)))

    lines = [f"timeline: {t0:.3f}s .. {t1:.3f}s  ({span:.3f}s, {width} cols)"]
    for (process, thread), bar in sorted(timeline.bars.items()):
        lane = ["."] * width
        for iv in bar.intervals:
            for c in range(column(iv.start), column(iv.end) + 1):
                lane[c] = "#"
        for op, s, e in bar.collectives:
            for c in range(column(s), column(e) + 1):
                lane[c] = "C"
        for msg in bar.messages:
            lane[column(msg.time)] = "m"
        for pause in bar.inactivity:
            for c in range(column(pause.start), column(pause.end) + 1):
                lane[c] = " "
        label = f"p{process}" + (f".t{thread}" if thread else "")
        lines.append(f"{label:>8s} |{''.join(lane)}|")
    lines.append("legend: '#' function  'C' collective  'm' message  ' ' suspended  '.' untraced")
    return "\n".join(lines) + "\n"


def render_profile(profile: ProfileView, top: int = 20) -> str:
    """GuideView-style per-function table."""
    rows = profile.top(top)
    total = profile.total_exclusive
    lines = [
        f"{'function':<36s} {'calls':>10s} {'incl(s)':>10s} {'excl(s)':>10s} {'excl%':>7s}",
        "-" * 78,
    ]
    for p in rows:
        pct = 100.0 * p.exclusive / total if total > 0 else 0.0
        lines.append(
            f"{p.name:<36.36s} {p.count:>10d} {p.inclusive:>10.4f} "
            f"{p.exclusive:>10.4f} {pct:>6.2f}%"
        )
    if profile.exclude_inactivity:
        lines.append("(suspension periods excluded from aggregate times)")
    return "\n".join(lines) + "\n"


def render_trace_report(trace: TraceFile, wall_time: Optional[float] = None) -> str:
    """Trace-volume report: records, bytes, and the per-process data rate."""
    lines = [
        f"trace of {trace.app_name}: {trace.n_processes} processes, "
        f"{trace.n_threads} threads",
        f"  raw records : {trace.raw_record_count:,}",
        f"  size        : {trace.size_bytes / 1e6:.2f} MB "
        f"({trace.record_bytes} B/record)",
    ]
    if wall_time and wall_time > 0 and trace.n_processes > 0:
        rate = trace.size_bytes / wall_time / trace.n_processes / 1e6
        lines.append(
            f"  data rate   : {rate:.2f} MB/s per process over {wall_time:.1f}s "
            f"(the paper cites ~2 MB/s as already impractical)"
        )
    return "\n".join(lines) + "\n"


def _fmt_number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.6g}"
    return f"{int(value):,}"


def render_obs_report(snapshot: Dict[str, Any]) -> str:
    """Metrics section for a :meth:`repro.obs.MetricsRegistry.snapshot`.

    Counters and gauges become aligned name/value rows; spans show
    count / total / mean / max of their simulated durations; histograms
    collapse to count / total plus the occupied buckets.
    """
    lines = ["simulator metrics (repro.obs)"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    spans = snapshot.get("spans", {})
    histograms = snapshot.get("histograms", {})
    if not (counters or gauges or spans or histograms):
        lines.append("  (no metrics collected)")
        return "\n".join(lines) + "\n"
    for name in sorted(counters):
        lines.append(f"  {name:<28s} {_fmt_number(counters[name]):>14s}")
    for name in sorted(gauges):
        lines.append(f"  {name:<28s} {_fmt_number(gauges[name]):>14s}  (high water)")
    for name in sorted(spans):
        s = spans[name]
        mean = s["total"] / s["count"] if s["count"] else 0.0
        lines.append(
            f"  {name:<28s} {s['count']:>10,d} spans  "
            f"total {s['total']:.6f}s  mean {mean:.9f}s  max {s['max']:.9f}s"
        )
    for name in sorted(histograms):
        h = histograms[name]
        edges = h["edges"]
        occupied = [
            f"<={_fmt_number(edges[i])}: {c:,}" if i < len(edges) else f">{_fmt_number(edges[-1])}: {c:,}"
            for i, c in enumerate(h["counts"])
            if c
        ]
        lines.append(
            f"  {name:<28s} {h['count']:>10,d} samples  "
            f"[{', '.join(occupied) if occupied else 'empty'}]"
        )
    return "\n".join(lines) + "\n"


def render_causal_trace_report(doc: Dict[str, Any],
                               elapsed: Optional[float] = None) -> str:
    """Report section for a :meth:`repro.obs.trace.Tracer.snapshot`
    document: per-track utilization, the critical path through spans and
    causal flow edges, and the perturbation-attribution breakdown.

    Thin wrapper over :func:`repro.obs.analysis.render_trace_summary`
    so report consumers get every section from one module.
    """
    from ..obs.analysis import render_trace_summary

    return render_trace_summary(doc, elapsed=elapsed)
