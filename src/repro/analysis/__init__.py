"""repro.analysis — postmortem trace analysis (the headless VGV).

Rebuilds the VGV data model from trace files: the time-line display
(process/thread bars, function intervals, messages, inactivity), the
GuideView-style per-function profile (with optional exclusion of
suspension periods, Section 5.1), and trace-volume reports.
"""

from .msgstats import MessageStats, render_message_matrix
from .profileview import FunctionProfile, ProfileView
from .report import (
    render_causal_trace_report,
    render_obs_report,
    render_profile,
    render_timeline,
    render_trace_report,
)
from .svg_export import save_timeline_html, timeline_to_svg
from .timeline import (
    InactivityPeriod,
    Interval,
    Message,
    Timeline,
    TimelineBar,
)

__all__ = [
    "Timeline",
    "TimelineBar",
    "Interval",
    "Message",
    "InactivityPeriod",
    "ProfileView",
    "FunctionProfile",
    "render_timeline",
    "render_profile",
    "render_trace_report",
    "render_obs_report",
    "render_causal_trace_report",
    "MessageStats",
    "render_message_matrix",
    "timeline_to_svg",
    "save_timeline_html",
]
