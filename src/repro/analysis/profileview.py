"""Aggregate per-function profiles — the GuideView-style summary.

Builds inclusive/exclusive time and call counts per function from a
trace, across all processes and threads.  Implements the Section 5.1
requirement for hybrid tools: suspension ("inactivity") periods can be
*excluded* so that probe-insertion stops do not pollute the aggregate
runtime of the functions they interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..vt import TraceFile
from .timeline import Interval, Timeline

__all__ = ["FunctionProfile", "ProfileView"]


@dataclass
class FunctionProfile:
    """Aggregated metrics of one function."""

    name: str
    count: int = 0
    inclusive: float = 0.0
    exclusive: float = 0.0

    def merge(self, other: "FunctionProfile") -> None:
        self.count += other.count
        self.inclusive += other.inclusive
        self.exclusive += other.exclusive


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


class ProfileView:
    """Per-function aggregate over a whole trace."""

    def __init__(
        self,
        trace: TraceFile,
        exclude_inactivity: bool = False,
        timeline: Optional[Timeline] = None,
    ) -> None:
        self.trace = trace
        self.exclude_inactivity = exclude_inactivity
        self.timeline = timeline if timeline is not None else Timeline(trace)
        self.functions: Dict[str, FunctionProfile] = {}
        self._build()

    def _build(self) -> None:
        from bisect import bisect_left

        for bar in self.timeline.bars.values():
            inactivity = bar.inactivity if self.exclude_inactivity else []

            def active_duration(iv: Interval) -> float:
                d = iv.busy_time
                for pause in inactivity:
                    d -= _overlap(iv.start, iv.end, pause.start, pause.end)
                return max(0.0, d)

            # Index intervals per depth with prefix sums of active
            # duration: children of an interval at depth d are exactly
            # the depth-(d+1) intervals starting inside it (proper
            # nesting per thread makes containment automatic).
            by_depth: Dict[int, Tuple[List[float], List[float]]] = {}
            for depth in {iv.depth for iv in bar.intervals}:
                ivs = sorted(
                    (iv for iv in bar.intervals if iv.depth == depth),
                    key=lambda iv: iv.start,
                )
                starts = [iv.start for iv in ivs]
                prefix = [0.0]
                for iv in ivs:
                    prefix.append(prefix[-1] + active_duration(iv))
                by_depth[depth] = (starts, prefix)

            for iv in bar.intervals:
                incl = active_duration(iv)
                child_time = 0.0
                children = by_depth.get(iv.depth + 1)
                if children is not None:
                    starts, prefix = children
                    lo = bisect_left(starts, iv.start)
                    hi = bisect_left(starts, iv.end)
                    child_time = prefix[hi] - prefix[lo]
                prof = self.functions.get(iv.name)
                if prof is None:
                    prof = self.functions[iv.name] = FunctionProfile(iv.name)
                prof.count += iv.count
                prof.inclusive += incl
                prof.exclusive += max(0.0, incl - child_time)

    # -- queries --------------------------------------------------------------

    def table(self) -> List[FunctionProfile]:
        """Profiles sorted by exclusive time, descending."""
        return sorted(
            self.functions.values(), key=lambda p: (-p.exclusive, p.name)
        )

    def top(self, n: int) -> List[FunctionProfile]:
        return self.table()[:n]

    def of(self, name: str) -> FunctionProfile:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} not present in the profile") from None

    @property
    def total_exclusive(self) -> float:
        return sum(p.exclusive for p in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<ProfileView {len(self.functions)} functions, "
            f"excl_total={self.total_exclusive:.3f}s"
            f"{' (inactivity excluded)' if self.exclude_inactivity else ''}>"
        )
