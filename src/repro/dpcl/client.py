"""The DPCL client API used by monitoring tools (dynprof).

The client runs inside the instrumenter's simulation process.  Every
operation fans a request out to the communication daemons on the nodes
that host target processes and waits for all acknowledgements; because
message delays differ per node (exponential jitter), requests become
visible to targets at different times — DPCL's defining asynchrony.

Per-process *program structure* navigation (symbol table download) is
charged client-side and serially, which is what makes instrumentation
time grow with the number of MPI processes in Figure 9.

Robustness: every request goes through :meth:`DpclClient._transact`,
which (under a non-default :class:`RequestPolicy`) bounds each wait
with a timeout, resends to un-acked nodes with exponential backoff, and
raises :class:`DaemonUnreachableError` naming the dead nodes once the
retry budget is spent.  The default policy takes the exact pre-faults
path — no timers, no extra events — so fault-free runs stay
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..cluster import Cluster, Node
from ..obs import get as _obs_get
from ..simt import AnyOf, Channel, Environment
from .daemon import CommDaemon, DaemonHost, SuperDaemon, _dpcl_delay
from .messages import (
    Ack,
    ActivateProbeReq,
    AttachReq,
    CallbackMsg,
    ConnectReq,
    DetachReq,
    ExecuteSnippetReq,
    InstallProbeReq,
    RemoveProbeReq,
    ResumeReq,
    SetVariableReq,
    SuspendReq,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..program import ProbeHandle, Snippet

__all__ = [
    "DpclClient",
    "DpclError",
    "DpclRequestError",
    "DaemonUnreachableError",
    "RequestPolicy",
    "ensure_super_daemons",
]

#: Sentinel returned by the bounded inbox wait when the timer fires.
_TIMED_OUT = object()


class DpclError(RuntimeError):
    """A daemon reported a failure for a client request."""


class DpclRequestError(DpclError):
    """A daemon processed a request and refused it.

    Carries the structured context a recovery layer needs: which node,
    which process, which request type, and the daemon's reason."""

    def __init__(
        self,
        message: str,
        node_index: Optional[int] = None,
        request: str = "",
        process: str = "",
        reason: str = "",
    ) -> None:
        super().__init__(message)
        self.node_index = node_index
        self.request = request
        self.process = process
        self.reason = reason


class DaemonUnreachableError(DpclError):
    """No acknowledgement from one or more daemons within the retry
    budget — the node's daemon is crashed or the network ate every
    resend."""

    def __init__(self, nodes: Sequence[int], request: str, attempts: int) -> None:
        self.nodes = tuple(sorted(nodes))
        self.request = request
        self.attempts = attempts
        super().__init__(
            f"no ack from daemon(s) on node(s) {list(self.nodes)} "
            f"after {attempts} attempt(s) of {request}"
        )


@dataclass(frozen=True)
class RequestPolicy:
    """Client-side robustness knobs for daemon requests.

    The default (no timeout, no retries) reproduces the pre-faults
    client exactly: waits block forever and schedule no timer events,
    keeping fault-free runs bit-identical.
    """

    #: Max seconds to wait for each response message; None = forever.
    timeout: Optional[float] = None
    #: Resend waves after the first send (0 = never resend).
    max_retries: int = 0
    #: Pause before the first resend wave, in seconds.
    backoff: float = 0.05
    #: Backoff growth factor per successive wave.
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError(f"non-positive timeout {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"negative max_retries {self.max_retries}")
        if self.backoff < 0.0:
            raise ValueError(f"negative backoff {self.backoff}")
        if self.backoff_multiplier <= 0.0:
            raise ValueError(
                f"non-positive backoff_multiplier {self.backoff_multiplier}"
            )
        if self.max_retries > 0 and self.timeout is None:
            raise ValueError("retries need a timeout to trigger on")


def ensure_super_daemons(env: Environment, cluster: Cluster, nodes: Sequence[Node], host: DaemonHost) -> List[SuperDaemon]:
    """Start a super daemon on each node that does not have one yet."""
    daemons = []
    for node in nodes:
        existing = getattr(node, "_super_daemon", None)
        if existing is None:
            existing = SuperDaemon(env, cluster, node, host)
            node._super_daemon = existing
        daemons.append(existing)
    return daemons


class DpclClient:
    """A monitoring tool's connection to the DPCL system."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        client_node: Node,
        host: DaemonHost,
        user: str = "user",
        policy: Optional[RequestPolicy] = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.spec = cluster.spec
        self.node = client_node
        self.host = host
        self.user = user
        self.policy = policy if policy is not None else RequestPolicy()
        self.inbox = Channel(env, name=f"dpcl-client@{client_node.hostname}")
        #: Callback messages not yet consumed by wait_callback().
        self._callbacks = Channel(env, name="dpcl-callbacks")
        self._req_ids = count(1)
        self._current_req = 0
        #: node index -> comm daemon inbox channel.
        self._daemon_inboxes: Dict[int, Channel] = {}
        #: process name -> node the process lives on.
        self._process_nodes: Dict[str, Node] = {}
        #: process name -> image (client-side program structure handle).
        self._attached: Dict[str, Any] = {}
        #: Late acks from timed-out requests, dropped not raised.
        self.stale_acks = 0
        #: Resend waves performed across all requests.
        self.retries = 0
        self._obs = _obs_get()

    # -- low-level plumbing ------------------------------------------------------

    def _new_request_fields(self) -> Tuple[int, Channel, Node]:
        req_id = next(self._req_ids)
        self._current_req = req_id
        return req_id, self.inbox, self.node

    def _send_to_node(self, node: Node, channel: Channel, msg: Any, nbytes: int = 256) -> None:
        self.cluster.interconnect.deliver(
            self.node, node, nbytes, channel, msg,
            extra_delay=_dpcl_delay(self.cluster, self.node),
            control=True,
        )

    def _get_with_timeout(self, timeout: Optional[float]) -> Generator:
        """Next inbox message, or ``_TIMED_OUT`` after ``timeout``.

        ``timeout=None`` is a plain blocking get — no timer event is
        created, so the default policy perturbs nothing.
        """
        if timeout is None:
            msg = yield self.inbox.get()
            return msg
        get_ev = self.inbox.get()
        timer = self.env.timeout(timeout)
        yield AnyOf(self.env, [get_ev, timer])
        if get_ev.processed:
            # The reply won the race: withdraw the loser timer instead
            # of letting it rot in the event queue until it expires
            # (lazy deletion — O(1), and the clock is never dragged
            # forward to a timeout nobody is waiting on).
            self.env.cancel(timer)
            return get_ev.value
        # The timer won the race.  The get may still have been served in
        # the same instant (put scheduled it behind the timer): cancel()
        # returning False means a message is on the event — consume it
        # rather than lose it.
        if not self.inbox.cancel(get_ev) and get_ev.triggered:
            return get_ev.value
        return _TIMED_OUT

    def _transact(
        self,
        sends: Sequence[Tuple[Node, Channel, Any, int]],
        req_id: int,
        request: str,
        tolerant: bool = False,
    ) -> Generator:
        """Send one request wave and gather one ack per node.

        Returns acks in arrival order.  Under a timeout policy, un-acked
        nodes get resend waves with exponential backoff; nodes still
        silent after the budget raise :class:`DaemonUnreachableError` —
        or, when ``tolerant``, come back as synthetic failed acks so the
        caller can degrade instead of die.  Returns ``acks`` when
        strict, ``(acks, failures)`` keyed by node index when tolerant.
        """
        pending: Dict[int, Tuple[Node, Channel, Any, int]] = {
            node.index: (node, inbox, msg, nbytes)
            for node, inbox, msg, nbytes in sends
        }
        acks: List[Ack] = []
        failures: Dict[int, Ack] = {}
        seen: set = set()
        attempt = 0
        backoff = self.policy.backoff
        while True:
            attempt += 1
            for node, inbox, msg, nbytes in pending.values():
                self._send_to_node(node, inbox, msg, nbytes=nbytes)
            while pending:
                msg = yield from self._get_with_timeout(self.policy.timeout)
                if msg is _TIMED_OUT:
                    if self._obs.enabled:
                        self._obs.inc("dpcl.timeouts")
                    break
                if isinstance(msg, CallbackMsg):
                    self._callbacks.put(msg)
                    continue
                if not isinstance(msg, Ack):
                    raise TypeError(f"client got unexpected message {msg!r}")
                if msg.req_id != req_id:
                    if msg.req_id < req_id:
                        # Straggler ack from a request we gave up on.
                        self._note_stale_ack()
                        continue
                    raise DpclError(
                        f"out-of-order ack: got req {msg.req_id}, expected {req_id}"
                    )
                if msg.node_index in seen:
                    continue  # duplicate from a resend race
                seen.add(msg.node_index)
                pending.pop(msg.node_index, None)
                if not msg.ok:
                    failures[msg.node_index] = msg
                    if not tolerant:
                        raise self._failure_error(msg, request)
                else:
                    acks.append(msg)
            if not pending:
                return (acks, failures) if tolerant else acks
            if attempt > self.policy.max_retries:
                if tolerant:
                    for idx in sorted(pending):
                        failures[idx] = Ack(
                            req_id, idx, ok=False,
                            error=f"daemon unreachable for {request}",
                            error_info={"node": idx, "request": request,
                                        "reason": "unreachable"},
                        )
                    if self._obs.enabled:
                        self._obs.inc("dpcl.unreachable", len(pending))
                    return acks, failures
                raise DaemonUnreachableError(list(pending), request, attempt)
            self.retries += 1
            if self._obs.enabled:
                self._obs.inc("dpcl.retries")
            if backoff > 0.0:
                yield self.env.timeout(backoff)
            backoff *= self.policy.backoff_multiplier

    def _note_stale_ack(self) -> None:
        self.stale_acks += 1
        if self._obs.enabled:
            self._obs.inc("dpcl.stale_acks")

    @staticmethod
    def _failure_error(ack: Ack, request: str) -> DpclRequestError:
        info = ack.error_info or {}
        return DpclRequestError(
            f"daemon on node {ack.node_index}: {ack.error}",
            node_index=ack.node_index,
            request=info.get("request", request),
            process=info.get("process", ""),
            reason=info.get("reason", ack.error),
        )

    def _collect_acks(self, req_id: int, expected: int) -> Generator:
        """Back-compat shim: gather ``expected`` acks already in flight
        (used by tests that drive the wire directly)."""
        acks: List[Ack] = []
        while len(acks) < expected:
            msg = yield self.inbox.get()
            if isinstance(msg, CallbackMsg):
                self._callbacks.put(msg)
                continue
            if not isinstance(msg, Ack):
                raise TypeError(f"client got unexpected message {msg!r}")
            if msg.req_id != req_id:
                if msg.req_id < req_id:
                    self._note_stale_ack()
                    continue
                raise DpclError(
                    f"out-of-order ack: got req {msg.req_id}, expected {req_id}"
                )
            if not msg.ok:
                raise self._failure_error(msg, "request")
            acks.append(msg)
        return acks

    # -- connection management ------------------------------------------------------

    def connect(self, process_locations: Dict[str, Node], tolerant: bool = False) -> Generator:
        """Connect to the super daemons of every node hosting a target.

        ``process_locations`` maps process name -> node.  After connect,
        the client can attach to those processes.  When ``tolerant``,
        unreachable nodes are skipped and returned as a failure map
        instead of raising.
        """
        self._process_nodes.update(process_locations)
        nodes = {n.index: n for n in process_locations.values()}
        new_nodes = [n for idx, n in nodes.items() if idx not in self._daemon_inboxes]
        if not new_nodes:
            return ([], {}) if tolerant else []
        ensure_super_daemons(self.env, self.cluster, new_nodes, self.host)
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (node, node.superdaemon_inbox,
             ConnectReq(req_id, reply_to, reply_node, user=self.user), 256)
            for node in new_nodes
        ]
        result = yield from self._transact(sends, req_id, "ConnectReq", tolerant=tolerant)
        acks, failures = result if tolerant else (result, {})
        for ack in acks:
            self._daemon_inboxes[ack.node_index] = ack.payload
            # Route callbacks from this node's daemon to us.
            daemon = self._find_daemon(ack.node_index)
            if daemon is not None:
                daemon.set_callback_client(self.inbox, self.node)
        return (acks, failures) if tolerant else acks

    def _find_daemon(self, node_index: int) -> Optional[CommDaemon]:
        node = self.cluster.node(node_index)
        superd = getattr(node, "_super_daemon", None)
        if superd is None:
            return None
        return superd.comm_daemons.get(self.user)

    def _daemon_inbox_for(self, process_name: str) -> Tuple[Node, Channel]:
        node = self._process_nodes.get(process_name)
        if node is None:
            raise DpclError(f"unknown process {process_name!r}; connect() first")
        inbox = self._daemon_inboxes.get(node.index)
        if inbox is None:
            raise DpclError(f"not connected to node {node.hostname}")
        return node, inbox

    def is_connected_to(self, process_name: str) -> bool:
        """True if the daemon serving ``process_name`` is connected."""
        node = self._process_nodes.get(process_name)
        return node is not None and node.index in self._daemon_inboxes

    def _group_by_node(self, names: Sequence[str]) -> Dict[int, Tuple[Node, Channel, List[str]]]:
        groups: Dict[int, Tuple[Node, Channel, List[str]]] = {}
        for name in names:
            node, inbox = self._daemon_inbox_for(name)
            entry = groups.get(node.index)
            if entry is None:
                groups[node.index] = (node, inbox, [name])
            else:
                entry[2].append(name)
        return groups

    # -- attach / structure navigation -------------------------------------------------

    def attach(self, process_names: Sequence[str], tolerant: bool = False) -> Generator:
        """Attach to targets and walk their program structure client-side.

        When ``tolerant``, nodes whose daemon refuses or never answers
        are skipped; returns ``(attached_names, failures)`` keyed by
        node index instead of raising.
        """
        groups = self._group_by_node(process_names)
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (node, inbox,
             AttachReq(req_id, reply_to, reply_node, process_names=names), 256)
            for node, inbox, names in groups.values()
        ]
        failures: Dict[int, Ack] = {}
        if tolerant:
            _acks, failures = yield from self._transact(
                sends, req_id, "AttachReq", tolerant=True
            )
            names_ok = [
                name for name in process_names
                if self._process_nodes[name].index not in failures
            ]
        else:
            yield from self._transact(sends, req_id, "AttachReq")
            names_ok = list(process_names)
        # Client-side program-structure download per process (serial).
        for name in names_ok:
            target = self.host.lookup(name)
            if target is None:
                raise DpclRequestError(
                    f"process {name!r} vanished during attach",
                    process=name, request="AttachReq", reason="vanished",
                )
            _task, image = target
            n_symbols = len(image.functions)
            yield self.env.timeout(
                self.spec.dpcl_client_per_process_cost
                + n_symbols * self.spec.dpcl_client_per_symbol_cost
            )
            self._attached[name] = image
        return (names_ok, failures) if tolerant else names_ok

    @property
    def attached_processes(self) -> List[str]:
        return list(self._attached)

    def find_functions(self, process_name: str, pattern: str) -> List[str]:
        """Client-side symbol lookup in an attached process's structure."""
        return [fi.name for fi in self.image_of(process_name).find_functions(pattern)]

    def image_of(self, process_name: str):
        """The attached process's program structure (its image handle)."""
        image = self._attached.get(process_name)
        if image is None:
            raise DpclError(f"process {process_name!r} not attached")
        return image

    # -- probe management -----------------------------------------------------------------

    def _build_install_requests(
        self,
        probes: Sequence[Tuple[str, str, str, "Snippet"]],
        register_names: Sequence[Tuple[str, str]],
        activate: bool,
        req_id: int,
        reply_to: Channel,
        reply_node: Node,
    ) -> Dict[int, Tuple[Node, Channel, InstallProbeReq, List[int]]]:
        """Group probes per node; the trailing list maps each node's
        probe slots back to indices into the caller's ``probes``."""
        by_node: Dict[int, Tuple[Node, Channel, InstallProbeReq, List[int]]] = {}
        for index, probe in enumerate(probes):
            node, inbox = self._daemon_inbox_for(probe[0])
            entry = by_node.get(node.index)
            if entry is None:
                req = InstallProbeReq(req_id, reply_to, reply_node, activate=activate)
                by_node[node.index] = (node, inbox, req, [])
                entry = by_node[node.index]
            entry[2].probes.append(tuple(probe))
            entry[3].append(index)
        for process_name, fname in register_names:
            node, _inbox = self._daemon_inbox_for(process_name)
            entry = by_node.get(node.index)
            if entry is not None:
                entry[2].register_names.append((process_name, fname))
        return by_node

    def install_probes(
        self,
        probes: Sequence[Tuple[str, str, str, "Snippet"]],
        register_names: Sequence[Tuple[str, str]] = (),
        activate: bool = True,
    ) -> Generator:
        """Install probes: (process, function, where, snippet) tuples.

        Returns the installed :class:`ProbeHandle` s.  Work is fanned out
        per node and proceeds in parallel across daemons.  Any failed
        probe raises :class:`DpclRequestError` naming the probe.
        """
        req_id, reply_to, reply_node = self._new_request_fields()
        by_node = self._build_install_requests(
            probes, register_names, activate, req_id, reply_to, reply_node
        )
        if not by_node:
            return []
        sends = [
            (node, inbox, req, 512 + 64 * len(req.probes))
            for node, inbox, req, _indices in by_node.values()
        ]
        acks = yield from self._transact(sends, req_id, "InstallProbeReq")
        handles: List[Any] = []
        for ack in acks:
            for status, value in ack.payload:
                if status != "ok":
                    raise DpclRequestError(
                        f"daemon on node {ack.node_index}: probe install "
                        f"failed for {value.get('function')!r} in "
                        f"{value.get('process')!r}: {value.get('reason')}",
                        node_index=ack.node_index,
                        request="InstallProbeReq",
                        process=value.get("process", ""),
                        reason=value.get("reason", ""),
                    )
                handles.append(value)
        return handles

    def install_probes_tolerant(
        self,
        probes: Sequence[Tuple[str, str, str, "Snippet"]],
        register_names: Sequence[Tuple[str, str]] = (),
        activate: bool = True,
    ) -> Generator:
        """Like :meth:`install_probes`, but degrades instead of raising.

        Returns ``(results, failures)``: ``results`` is aligned with the
        input ``probes`` (a handle, or None where that probe could not
        be installed); ``failures`` is a list of dicts describing each
        failed slot (process, function, node, reason).
        """
        req_id, reply_to, reply_node = self._new_request_fields()
        by_node = self._build_install_requests(
            probes, register_names, activate, req_id, reply_to, reply_node
        )
        if not by_node:
            return [], []
        sends = [
            (node, inbox, req, 512 + 64 * len(req.probes))
            for node, inbox, req, _indices in by_node.values()
        ]
        acks, node_failures = yield from self._transact(
            sends, req_id, "InstallProbeReq", tolerant=True
        )
        results: List[Optional[Any]] = [None] * len(probes)
        failures: List[Dict[str, Any]] = []
        for ack in acks:
            _node, _inbox, req, indices = by_node[ack.node_index]
            for slot, (status, value) in enumerate(ack.payload):
                index = indices[slot]
                if status == "ok":
                    results[index] = value
                else:
                    failures.append(dict(value, node=ack.node_index))
        for node_index, ack in node_failures.items():
            _node, _inbox, req, indices = by_node[node_index]
            info = ack.error_info or {}
            reason = info.get("reason", ack.error)
            for slot, index in enumerate(indices):
                process, function = req.probes[slot][0], req.probes[slot][1]
                failures.append({
                    "process": process, "function": function,
                    "node": node_index, "reason": reason,
                })
        return results, failures

    def remove_probes(self, handles: Sequence["ProbeHandle"]) -> Generator:
        """Remove installed probes; returns the number removed."""
        by_node: Dict[int, Tuple[Node, Channel, RemoveProbeReq]] = {}
        req_id, reply_to, reply_node = self._new_request_fields()
        for handle in handles:
            node, inbox = self._daemon_inbox_for(handle.image_name)
            entry = by_node.get(node.index)
            if entry is None:
                req = RemoveProbeReq(req_id, reply_to, reply_node)
                by_node[node.index] = (node, inbox, req)
                entry = by_node[node.index]
            entry[2].handles.append(handle)
        if not by_node:
            return 0
        sends = [(node, inbox, req, 256) for node, inbox, req in by_node.values()]
        acks = yield from self._transact(sends, req_id, "RemoveProbeReq")
        return sum(ack.payload for ack in acks)

    def set_probes_active(self, handles: Sequence["ProbeHandle"], active: bool) -> Generator:
        by_node: Dict[int, Tuple[Node, Channel, ActivateProbeReq]] = {}
        req_id, reply_to, reply_node = self._new_request_fields()
        for handle in handles:
            node, inbox = self._daemon_inbox_for(handle.image_name)
            entry = by_node.get(node.index)
            if entry is None:
                req = ActivateProbeReq(req_id, reply_to, reply_node, active=active)
                by_node[node.index] = (node, inbox, req)
                entry = by_node[node.index]
            entry[2].handles.append(handle)
        if not by_node:
            return 0
        sends = [(node, inbox, req, 256) for node, inbox, req in by_node.values()]
        acks = yield from self._transact(sends, req_id, "ActivateProbeReq")
        return sum(ack.payload for ack in acks)

    # -- execution control ---------------------------------------------------------------------

    def suspend(self, process_names: Optional[Sequence[str]] = None, blocking: bool = True) -> Generator:
        """Suspend targets (all attached by default)."""
        names = list(process_names) if process_names is not None else self.attached_processes
        groups = self._group_by_node(names)
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (node, inbox,
             SuspendReq(req_id, reply_to, reply_node, process_names=group_names,
                        blocking=blocking), 256)
            for node, inbox, group_names in groups.values()
        ]
        yield from self._transact(sends, req_id, "SuspendReq")
        return len(names)

    def resume(self, process_names: Optional[Sequence[str]] = None, tolerant: bool = False) -> Generator:
        names = list(process_names) if process_names is not None else self.attached_processes
        groups = self._group_by_node(names)
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (node, inbox,
             ResumeReq(req_id, reply_to, reply_node, process_names=group_names), 256)
            for node, inbox, group_names in groups.values()
        ]
        result = yield from self._transact(sends, req_id, "ResumeReq", tolerant=tolerant)
        if tolerant:
            _acks, failures = result
            n_resumed = len(names) - sum(
                len(groups[idx][2]) for idx in failures if idx in groups
            )
            return n_resumed, failures
        return len(names)

    def set_variable(self, process_name: str, variable: str, value: Any = 1) -> Generator:
        """Write a variable in one target (releases DYNVT_spin waits)."""
        node, inbox = self._daemon_inbox_for(process_name)
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (node, inbox,
             SetVariableReq(req_id, reply_to, reply_node, process_name=process_name,
                            variable=variable, value=value), 256)
        ]
        yield from self._transact(sends, req_id, "SetVariableReq")

    def execute_snippet(self, process_name: str, snippet: "Snippet") -> Generator:
        """One-shot inferior call in a stopped target; returns its value.

        The DPCL 'execute' primitive: evaluate code in the target's
        address space immediately instead of installing it at a probe
        point — how tools run VT_funcdef-style registration calls.
        """
        node, inbox = self._daemon_inbox_for(process_name)
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (node, inbox,
             ExecuteSnippetReq(req_id, reply_to, reply_node,
                               process_name=process_name, snippet=snippet), 256)
        ]
        acks = yield from self._transact(sends, req_id, "ExecuteSnippetReq")
        return acks[0].payload

    def detach(self) -> Generator:
        """Detach from everything; active probes stay in the targets."""
        nodes = dict(self._daemon_inboxes)
        if not nodes:
            return 0
        req_id, reply_to, reply_node = self._new_request_fields()
        sends = [
            (self.cluster.node(idx), inbox,
             DetachReq(req_id, reply_to, reply_node), 256)
            for idx, inbox in nodes.items()
        ]
        acks = yield from self._transact(sends, req_id, "DetachReq")
        self._attached.clear()
        return sum(a.payload for a in acks)

    # -- callbacks ------------------------------------------------------------------------------

    def wait_callback(
        self,
        tag: Optional[str] = None,
        n: int = 1,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Wait for ``n`` callback messages (optionally filtered by tag).

        Messages queued while waiting for acks are consumed first.  Late
        acks from timed-out requests are dropped, not fatal.  With a
        ``timeout``, gives up ``timeout`` seconds after the last message
        and returns what arrived (possibly fewer than ``n``) — the
        caller inspects the shortfall and quarantines the silent ranks.
        """
        got: List[CallbackMsg] = []
        while len(got) < n:
            if len(self._callbacks):
                msg = yield self._callbacks.get()
            else:
                msg = yield from self._get_with_timeout(timeout)
                if msg is _TIMED_OUT:
                    if self._obs.enabled:
                        self._obs.inc("dpcl.timeouts")
                    return got
            if isinstance(msg, Ack):
                self._note_stale_ack()
                continue
            if isinstance(msg, CallbackMsg) and (tag is None or msg.tag == tag):
                got.append(msg)
        return got

    def __repr__(self) -> str:
        return (
            f"<DpclClient {self.user}@{self.node.hostname} "
            f"daemons={len(self._daemon_inboxes)} attached={len(self._attached)}>"
        )
