"""The DPCL client API used by monitoring tools (dynprof).

The client runs inside the instrumenter's simulation process.  Every
operation fans a request out to the communication daemons on the nodes
that host target processes and waits for all acknowledgements; because
message delays differ per node (exponential jitter), requests become
visible to targets at different times — DPCL's defining asynchrony.

Per-process *program structure* navigation (symbol table download) is
charged client-side and serially, which is what makes instrumentation
time grow with the number of MPI processes in Figure 9.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..cluster import Cluster, Node
from ..simt import Channel, Environment
from .daemon import CommDaemon, DaemonHost, SuperDaemon, _dpcl_delay
from .messages import (
    Ack,
    ActivateProbeReq,
    AttachReq,
    CallbackMsg,
    ConnectReq,
    DetachReq,
    ExecuteSnippetReq,
    InstallProbeReq,
    RemoveProbeReq,
    ResumeReq,
    SetVariableReq,
    SuspendReq,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..program import ProbeHandle, Snippet

__all__ = ["DpclClient", "DpclError", "ensure_super_daemons"]


class DpclError(RuntimeError):
    """A daemon reported a failure for a client request."""


def ensure_super_daemons(env: Environment, cluster: Cluster, nodes: Sequence[Node], host: DaemonHost) -> List[SuperDaemon]:
    """Start a super daemon on each node that does not have one yet."""
    daemons = []
    for node in nodes:
        existing = getattr(node, "_super_daemon", None)
        if existing is None:
            existing = SuperDaemon(env, cluster, node, host)
            node._super_daemon = existing
        daemons.append(existing)
    return daemons


class DpclClient:
    """A monitoring tool's connection to the DPCL system."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        client_node: Node,
        host: DaemonHost,
        user: str = "user",
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.spec = cluster.spec
        self.node = client_node
        self.host = host
        self.user = user
        self.inbox = Channel(env, name=f"dpcl-client@{client_node.hostname}")
        #: Callback messages not yet consumed by wait_callback().
        self._callbacks = Channel(env, name="dpcl-callbacks")
        self._req_ids = count(1)
        #: node index -> comm daemon inbox channel.
        self._daemon_inboxes: Dict[int, Channel] = {}
        #: process name -> node the process lives on.
        self._process_nodes: Dict[str, Node] = {}
        #: process name -> image (client-side program structure handle).
        self._attached: Dict[str, Any] = {}

    # -- low-level plumbing ------------------------------------------------------

    def _new_request_fields(self) -> Tuple[int, Channel, Node]:
        return next(self._req_ids), self.inbox, self.node

    def _send_to_node(self, node: Node, channel: Channel, msg: Any, nbytes: int = 256) -> None:
        self.cluster.interconnect.deliver(
            self.node, node, nbytes, channel, msg,
            extra_delay=_dpcl_delay(self.cluster, self.node),
        )

    def _collect_acks(self, req_id: int, expected: int) -> Generator:
        """Read the inbox until ``expected`` acks for ``req_id`` arrive.

        Callback messages that arrive interleaved are queued for
        :meth:`wait_callback`.
        """
        acks: List[Ack] = []
        while len(acks) < expected:
            msg = yield self.inbox.get()
            if isinstance(msg, CallbackMsg):
                self._callbacks.put(msg)
                continue
            if not isinstance(msg, Ack):
                raise TypeError(f"client got unexpected message {msg!r}")
            if msg.req_id != req_id:
                raise DpclError(
                    f"out-of-order ack: got req {msg.req_id}, expected {req_id}"
                )
            if not msg.ok:
                raise DpclError(f"daemon on node {msg.node_index}: {msg.error}")
            acks.append(msg)
        return acks

    # -- connection management ------------------------------------------------------

    def connect(self, process_locations: Dict[str, Node]) -> Generator:
        """Connect to the super daemons of every node hosting a target.

        ``process_locations`` maps process name -> node.  After connect,
        the client can attach to those processes.
        """
        self._process_nodes.update(process_locations)
        nodes = {n.index: n for n in process_locations.values()}
        new_nodes = [n for idx, n in nodes.items() if idx not in self._daemon_inboxes]
        if not new_nodes:
            return []
        ensure_super_daemons(self.env, self.cluster, new_nodes, self.host)
        req_id, reply_to, reply_node = self._new_request_fields()
        for node in new_nodes:
            self._send_to_node(
                node, node.superdaemon_inbox,
                ConnectReq(req_id, reply_to, reply_node, user=self.user),
            )
        acks = yield from self._collect_acks(req_id, len(new_nodes))
        for ack in acks:
            self._daemon_inboxes[ack.node_index] = ack.payload
            # Route callbacks from this node's daemon to us.
            daemon = self._find_daemon(ack.node_index)
            if daemon is not None:
                daemon.set_callback_client(self.inbox, self.node)
        return acks

    def _find_daemon(self, node_index: int) -> Optional[CommDaemon]:
        node = self.cluster.node(node_index)
        superd = getattr(node, "_super_daemon", None)
        if superd is None:
            return None
        return superd.comm_daemons.get(self.user)

    def _daemon_inbox_for(self, process_name: str) -> Tuple[Node, Channel]:
        node = self._process_nodes.get(process_name)
        if node is None:
            raise DpclError(f"unknown process {process_name!r}; connect() first")
        inbox = self._daemon_inboxes.get(node.index)
        if inbox is None:
            raise DpclError(f"not connected to node {node.hostname}")
        return node, inbox

    def _group_by_node(self, names: Sequence[str]) -> Dict[int, Tuple[Node, Channel, List[str]]]:
        groups: Dict[int, Tuple[Node, Channel, List[str]]] = {}
        for name in names:
            node, inbox = self._daemon_inbox_for(name)
            entry = groups.get(node.index)
            if entry is None:
                groups[node.index] = (node, inbox, [name])
            else:
                entry[2].append(name)
        return groups

    # -- attach / structure navigation -------------------------------------------------

    def attach(self, process_names: Sequence[str]) -> Generator:
        """Attach to targets and walk their program structure client-side."""
        groups = self._group_by_node(process_names)
        req_id, reply_to, reply_node = self._new_request_fields()
        for node, inbox, names in groups.values():
            self._send_to_node(
                node, inbox, AttachReq(req_id, reply_to, reply_node, process_names=names)
            )
        yield from self._collect_acks(req_id, len(groups))
        # Client-side program-structure download per process (serial).
        for name in process_names:
            target = self.host.lookup(name)
            if target is None:
                raise DpclError(f"process {name!r} vanished during attach")
            _task, image = target
            n_symbols = len(image.functions)
            yield self.env.timeout(
                self.spec.dpcl_client_per_process_cost
                + n_symbols * self.spec.dpcl_client_per_symbol_cost
            )
            self._attached[name] = image
        return list(process_names)

    @property
    def attached_processes(self) -> List[str]:
        return list(self._attached)

    def find_functions(self, process_name: str, pattern: str) -> List[str]:
        """Client-side symbol lookup in an attached process's structure."""
        return [fi.name for fi in self.image_of(process_name).find_functions(pattern)]

    def image_of(self, process_name: str):
        """The attached process's program structure (its image handle)."""
        image = self._attached.get(process_name)
        if image is None:
            raise DpclError(f"process {process_name!r} not attached")
        return image

    # -- probe management -----------------------------------------------------------------

    def install_probes(
        self,
        probes: Sequence[Tuple[str, str, str, "Snippet"]],
        register_names: Sequence[Tuple[str, str]] = (),
        activate: bool = True,
    ) -> Generator:
        """Install probes: (process, function, where, snippet) tuples.

        Returns the installed :class:`ProbeHandle` s.  Work is fanned out
        per node and proceeds in parallel across daemons.
        """
        by_node: Dict[int, Tuple[Node, Channel, InstallProbeReq]] = {}
        req_id, reply_to, reply_node = self._new_request_fields()
        for probe in probes:
            node, inbox = self._daemon_inbox_for(probe[0])
            entry = by_node.get(node.index)
            if entry is None:
                req = InstallProbeReq(req_id, reply_to, reply_node, activate=activate)
                by_node[node.index] = (node, inbox, req)
                entry = by_node[node.index]
            entry[2].probes.append(tuple(probe))
        for process_name, fname in register_names:
            node, _inbox = self._daemon_inbox_for(process_name)
            entry = by_node.get(node.index)
            if entry is not None:
                entry[2].register_names.append((process_name, fname))
        if not by_node:
            return []
        for node, inbox, req in by_node.values():
            self._send_to_node(node, inbox, req, nbytes=512 + 64 * len(req.probes))
        acks = yield from self._collect_acks(req_id, len(by_node))
        handles: List[Any] = []
        for ack in acks:
            handles.extend(ack.payload)
        return handles

    def remove_probes(self, handles: Sequence["ProbeHandle"]) -> Generator:
        """Remove installed probes; returns the number removed."""
        by_node: Dict[int, Tuple[Node, Channel, RemoveProbeReq]] = {}
        req_id, reply_to, reply_node = self._new_request_fields()
        for handle in handles:
            node, inbox = self._daemon_inbox_for(handle.image_name)
            entry = by_node.get(node.index)
            if entry is None:
                req = RemoveProbeReq(req_id, reply_to, reply_node)
                by_node[node.index] = (node, inbox, req)
                entry = by_node[node.index]
            entry[2].handles.append(handle)
        if not by_node:
            return 0
        for node, inbox, req in by_node.values():
            self._send_to_node(node, inbox, req)
        acks = yield from self._collect_acks(req_id, len(by_node))
        return sum(ack.payload for ack in acks)

    def set_probes_active(self, handles: Sequence["ProbeHandle"], active: bool) -> Generator:
        by_node: Dict[int, Tuple[Node, Channel, ActivateProbeReq]] = {}
        req_id, reply_to, reply_node = self._new_request_fields()
        for handle in handles:
            node, inbox = self._daemon_inbox_for(handle.image_name)
            entry = by_node.get(node.index)
            if entry is None:
                req = ActivateProbeReq(req_id, reply_to, reply_node, active=active)
                by_node[node.index] = (node, inbox, req)
                entry = by_node[node.index]
            entry[2].handles.append(handle)
        if not by_node:
            return 0
        for node, inbox, req in by_node.values():
            self._send_to_node(node, inbox, req)
        acks = yield from self._collect_acks(req_id, len(by_node))
        return sum(ack.payload for ack in acks)

    # -- execution control ---------------------------------------------------------------------

    def suspend(self, process_names: Optional[Sequence[str]] = None, blocking: bool = True) -> Generator:
        """Suspend targets (all attached by default)."""
        names = list(process_names) if process_names is not None else self.attached_processes
        groups = self._group_by_node(names)
        req_id, reply_to, reply_node = self._new_request_fields()
        for node, inbox, group_names in groups.values():
            self._send_to_node(
                node, inbox,
                SuspendReq(req_id, reply_to, reply_node, process_names=group_names, blocking=blocking),
            )
        yield from self._collect_acks(req_id, len(groups))
        return len(names)

    def resume(self, process_names: Optional[Sequence[str]] = None) -> Generator:
        names = list(process_names) if process_names is not None else self.attached_processes
        groups = self._group_by_node(names)
        req_id, reply_to, reply_node = self._new_request_fields()
        for node, inbox, group_names in groups.values():
            self._send_to_node(
                node, inbox,
                ResumeReq(req_id, reply_to, reply_node, process_names=group_names),
            )
        yield from self._collect_acks(req_id, len(groups))
        return len(names)

    def set_variable(self, process_name: str, variable: str, value: Any = 1) -> Generator:
        """Write a variable in one target (releases DYNVT_spin waits)."""
        node, inbox = self._daemon_inbox_for(process_name)
        req_id, reply_to, reply_node = self._new_request_fields()
        self._send_to_node(
            node, inbox,
            SetVariableReq(req_id, reply_to, reply_node, process_name=process_name,
                           variable=variable, value=value),
        )
        yield from self._collect_acks(req_id, 1)

    def execute_snippet(self, process_name: str, snippet: "Snippet") -> Generator:
        """One-shot inferior call in a stopped target; returns its value.

        The DPCL 'execute' primitive: evaluate code in the target's
        address space immediately instead of installing it at a probe
        point — how tools run VT_funcdef-style registration calls.
        """
        node, inbox = self._daemon_inbox_for(process_name)
        req_id, reply_to, reply_node = self._new_request_fields()
        self._send_to_node(
            node, inbox,
            ExecuteSnippetReq(req_id, reply_to, reply_node,
                              process_name=process_name, snippet=snippet),
        )
        acks = yield from self._collect_acks(req_id, 1)
        return acks[0].payload

    def detach(self) -> Generator:
        """Detach from everything; active probes stay in the targets."""
        nodes = dict(self._daemon_inboxes)
        if not nodes:
            return 0
        req_id, reply_to, reply_node = self._new_request_fields()
        for idx, inbox in nodes.items():
            self._send_to_node(self.cluster.node(idx), inbox, DetachReq(req_id, reply_to, reply_node))
        acks = yield from self._collect_acks(req_id, len(nodes))
        self._attached.clear()
        return sum(a.payload for a in acks)

    # -- callbacks ------------------------------------------------------------------------------

    def wait_callback(self, tag: Optional[str] = None, n: int = 1) -> Generator:
        """Wait for ``n`` callback messages (optionally filtered by tag).

        Messages queued while waiting for acks are consumed first.
        """
        got: List[CallbackMsg] = []
        while len(got) < n:
            if len(self._callbacks):
                msg = yield self._callbacks.get()
            else:
                msg = yield self.inbox.get()
            if isinstance(msg, Ack):
                raise DpclError(
                    f"unexpected ack {msg.req_id} while waiting for callbacks"
                )
            if isinstance(msg, CallbackMsg) and (tag is None or msg.tag == tag):
                got.append(msg)
        return got

    def __repr__(self) -> str:
        return (
            f"<DpclClient {self.user}@{self.node.hostname} "
            f"daemons={len(self._daemon_inboxes)} attached={len(self._attached)}>"
        )
