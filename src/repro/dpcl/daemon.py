"""DPCL daemons: one super daemon per node, comm daemons per user.

The super daemon authenticates connecting users and forks one
communication daemon per user; the communication daemons are what attach
to target processes and actually perform the patching (Figure 5).  All
daemon work is charged to the daemon's own simulated time — the target
is typically suspended while its image is modified, so these costs show
up as instrumentation wall time (Figure 9), not as application profile
perturbation.

Fault behaviour: when a :class:`~repro.faults.FaultInjector` declares a
node's daemons crashed, every request delivered during the crash window
is silently swallowed (a dead process reads nothing from its sockets) —
recovery is entirely the client's job.  Requests are idempotent at this
layer: each daemon remembers the ack it sent per (client, request id)
and re-replies it for duplicate deliveries, so a client resend whose
original ack was merely delayed does not repeat the work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..cluster import Cluster, Node
from ..simt import Channel, Environment, Process
from .messages import (
    Ack,
    ActivateProbeReq,
    AttachReq,
    CallbackMsg,
    ConnectReq,
    DetachReq,
    DpclRequest,
    ExecuteSnippetReq,
    InstallProbeReq,
    RemoveProbeReq,
    ResumeReq,
    SetVariableReq,
    SuspendReq,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Task
    from ..program import ProcessImage

__all__ = ["SuperDaemon", "CommDaemon", "DaemonHost"]


class DaemonHost:
    """Registry binding process names to their (task, image) on a node.

    The job launcher populates this; daemons resolve their local targets
    through it.
    """

    def __init__(self) -> None:
        self._targets: Dict[str, tuple] = {}

    def register(self, name: str, task: "Task", image: "ProcessImage") -> None:
        self._targets[name] = (task, image)

    def lookup(self, name: str) -> Optional[tuple]:
        return self._targets.get(name)

    def names(self) -> List[str]:
        return list(self._targets)


def _request_error_info(node_index: int, msg: DpclRequest, exc: BaseException) -> Dict[str, Any]:
    """Structured failure context shipped back in the ack (satellite of
    the recovery work: clients log *which* process/request broke where,
    not just a bare string)."""
    process = getattr(msg, "process_name", "") or ""
    if not process:
        names = getattr(msg, "process_names", None)
        if names:
            process = names[0] if len(names) == 1 else ",".join(names)
    return {
        "node": node_index,
        "request": type(msg).__name__,
        "process": process,
        "reason": str(exc),
    }


class SuperDaemon:
    """One per node; authenticates users, forks communication daemons."""

    def __init__(self, env: Environment, cluster: Cluster, node: Node, host: DaemonHost) -> None:
        self.env = env
        self.cluster = cluster
        self.node = node
        self.host = host
        self.comm_daemons: Dict[str, CommDaemon] = {}
        #: (client channel id, req_id) -> ack already sent (idempotence).
        self._acked: Dict[tuple, Ack] = {}
        self.proc: Process = env.process(self._serve(), name=f"superd@{node.hostname}")

    def _serve(self) -> Generator:
        inbox = self.node.superdaemon_inbox
        while True:
            msg = yield inbox.get()
            if msg is None:  # shutdown signal (tests)
                return
            if not isinstance(msg, ConnectReq):
                raise TypeError(f"super daemon got unexpected message {msg!r}")
            faults = self.cluster.faults
            if faults is not None and faults.daemon_down(self.node.index, self.env.now):
                faults.note_daemon_drop(self.node.index)
                continue
            key = (id(msg.reply_to), msg.req_id)
            prior = self._acked.get(key)
            if prior is not None:  # duplicate of an already-served connect
                self._reply(msg, prior)
                continue
            # Authentication + fork of the user's communication daemon.
            yield self.env.timeout(self.cluster.spec.dpcl_connect_cost)
            daemon = self.comm_daemons.get(msg.user)
            if daemon is None:
                daemon = CommDaemon(self.env, self.cluster, self.node, self.host, msg.user)
                self.comm_daemons[msg.user] = daemon
            ack = Ack(msg.req_id, self.node.index, payload=daemon.inbox)
            self._acked[key] = ack
            self._reply(msg, ack)

    def _reply(self, req: DpclRequest, ack: Ack) -> None:
        self.cluster.interconnect.deliver(
            self.node, req.reply_node, 128, req.reply_to, ack,
            extra_delay=_dpcl_delay(self.cluster, self.node),
            control=True,
        )


class CommDaemon:
    """Per-(node, user) daemon that attaches to and patches local targets."""

    def __init__(self, env: Environment, cluster: Cluster, node: Node, host: DaemonHost, user: str) -> None:
        self.env = env
        self.cluster = cluster
        self.spec = cluster.spec
        self.node = node
        self.host = host
        self.user = user
        self.inbox = Channel(env, name=f"commd@{node.hostname}:{user}")
        #: Attached process name -> (task, image).
        self.attached: Dict[str, tuple] = {}
        self._parsed_images: set = set()
        self.probes_installed = 0
        #: (client channel id, req_id) -> ack already sent (idempotence).
        self._acked: Dict[tuple, Ack] = {}
        self.proc: Process = env.process(self._serve(), name=f"commd@{node.hostname}:{user}")

    # -- main loop ---------------------------------------------------------------

    def _serve(self) -> Generator:
        while True:
            msg = yield self.inbox.get()
            if msg is None:
                return
            faults = self.cluster.faults
            if faults is not None and faults.daemon_down(self.node.index, self.env.now):
                faults.note_daemon_drop(self.node.index)
                continue
            handler = self._handlers.get(type(msg))
            if handler is None:
                raise TypeError(f"comm daemon got unexpected message {msg!r}")
            key = (id(msg.reply_to), msg.req_id)
            prior = self._acked.get(key)
            if prior is not None:  # duplicate delivery: don't redo the work
                self._reply(msg, prior)
                continue
            try:
                payload = yield from handler(self, msg)
                ack = Ack(msg.req_id, self.node.index, payload=payload)
            except Exception as exc:  # surfaced to the client, not fatal here
                ack = Ack(
                    msg.req_id, self.node.index, ok=False, error=str(exc),
                    error_info=_request_error_info(self.node.index, msg, exc),
                )
            self._acked[key] = ack
            self._reply(msg, ack)

    def _reply(self, req: DpclRequest, ack: Ack) -> None:
        self.cluster.interconnect.deliver(
            self.node, req.reply_node, 256, req.reply_to, ack,
            extra_delay=_dpcl_delay(self.cluster, self.node),
            control=True,
        )

    # -- handlers ---------------------------------------------------------------------

    def _attach(self, msg: AttachReq) -> Generator:
        attached = []
        for name in msg.process_names:
            target = self.host.lookup(name)
            if target is None:
                raise KeyError(f"no process {name!r} on {self.node.hostname}")
            if name not in self.attached:
                yield self.env.timeout(self.spec.dpcl_attach_cost)
                self.attached[name] = target
                task, image = target
                # Expose DPCL_callback to snippets in this target.
                image.register_runtime("DPCL_callback", self._make_callback(name))
            attached.append(name)
        return attached

    def _make_callback(self, process_name: str):
        """The DPCL_callback runtime function inserted code can call."""

        def dpcl_callback(pctx, tag="callback", data=None):
            client = getattr(self, "_callback_client", None)
            if client is None:
                return None
            faults = self.cluster.faults
            if faults is not None and faults.daemon_down(self.node.index, self.env.now):
                # The relay daemon is dead; the target's callback dies
                # with it.
                faults.note_daemon_drop(self.node.index)
                return None
            channel, client_node = client
            self.cluster.interconnect.deliver(
                self.node, client_node, 128, channel,
                CallbackMsg(str(tag), process_name, data),
                extra_delay=_dpcl_delay(self.cluster, self.node),
                control=True,
            )
            return None

        return dpcl_callback

    def set_callback_client(self, channel: Channel, client_node: Node) -> None:
        """Route DPCL_callback messages to this client (set at attach)."""
        self._callback_client = (channel, client_node)

    def _ensure_parsed(self, image: "ProcessImage") -> Generator:
        if image.name not in self._parsed_images:
            yield self.env.timeout(self.spec.dpcl_parse_image_cost)
            self._parsed_images.add(image.name)

    def _install(self, msg: InstallProbeReq) -> Generator:
        """Install probes one by one; the payload is per-probe outcomes
        (("ok", handle) or ("fail", info)) aligned with ``msg.probes``,
        so one unwritable probe point no longer poisons the batch."""
        outcomes: List[tuple] = []
        # Register function names with the target's VT library first
        # (one-shot calls executed in the stopped target).
        for process_name, fname in msg.register_names:
            task, image = self._target(process_name)
            if image.vt is not None:
                yield self.env.timeout(self.spec.vt_funcdef_cost)
                image.vt.funcdef_external(fname)
        for process_name, function, where, snippet in msg.probes:
            try:
                task, image = self._target(process_name)
                yield from self._ensure_parsed(image)
                yield self.env.timeout(self.spec.dpcl_install_probe_cost)
                faults = self.cluster.faults
                if faults is not None and faults.probe_install_fails(
                    self.node.index, process_name, function
                ):
                    raise RuntimeError("probe install failed (injected fault)")
                handle = image.install_probe(
                    function, where, snippet, activate=msg.activate
                )
            except Exception as exc:
                outcomes.append(("fail", {
                    "process": process_name, "function": function,
                    "where": where, "reason": str(exc),
                }))
                continue
            self.probes_installed += 1
            outcomes.append(("ok", handle))
        return outcomes

    def _remove(self, msg: RemoveProbeReq) -> Generator:
        removed = 0
        for handle in msg.handles:
            task, image = self._target(handle.image_name)
            yield self.env.timeout(self.spec.dpcl_remove_probe_cost)
            if image.remove_probe(handle):
                removed += 1
        return removed

    def _activate(self, msg: ActivateProbeReq) -> Generator:
        for handle in msg.handles:
            task, image = self._target(handle.image_name)
            yield self.env.timeout(self.spec.dpcl_activate_probe_cost)
            image.set_probe_active(handle, msg.active)
        return len(msg.handles)

    @staticmethod
    def _expand_threads(task) -> list:
        """A process's tasks: just itself, or master + OpenMP workers.

        The blocking suspend must stop *every* thread before the shared
        image is modified (Section 3.4, OpenMP applications).
        """
        group = getattr(task, "thread_group", None)
        if group is None:
            return [task]
        return list(group()) if callable(group) else list(group)

    def _suspend(self, msg: SuspendReq) -> Generator:
        names = msg.process_names if msg.process_names is not None else list(self.attached)
        tasks = []
        for n in names:
            tasks.extend(self._expand_threads(self._target(n)[0]))
        for task in tasks:
            task.request_suspend()
        if msg.blocking:
            # Blocking suspend: every thread must be stopped (parked, or
            # runtime-blocked and guaranteed to park on wake) before we
            # report success — the guarantee the paper relies on before
            # modifying a shared OpenMP image (Section 3.4).
            for task in tasks:
                if not task.is_stopped:
                    yield task.when_stopped()
        return len(tasks)

    def _resume(self, msg: ResumeReq) -> Generator:
        names = msg.process_names if msg.process_names is not None else list(self.attached)
        n_resumed = 0
        for n in names:
            for task in self._expand_threads(self._target(n)[0]):
                if task.is_suspend_requested:
                    task.resume()
                    n_resumed += 1
        return n_resumed
        yield  # pragma: no cover - generator marker

    def _set_variable(self, msg: SetVariableReq) -> Generator:
        _task, image = self._target(msg.process_name)
        image.write_variable(msg.variable, msg.value)
        return None
        yield  # pragma: no cover

    def _execute_snippet(self, msg: ExecuteSnippetReq) -> Generator:
        """Inferior call: evaluate a snippet once in the stopped target.

        The snippet runs against the target's address space (image
        variables, runtime registry) but its time is charged to the
        daemon — the target is stopped while it happens.  Blocking
        snippets (anything that yields an event) are rejected: an
        inferior call cannot wait on target progress.
        """
        from ..program import ProgramContext

        task, image = self._target(msg.process_name)
        if not task.is_stopped and task.proc is not None and task.proc.is_alive:
            raise RuntimeError(
                f"execute on {msg.process_name!r}: target must be stopped"
            )
        # A shadow context: the daemon's own clock, the target's image.
        daemon_task = _DaemonClock(self)
        shadow = ProgramContext(self.env, daemon_task, image, self.spec)
        gen = msg.snippet.execute(shadow)
        result = None
        if hasattr(gen, "send"):
            try:
                next(gen)
            except StopIteration as stop:
                result = stop.value
            else:
                raise RuntimeError(
                    "execute: snippet blocked; inferior calls cannot wait"
                )
        else:  # pragma: no cover - snippets are generator-based
            result = gen
        yield self.env.timeout(
            daemon_task.accrued + self.spec.dpcl_activate_probe_cost
        )
        return result

    def _detach(self, msg: DetachReq) -> Generator:
        n = len(self.attached)
        self.attached.clear()
        return n
        yield  # pragma: no cover

    def _target(self, name: str) -> tuple:
        target = self.attached.get(name)
        if target is None:
            raise KeyError(f"process {name!r} not attached on {self.node.hostname}")
        return target

    _handlers = {
        AttachReq: _attach,
        InstallProbeReq: _install,
        RemoveProbeReq: _remove,
        ActivateProbeReq: _activate,
        SuspendReq: _suspend,
        ResumeReq: _resume,
        SetVariableReq: _set_variable,
        ExecuteSnippetReq: _execute_snippet,
        DetachReq: _detach,
    }


class _DaemonClock:
    """Minimal task stand-in for inferior calls: absorbs snippet charges
    so they can be billed to the daemon afterwards."""

    def __init__(self, daemon: "CommDaemon") -> None:
        self.env = daemon.env
        self.name = f"inferior@{daemon.node.hostname}"
        self.accrued = 0.0
        self.sample_accum = None

    @property
    def now(self) -> float:
        return self.env.now + self.accrued

    def charge(self, dt: float) -> None:
        self.accrued += dt

    def flush(self):
        """No engine interaction for inferior calls: charges accrue and
        are billed to the daemon when the call returns."""
        return
        yield  # pragma: no cover - generator marker

    checkpoint = flush

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_DaemonClock {self.name} accrued={self.accrued:.6f}>"


def _dpcl_delay(cluster: Cluster, node: Node) -> float:
    """Sampled DPCL messaging delay from/to a node's daemon.

    The exponential jitter is the asynchrony the paper's Figure 6
    machinery exists to tolerate: daemons on different nodes see the
    same broadcast at visibly different times.
    """
    spec = cluster.spec
    jitter = cluster.rng.get(f"dpcl.{node.index}").exponential(spec.dpcl_jitter)
    return spec.dpcl_msg_latency * (1.0 + jitter)
