"""Wire messages between the DPCL client and its daemons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = [
    "DpclRequest",
    "ConnectReq",
    "AttachReq",
    "InstallProbeReq",
    "RemoveProbeReq",
    "ActivateProbeReq",
    "SuspendReq",
    "ResumeReq",
    "SetVariableReq",
    "ExecuteSnippetReq",
    "DetachReq",
    "Ack",
    "CallbackMsg",
]


@dataclass
class DpclRequest:
    """Base request: every request carries a client-assigned id and the
    channel responses should be sent back on."""

    req_id: int
    reply_to: Any  # simt Channel of the client
    reply_node: Any  # Node the client runs on


@dataclass
class ConnectReq(DpclRequest):
    """To a super daemon: authenticate the user, fork a comm daemon."""

    user: str = "user"


@dataclass
class AttachReq(DpclRequest):
    """To a comm daemon: attach to the named local processes."""

    process_names: List[str] = field(default_factory=list)


@dataclass
class InstallProbeReq(DpclRequest):
    """Install (and optionally activate) probes in attached processes.

    ``probes`` is a list of (process_name, function, where, snippet).
    ``register_names`` lists function names to VT_funcdef in each target
    before the probes go live (dynprof must register names with the VT
    library, Section 3.4).
    """

    probes: List[Tuple[str, str, str, Any]] = field(default_factory=list)
    register_names: List[Tuple[str, str]] = field(default_factory=list)
    activate: bool = True


@dataclass
class RemoveProbeReq(DpclRequest):
    """Remove previously installed probes by handle."""

    handles: List[Any] = field(default_factory=list)


@dataclass
class ActivateProbeReq(DpclRequest):
    """Toggle activation of installed probes."""

    handles: List[Any] = field(default_factory=list)
    active: bool = True


@dataclass
class SuspendReq(DpclRequest):
    """Suspend attached processes; blocking waits until they stop."""

    process_names: Optional[List[str]] = None  # None = all attached
    blocking: bool = True


@dataclass
class ResumeReq(DpclRequest):
    process_names: Optional[List[str]] = None


@dataclass
class SetVariableReq(DpclRequest):
    """Poke a variable in a target's address space (spin release)."""

    process_name: str = ""
    variable: str = ""
    value: Any = 1


@dataclass
class ExecuteSnippetReq(DpclRequest):
    """One-shot 'inferior call': run a snippet once in a stopped target.

    This is DPCL's execute-style probe: code evaluated immediately in
    the target's address space rather than installed at a probe point.
    Blocking snippets are rejected (an inferior call cannot wait)."""

    process_name: str = ""
    snippet: Any = None


@dataclass
class DetachReq(DpclRequest):
    """Detach from all targets; installed probes stay in place."""


@dataclass
class Ack:
    """Daemon response to one request."""

    req_id: int
    node_index: int
    payload: Any = None
    ok: bool = True
    error: str = ""
    #: Structured failure context ({"node", "request", "process",
    #: "reason"}) when ``ok`` is False; None on success.
    error_info: Optional[dict] = None


@dataclass
class CallbackMsg:
    """Message sent to the client by dynamically inserted code
    (``DPCL_callback`` in Figure 6)."""

    tag: str
    process_name: str
    data: Any = None
