"""repro.dpcl — the Dynamic Probe Class Library analog (Figure 5).

Super daemons (one per node) authenticate users and fork communication
daemons; communication daemons attach to local target processes and
perform the actual patching; a :class:`DpclClient` gives monitoring
tools an asynchronous request/ack API plus target-initiated callbacks
(``DPCL_callback``).
"""

from .client import (
    DaemonUnreachableError,
    DpclClient,
    DpclError,
    DpclRequestError,
    RequestPolicy,
    ensure_super_daemons,
)
from .daemon import CommDaemon, DaemonHost, SuperDaemon
from .messages import Ack, CallbackMsg

__all__ = [
    "DpclClient",
    "DpclError",
    "DpclRequestError",
    "DaemonUnreachableError",
    "RequestPolicy",
    "ensure_super_daemons",
    "SuperDaemon",
    "CommDaemon",
    "DaemonHost",
    "Ack",
    "CallbackMsg",
]
