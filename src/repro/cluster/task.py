"""Simulated OS tasks: the execution contexts of ranks and threads.

A :class:`Task` is one schedulable entity (an MPI process or an OpenMP
thread) bound to a core of a node.  It carries the machinery the rest of
the stack builds on:

* **Local compute accrual** — ``charge(dt)`` adds to a pending-time
  accumulator without touching the event queue; the accumulator is
  *flushed* (turned into engine timeouts) at interaction points.  This is
  the classic lookahead optimisation: a rank executing millions of
  instrumented function calls costs O(interactions) engine events, not
  O(calls).  ``task.now`` (= engine time + pending) is the clock trace
  timestamps are taken from, so timestamps stay consistent because every
  cross-task interaction flushes first.

* **Suspension** — DPCL-style suspend/resume via a :class:`Gate`.  A
  suspend request closes the gate; the task parks at its next flush or
  checkpoint (within one compute quantum), mirroring how ptrace stops
  land at kernel entry.  Suspension intervals are reported to an optional
  observer so the timeline view can show the paper's "region of
  inactivity".
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from ..simt import Environment, Event, Gate, Process, Timeout
from .machine import MachineSpec
from .node import Node

__all__ = ["Task", "TaskObserver"]


class TaskObserver:
    """Interface for observers of task lifecycle events (e.g. tracing)."""

    def on_suspended(self, task: "Task", start: float) -> None:
        """Called when the task actually parks on its suspend gate."""

    def on_resumed(self, task: "Task", start: float, end: float) -> None:
        """Called when the task leaves the gate; [start, end] was inactive."""


class Task:
    """One simulated OS task bound to a core of ``node``."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        name: str,
        spec: MachineSpec,
        bind_core: bool = True,
    ) -> None:
        self.env = env
        self.node = node
        self.name = name
        self.spec = spec
        self._pending = 0.0
        self._gate = Gate(env, open_=True, name=f"{name}.suspend")
        self._gate.on_park = lambda _gate, _n: self._notify_stop_watchers()
        self._suspend_requests = 0
        self._blocked_depth = 0
        self._stop_watchers: List[Event] = []
        self.proc: Optional[Process] = None
        self.observers: List[TaskObserver] = []
        #: Suspension intervals actually experienced: list of (start, end).
        self.suspensions: List[Tuple[float, float]] = []
        #: Total simulated seconds of useful compute charged.
        self.compute_time = 0.0
        #: Multiplier applied to every charge — a fault injector models a
        #: degraded core / noisy neighbour by setting this above 1.0.
        self.slowdown = 1.0
        #: When a sampling profiler is attached (ephemeral
        #: instrumentation), the executor accumulates per-function time
        #: here: {function name: seconds}.  None = sampling off (keeps
        #: the call hot path free of the bookkeeping).
        self.sample_accum = None
        self._bind_core = bind_core
        self._core_held = False
        node.register_task(self)

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """This task's local clock: engine time plus unflushed compute."""
        return self.env.now + self._pending

    @property
    def pending(self) -> float:
        """Accrued compute time not yet flushed to the engine."""
        return self._pending

    def charge(self, dt: float) -> None:
        """Accrue ``dt`` seconds of local compute (no engine interaction)."""
        if dt < 0:
            raise ValueError(f"negative charge {dt}")
        if self.slowdown != 1.0:
            dt *= self.slowdown
        self._pending += dt
        self.compute_time += dt

    def offset_clock(self, dt: float) -> None:
        """Advance the local clock without accounting it as compute
        (e.g. to align a forked thread with its master's clock)."""
        if dt < 0:
            raise ValueError(f"negative offset {dt}")
        self._pending += dt

    # -- lifecycle ------------------------------------------------------------

    def start(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn this task's body as a simulation process.

        Acquires (and holds for the task's lifetime) a core slot when
        ``bind_core`` — strict binding, the launcher is responsible for
        never oversubscribing a node.
        """
        if self.proc is not None:
            raise RuntimeError(f"task {self.name!r} already started")
        self.proc = self.env.process(
            self._run(generator), name=name or self.name
        )
        return self.proc

    def _run(self, generator: Generator) -> Generator:
        if self._bind_core:
            if self.node.free_cores == 0:
                raise RuntimeError(
                    f"node {self.node.hostname} oversubscribed launching "
                    f"{self.name!r} ({self.node.n_cores} cores all busy)"
                )
            yield self.node.cores.request()
            self._core_held = True
        try:
            result = yield from generator
            yield from self.flush()
            return result
        finally:
            if self._core_held:
                self.node.cores.release()
                self._core_held = False
            self.node.unregister_task(self)
            # The task is gone: anything waiting for it to stop is done.
            self._notify_stop_watchers_final()

    # -- compute & flushing ---------------------------------------------------

    def flush(self) -> Generator:
        """Turn pending compute into engine time, quantum by quantum.

        Parks on the suspend gate between quanta, so a suspend request
        takes effect within one quantum of simulated time.
        """
        quantum = self.spec.compute_quantum
        env = self.env
        while self._pending > 0.0:
            if not self._gate.is_open:
                yield from self._park()
            dt = self._pending if quantum <= 0 else min(self._pending, quantum)
            self._pending -= dt
            yield Timeout(env, dt)
        if not self._gate.is_open:
            yield from self._park()

    def compute(self, dt: float) -> Generator:
        """Charge and immediately flush ``dt`` seconds of compute."""
        self.charge(dt)
        yield from self.flush()

    def checkpoint(self) -> Generator:
        """Park if a suspend is pending; otherwise free of engine events.

        Called by blocking operations (MPI recv, barriers) after they
        complete, so a task suspended while blocked does not run on.
        """
        if not self._gate.is_open:
            yield from self._park()

    def blocked_wait(self, event: Event) -> Generator:
        """Wait on a runtime event, counting as *stopped* if suspended.

        A task blocked inside the runtime (message receive, barrier,
        work queue) executes no application instructions, so a blocking
        DPCL suspend may treat it as stopped; the checkpoint on wake
        guarantees it parks before touching application code again.
        """
        self._blocked_depth += 1
        self._notify_stop_watchers()
        try:
            value = yield event
        finally:
            self._blocked_depth -= 1
        yield from self.checkpoint()
        return value

    def _park(self) -> Generator:
        start = self.env.now
        for obs in self.observers:
            obs.on_suspended(self, start)
        yield self._gate.wait()
        end = self.env.now
        self.suspensions.append((start, end))
        for obs in self.observers:
            obs.on_resumed(self, start, end)

    # -- suspension (called by DPCL daemons) -----------------------------------

    @property
    def is_suspend_requested(self) -> bool:
        return self._suspend_requests > 0

    @property
    def is_parked(self) -> bool:
        """True if the task is currently stopped on its suspend gate."""
        return self._gate.parked > 0

    def request_suspend(self) -> None:
        """Ask the task to stop at its next checkpoint (nestable)."""
        self._suspend_requests += 1
        self._gate.close()
        self._notify_stop_watchers()

    def when_parked(self) -> Event:
        """Event that triggers once the task has actually stopped."""
        return self._gate.when_parked(1)

    @property
    def is_stopped(self) -> bool:
        """Parked, dead, or suspend-requested while runtime-blocked."""
        if self.proc is not None and not self.proc.is_alive:
            return True
        if self.is_parked:
            return True
        return self._suspend_requests > 0 and self._blocked_depth > 0

    def when_stopped(self) -> Event:
        """Event triggering once :attr:`is_stopped` holds (for blocking
        suspends: the target is guaranteed to execute no application
        code until resumed)."""
        event = Event(self.env)
        if self.is_stopped:
            event.succeed()
        else:
            self._stop_watchers.append(event)
        return event

    def _notify_stop_watchers(self) -> None:
        if self._stop_watchers and self.is_stopped:
            self._notify_stop_watchers_final()

    def _notify_stop_watchers_final(self) -> None:
        watchers, self._stop_watchers = self._stop_watchers, []
        for event in watchers:
            event.succeed()

    def resume(self) -> None:
        """Drop one suspend request; reopens the gate at zero requests."""
        if self._suspend_requests <= 0:
            raise RuntimeError(f"resume of non-suspended task {self.name!r}")
        self._suspend_requests -= 1
        if self._suspend_requests == 0:
            self._gate.open()

    # -- diagnostics ------------------------------------------------------------

    @property
    def total_suspended_time(self) -> float:
        return sum(end - start for start, end in self.suspensions)

    def __repr__(self) -> str:
        return (
            f"<Task {self.name} on {self.node.hostname} now={self.now:.6f} "
            f"pending={self._pending:.6f}>"
        )
