"""SMP node model: cores, local daemon channels, per-node RNG."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..simt import Channel, Environment, RandomStreams, Resource

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task

__all__ = ["Node"]


class Node:
    """One SMP node of the cluster.

    Owns a counted :class:`~repro.simt.sync.Resource` modelling its cores
    (a task holds a core slot for its lifetime; the paper never
    oversubscribes nodes) and a registry of the tasks currently placed on
    it, which the DPCL daemons use to find their local targets.
    """

    def __init__(
        self,
        env: Environment,
        index: int,
        cores: int,
        rng: RandomStreams,
    ) -> None:
        if cores < 1:
            raise ValueError("a node needs at least one core")
        self.env = env
        self.index = index
        self.hostname = f"node{index:03d}"
        self.cores = Resource(env, capacity=cores, name=f"{self.hostname}.cores")
        self.rng = rng.child(self.hostname)
        #: Tasks currently resident on this node, keyed by task name.
        self.tasks: Dict[str, "Task"] = {}
        #: Inbox used by the node's DPCL super daemon.
        self.superdaemon_inbox = Channel(env, name=f"{self.hostname}.superd")

    @property
    def n_cores(self) -> int:
        return self.cores.capacity

    @property
    def free_cores(self) -> int:
        return self.cores.capacity - self.cores.in_use

    def register_task(self, task: "Task") -> None:
        if task.name in self.tasks:
            raise ValueError(f"duplicate task name {task.name!r} on {self.hostname}")
        self.tasks[task.name] = task

    def unregister_task(self, task: "Task") -> None:
        self.tasks.pop(task.name, None)

    def local_tasks(self) -> List["Task"]:
        """Tasks on this node, in registration order."""
        return list(self.tasks.values())

    def __repr__(self) -> str:
        return f"<Node {self.hostname} cores={self.n_cores} tasks={len(self.tasks)}>"
