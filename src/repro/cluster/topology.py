"""Cluster assembly and rank placement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..simt import Environment, RandomStreams
from .interconnect import Interconnect
from .machine import MachineSpec, get_machine
from .node import Node

__all__ = ["Cluster", "Placement"]


@dataclass(frozen=True)
class Placement:
    """Where each rank of a job lives: ``nodes[rank]`` is its node."""

    nodes: tuple

    @property
    def n_procs(self) -> int:
        return len(self.nodes)

    def node_of(self, rank: int) -> Node:
        return self.nodes[rank]

    def nodes_used(self) -> List[Node]:
        """Distinct nodes, in first-use order."""
        seen, out = set(), []
        for node in self.nodes:
            if node.index not in seen:
                seen.add(node.index)
                out.append(node)
        return out


class Cluster:
    """A simulated cluster: nodes + interconnect + RNG, per MachineSpec.

    Only the nodes actually needed are materialised lazily — building all
    144 Power3 nodes for a 4-rank run would be wasted work.
    """

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec | str,
        seed: int = 0,
    ) -> None:
        self.env = env
        self.spec = get_machine(spec) if isinstance(spec, str) else spec
        self.rng = RandomStreams(seed).child(self.spec.name)
        self.interconnect = Interconnect(env, self.spec, self.rng)
        #: Optional :class:`repro.faults.FaultInjector` bound to this
        #: cluster (set by ``FaultInjector.install``; None = no faults).
        self.faults = None
        self._nodes: List[Optional[Node]] = [None] * self.spec.n_nodes

    def node(self, index: int) -> Node:
        """The node at ``index`` (materialised on first access)."""
        if not 0 <= index < self.spec.n_nodes:
            raise IndexError(
                f"node {index} out of range for {self.spec.name} "
                f"({self.spec.n_nodes} nodes)"
            )
        existing = self._nodes[index]
        if existing is None:
            existing = Node(self.env, index, self.spec.cores_per_node, self.rng)
            self._nodes[index] = existing
        return existing

    @property
    def materialized_nodes(self) -> List[Node]:
        return [n for n in self._nodes if n is not None]

    def place(
        self,
        n_procs: int,
        procs_per_node: Optional[int] = None,
        threads_per_proc: int = 1,
    ) -> Placement:
        """Block placement of ``n_procs`` ranks onto nodes.

        Each rank needs ``threads_per_proc`` cores (for its OpenMP team).
        By default packs ``cores_per_node // threads_per_proc`` ranks per
        node, like POE's default block allocation.
        """
        if n_procs < 1:
            raise ValueError("need at least one process")
        if threads_per_proc < 1:
            raise ValueError("need at least one thread per process")
        if threads_per_proc > self.spec.cores_per_node:
            raise ValueError(
                f"{threads_per_proc} threads per process exceeds the "
                f"{self.spec.cores_per_node} cores of a {self.spec.name} node"
            )
        if procs_per_node is None:
            procs_per_node = max(1, self.spec.cores_per_node // threads_per_proc)
        if procs_per_node * threads_per_proc > self.spec.cores_per_node:
            raise ValueError(
                f"{procs_per_node} procs x {threads_per_proc} threads "
                f"oversubscribes a {self.spec.cores_per_node}-core node"
            )
        n_nodes_needed = -(-n_procs // procs_per_node)  # ceil div
        if n_nodes_needed > self.spec.n_nodes:
            raise ValueError(
                f"job needs {n_nodes_needed} nodes but {self.spec.name} "
                f"has only {self.spec.n_nodes}"
            )
        nodes = tuple(
            self.node(rank // procs_per_node) for rank in range(n_procs)
        )
        return Placement(nodes=nodes)

    def __repr__(self) -> str:
        return f"<Cluster {self.spec.name} ({self.spec.n_nodes}x{self.spec.cores_per_node})>"
