"""Interconnect model: point-to-point transfer times with jitter.

The model is a LogP-style analytic one: a transfer costs a fixed one-way
latency plus ``size / bandwidth``, with intra-node (shared memory) and
inter-node (switch) parameters, and multiplicative jitter drawn from a
deterministic per-link RNG stream.  Link contention is *not* modelled —
the paper's experiments are latency-bound synchronisation patterns and
probe-overhead measurements, neither of which saturates the Colony
switch; DESIGN.md records this simplification.
"""

from __future__ import annotations


from ..simt import Channel, Environment, RandomStreams
from .machine import MachineSpec
from .node import Node

__all__ = ["Interconnect"]


class Interconnect:
    """Computes and schedules message deliveries between nodes."""

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        rng: RandomStreams,
    ) -> None:
        self.env = env
        self.spec = spec
        self.rng = rng.child("net")
        #: Count of messages sent (diagnostics).
        self.messages_sent = 0
        #: Total payload bytes moved (diagnostics).
        self.bytes_sent = 0
        #: Optional :class:`repro.faults.FaultInjector`; consulted only
        #: for ``control=True`` deliveries (DPCL daemon traffic).
        self.faults = None
        #: Control messages dropped by fault injection (diagnostics).
        self.control_drops = 0

    def transfer_time(self, src: Node, dst: Node, nbytes: int) -> float:
        """Sampled one-way transfer time from ``src`` to ``dst``.

        Deterministic given the RNG seed and draw order on the
        (src, dst) link stream.
        """
        if nbytes < 0:
            raise ValueError("negative message size")
        intra = src.index == dst.index
        base = self.spec.message_time(nbytes, intra_node=intra)
        if self.spec.net_jitter > 0.0 and not intra:
            stream = f"link.{src.index}.{dst.index}"
            factor = 1.0 + self.rng.get(stream).exponential(self.spec.net_jitter)
            base *= factor
        return base

    def deliver(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        channel: Channel,
        item: object,
        extra_delay: float = 0.0,
        control: bool = False,
    ) -> float:
        """Schedule ``item`` to appear on ``channel`` after the wire time.

        Returns the delivery delay that was charged (useful for tracing).
        ``control`` marks out-of-band tool traffic (DPCL requests, acks,
        callbacks); an installed fault injector may drop or delay it.
        """
        delay = self.transfer_time(src, dst, nbytes) + extra_delay
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if control and self.faults is not None:
            drop, added = self.faults.on_control_message(
                src.index, dst.index, nbytes, self.env.now
            )
            if drop:
                # The message hit the wire but never arrives.
                self.control_drops += 1
                return delay
            delay += added
        self.send_after(delay, channel, item)
        return delay

    def send_after(self, delay: float, channel: Channel, item: object) -> None:
        """Put ``item`` on ``channel`` after ``delay`` seconds."""
        if delay <= 0.0:
            channel.put(item)
            return
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _ev: channel.put(item))
