"""Machine specifications and the calibrated cost model.

A :class:`MachineSpec` bundles every constant the simulation charges time
for: network latency/bandwidth, Vampirtrace per-event costs, trampoline
overheads, DPCL daemon costs, and filesystem throughput.  Two presets
mirror the paper's testbeds:

* :data:`POWER3_SP` — the IBM Power3 clustered SMP (144 nodes x 8 x 375
  MHz, AIX 5.1, Colony switch) used for Figures 7, 8(a), 8(b) and 9.
* :data:`IA32_LINUX` — the 16-node Intel Pentium III Linux cluster used
  for Figure 8(c).

The absolute values are calibrated so the *shapes* of the paper's figures
hold (who wins, by roughly what factor, where curves bend); see
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["MachineSpec", "POWER3_SP", "IA32_LINUX", "get_machine", "MACHINES"]


@dataclass(frozen=True)
class MachineSpec:
    """Immutable description of a cluster and its cost constants.

    All times are seconds of simulated time; all sizes are bytes.
    """

    name: str
    #: Number of SMP nodes in the cluster.
    n_nodes: int
    #: Cores (processors) per node.
    cores_per_node: int
    #: Clock rate, for documentation/reporting only.
    cpu_mhz: int

    # ---- interconnect ----------------------------------------------------
    #: One-way small-message latency between two nodes.
    net_latency: float = 20e-6
    #: Point-to-point bandwidth between nodes.
    net_bandwidth: float = 350e6
    #: Latency of an intra-node (shared-memory) message.
    shm_latency: float = 1.2e-6
    #: Intra-node copy bandwidth.
    shm_bandwidth: float = 1.5e9
    #: Relative stddev of latency jitter (deterministic RNG stream).
    net_jitter: float = 0.08
    #: Per-message CPU overhead on the sender/receiver (MPI stack cost).
    mpi_overhead: float = 4e-6
    #: Message size (bytes) above which rendezvous protocol is used.
    eager_limit: int = 16 * 1024
    #: Per-rank fixed cost of MPI_Init (runtime setup before the sync).
    mpi_init_cost: float = 0.08

    # ---- Vampirtrace instrumentation library -----------------------------
    #: Cost of one *active* VT event (one VT_begin or one VT_end):
    #: timestamp read + record append into the trace buffer.
    vt_active_event_cost: float = 1.6e-6
    #: Cost of a *deactivated* statically inserted VT_begin/VT_end call:
    #: the call happens, a deactivation-table lookup is done, then returns.
    vt_lookup_cost: float = 1.0e-6
    #: Cost of registering a function name with VT_funcdef.
    vt_funcdef_cost: float = 12e-6
    #: Cost per VT event when also recording an MPI message record.
    vt_msg_event_cost: float = 2.2e-6
    #: Per-process fixed cost of rebuilding the deactivation table during
    #: a VT_confsync epoch change.
    confsync_apply_cost: float = 180e-6
    #: Per-process fixed cost of entering/leaving VT_confsync (epoch
    #: check, bookkeeping) even when nothing changes.
    confsync_base_cost: float = 60e-6
    #: Per-dissemination-stage bookkeeping cost of the VT configuration
    #: sync fabric, charged ceil(log2 P) times per confsync epoch.  The
    #: real VGV confsync ran over the tool's own channels, much slower
    #: than raw MPI — this constant carries that difference.
    confsync_stage_cost: float = 2.8e-3
    #: Per-function cost of aggregating statistics for a stats dump.
    stats_per_func_cost: float = 2.0e-6
    #: Bytes of one trace record on disk (used for trace-size accounting).
    trace_record_bytes: int = 24
    #: Records accumulated per process before the in-memory VT buffer is
    #: full and must be flushed to the shared filesystem mid-run
    #: (~2.4 MB at 24 B/record — a period-realistic buffer size).  Apps
    #: with low call intensity (Sweep3d, and the subset-only policies)
    #: never fill it, so they never pay mid-run trace I/O.
    vt_flush_threshold_records: int = 100_000
    #: Aggregate shared-filesystem bandwidth available for trace flushes;
    #: concurrent writers divide it, which is why complete profiling of a
    #: call-intensive app (Smg98 Full) melts down at 64 processes.
    trace_fs_bandwidth: float = 150e6

    # ---- dynamic instrumentation (trampolines) ---------------------------
    #: Jump at the probe point + base trampoline (register save/restore,
    #: relocated instruction, jump back), charged once per probe firing.
    tramp_base_cost: float = 0.35e-6
    #: Dispatch cost per mini-trampoline in the chain.
    tramp_mini_cost: float = 0.10e-6
    #: Cost per snippet primitive executed inside a mini-trampoline
    #: (function call, variable access, arithmetic node).
    snippet_op_cost: float = 0.05e-6

    # ---- DPCL ------------------------------------------------------------
    #: One-way latency of a client <-> communication-daemon message.
    dpcl_msg_latency: float = 900e-6
    #: Relative jitter on DPCL message latency (the paper's asynchrony).
    dpcl_jitter: float = 0.35
    #: Time for a super daemon to authenticate a user and fork a
    #: communication daemon.
    dpcl_connect_cost: float = 0.35
    #: Time for a communication daemon to attach (ptrace) to one process.
    dpcl_attach_cost: float = 0.18
    #: Daemon-side cost of parsing one process image (symbol table walk)
    #: before the first probe can be installed.
    dpcl_parse_image_cost: float = 0.9
    #: Daemon-side cost of installing one probe (allocate trampoline,
    #: generate code, patch the jump) into one process image.
    dpcl_install_probe_cost: float = 3.2e-3
    #: Daemon-side cost of removing one probe.
    dpcl_remove_probe_cost: float = 1.4e-3
    #: Daemon-side cost of (de)activating an installed probe.
    dpcl_activate_probe_cost: float = 0.5e-3
    #: Client-side cost per target process of downloading and navigating
    #: its program structure (DPCL source hierarchy / symbol table) —
    #: serial at the instrumenter, which is why Figure 9's MPI curves
    #: grow with the process count.
    dpcl_client_per_process_cost: float = 1.1
    #: Client-side per-symbol component of the program-structure walk.
    dpcl_client_per_symbol_cost: float = 2.5e-3

    # ---- OpenMP (Guide runtime analog) -------------------------------------
    #: Master-side fixed cost of forking a parallel region.
    omp_fork_base_cost: float = 2.5e-6
    #: Additional fork cost per team thread.
    omp_fork_per_thread_cost: float = 0.9e-6
    #: Per-thread cost of an OpenMP barrier.
    omp_barrier_cost: float = 1.4e-6
    #: Per-chunk dispatch cost of dynamic/guided worksharing schedules.
    omp_chunk_cost: float = 0.25e-6
    #: Cost of acquiring/releasing a critical-section lock.
    omp_lock_cost: float = 0.4e-6

    # ---- job launch (poe analog) ------------------------------------------
    #: Fixed cost of contacting the resource manager and setting up a job.
    poe_job_setup_cost: float = 1.6
    #: Per-process cost of spawning one task on a node.
    poe_spawn_cost: float = 0.11
    #: Per-node component of job launch (loading the image from the FS).
    poe_load_image_cost: float = 0.55

    # ---- filesystem (shared, e.g. GPFS) -----------------------------------
    fs_open_cost: float = 0.02
    fs_write_bandwidth: float = 60e6
    #: Fixed per-process cost of a stats/trace flush rendezvous.
    fs_sync_cost: float = 1.1e-3

    # ---- OS ---------------------------------------------------------------
    #: Scheduling quantum used to chunk long computations so that suspend
    #: requests land promptly (simulation granularity, not a cost).
    compute_quantum: float = 0.05
    #: Relative magnitude of per-chunk OS noise.
    os_noise: float = 0.0015

    def total_cores(self) -> int:
        """Total processor count of the machine."""
        return self.n_nodes * self.cores_per_node

    def message_time(self, nbytes: int, intra_node: bool) -> float:
        """Deterministic part of a point-to-point transfer time."""
        if intra_node:
            return self.shm_latency + nbytes / self.shm_bandwidth
        return self.net_latency + nbytes / self.net_bandwidth

    def with_overrides(self, **kw: float) -> "MachineSpec":
        """A copy of this spec with some constants replaced (for ablations)."""
        return replace(self, **kw)


#: The IBM Power3 clustered SMP of the paper (Section 4.1).
POWER3_SP = MachineSpec(
    name="power3-sp",
    n_nodes=144,
    cores_per_node=8,
    cpu_mhz=375,
)

#: The 16-node Intel IA32 Linux cluster of the paper (Section 5, Fig 8c).
#: Pentium III nodes on 100 Mb Ethernet-class fabric: higher per-byte cost,
#: but the small confsync payloads make the absolute sync times smaller
#: than on the (much larger) IBM runs, as the paper observes.
IA32_LINUX = MachineSpec(
    name="ia32-linux",
    n_nodes=16,
    cores_per_node=2,
    cpu_mhz=800,
    net_latency=55e-6,
    net_bandwidth=11e6,
    shm_latency=0.9e-6,
    shm_bandwidth=1.0e9,
    mpi_overhead=7e-6,
    vt_active_event_cost=1.1e-6,
    vt_lookup_cost=0.30e-6,
    confsync_apply_cost=120e-6,
    confsync_base_cost=40e-6,
    confsync_stage_cost=1.0e-3,
    dpcl_msg_latency=500e-6,
    fs_write_bandwidth=25e6,
)

MACHINES: Dict[str, MachineSpec] = {
    POWER3_SP.name: POWER3_SP,
    IA32_LINUX.name: IA32_LINUX,
}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by name."""
    try:
        return MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; known: {sorted(MACHINES)}"
        ) from None
