"""repro.cluster — machine models: nodes, cores, interconnect, tasks.

Provides the simulated hardware substrate: :class:`MachineSpec` cost
models (with :data:`POWER3_SP` and :data:`IA32_LINUX` presets matching
the paper's testbeds), :class:`Cluster`/:class:`Node` topology, the
:class:`Interconnect` transfer model, and :class:`Task` — the execution
context every MPI rank and OpenMP thread runs in.
"""

from .interconnect import Interconnect
from .machine import IA32_LINUX, MACHINES, POWER3_SP, MachineSpec, get_machine
from .node import Node
from .task import Task, TaskObserver
from .topology import Cluster, Placement

__all__ = [
    "MachineSpec",
    "POWER3_SP",
    "IA32_LINUX",
    "MACHINES",
    "get_machine",
    "Node",
    "Interconnect",
    "Cluster",
    "Placement",
    "Task",
    "TaskObserver",
]
