"""The discrete-event simulation engine.

:class:`Environment` owns the event queue and the simulation clock.  The
queue is a binary heap keyed by ``(time, priority, sequence)``; the
sequence counter makes ordering total and therefore the whole simulation
deterministic, which the test suite and the experiment harness rely on.
"""

from __future__ import annotations

import heapq
import math
from itertools import count
from typing import Any, List, Optional, Tuple

from ..obs import get as _obs_get
from ..obs.trace import get as _trace_get
from .errors import SimtError, StopSimulation
from .events import NORMAL, PENDING, Event, Process, ProcessGenerator, Timeout

__all__ = ["Environment", "Infinity"]

#: Convenience alias used for "run until the queue drains".
Infinity = float("inf")


class Environment:
    """A simulation environment: clock + event queue + process bookkeeping.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(1.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.5 and proc.value == "done"

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    strict:
        When True (default), a process that crashes with no observer
        (nothing joined on it) aborts the simulation with its exception
        instead of dying silently.  Mirrors the behaviour a real job
        launcher has when a rank aborts.
    """

    def __init__(self, initial_time: float = 0.0, strict: bool = True) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        self.strict = strict
        self._crash: Optional[Tuple[Process, BaseException]] = None
        #: Total number of events processed (exposed for perf diagnostics).
        self.events_processed = 0
        self._obs = _obs_get()
        self._trace = _trace_get()

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else Infinity

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise SimtError("step() on an empty event queue")
        if self._obs.enabled:
            # The queue only ever shrinks inside step(), so its length at
            # the top of a step is exactly the running high-water mark.
            self._obs.inc("simt.events")
            self._obs.gauge_max("simt.queue_depth_hwm", len(self._queue))
        if self._trace.enabled:
            # Drop-immune kernel-event count: lets a trace document be
            # sanity-checked against the engine's own bookkeeping.
            self._trace.count("simt.events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimtError("event scheduled in the past")
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if self._crash is not None:
            proc, exc = self._crash
            self._crash = None
            raise SimtError(
                f"unobserved process {proc.name!r} crashed at t={self._now}"
            ) from exc

    def _crashed(self, process: Process, exc: BaseException) -> None:
        """Record an unobserved process crash (strict mode)."""
        if self._crash is None:
            self._crash = (process, exc)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception if it failed).
        """
        stop_event: Optional[Event] = None
        stop_time = Infinity
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            # Mark the event as observed so a failing process awaited via
            # run(until=...) is not treated as an unobserved crash.
            stop_event.callbacks.append(lambda _ev: None)
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        try:
            while self._queue:
                if stop_event is not None and stop_event.callbacks is None:
                    break
                if self.peek() > stop_time:
                    self._now = stop_time
                    break
                self.step()
            else:
                # An identity test against the Infinity alias would let a
                # caller's own float("inf")/math.inf object through and
                # corrupt the clock to now == inf once the queue drains.
                if not math.isinf(stop_time) and stop_time > self._now:
                    self._now = stop_time
        except StopSimulation as stop:
            return stop.reason

        if stop_event is not None:
            if stop_event._value is PENDING:
                raise SimtError(
                    "run() terminated with the awaited event still pending "
                    "(deadlock: no scheduled event can trigger it)"
                )
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"
