"""The discrete-event simulation engine.

:class:`Environment` owns the event queue and the simulation clock.  The
queue is a *two-tier* scheduler that preserves the exact
``(time, priority, sequence)`` total order of the original flat binary
heap, which is what makes the whole simulation deterministic:

* **Tier 1 — same-key buckets.**  Every distinct ``(time, priority)``
  key owns a FIFO ring (:class:`collections.deque`) of events.  Because
  the historical sequence number was assigned at schedule time and only
  ever broke ties *within* one ``(time, priority)`` key, append order
  on the bucket *is* sequence order — the counter itself is gone.
  Same-timestamp events (zero-delay messages, barrier releases, bucket
  brigades of daemon acks) are drained in one batch without touching
  the heap at all.

* **Tier 2 — the key heap.**  Distinct keys that are not at the front
  live in a binary heap.  The heap only sees one entry per key, so a
  thousand events at one timestamp cost one push/pop instead of a
  thousand — the far-future overflow tier.

Cancellation is *lazy*: :meth:`Environment.cancel` flips a flag on the
event and the queue discards it when it surfaces, so withdrawing a
raced request timeout is O(1) instead of an O(n) heap surgery.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, Optional, Tuple

from ..obs import get as _obs_get
from ..obs.trace import get as _trace_get
from ..replay.hooks import get as _replay_get
from .errors import SimtError, StopSimulation
from .events import NORMAL, PENDING, Event, Process, ProcessGenerator, Timeout

__all__ = ["Environment", "Infinity"]

#: Convenience alias used for "run until the queue drains".
Infinity = float("inf")


class Environment:
    """A simulation environment: clock + event queue + process bookkeeping.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(1.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.5 and proc.value == "done"

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (seconds).
    strict:
        When True (default), a process that crashes with no observer
        (nothing joined on it) aborts the simulation with its exception
        instead of dying silently.  Mirrors the behaviour a real job
        launcher has when a rank aborts.
    """

    def __init__(self, initial_time: float = 0.0, strict: bool = True) -> None:
        self._now = float(initial_time)
        #: Tier 1: (time, priority) -> FIFO ring of events at that key.
        self._buckets: Dict[Tuple[float, int], Deque[Event]] = {}
        #: Tier 2: heap over the distinct keys present in ``_buckets``.
        self._keyheap: list = []
        #: Scheduled-and-not-cancelled event count (the live queue depth).
        self._live = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self._crash: Optional[Tuple[Process, BaseException]] = None
        #: Total number of events processed (exposed for perf diagnostics).
        self.events_processed = 0
        #: Events withdrawn via :meth:`cancel` (diagnostics).
        self.events_cancelled = 0
        self._obs = _obs_get()
        self._trace = _trace_get()
        self._replay = _replay_get()

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` triggering ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator, name=name)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        key = (self._now + delay, priority)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = bucket = deque()
            heappush(self._keyheap, key)
        bucket.append(event)
        self._live += 1

    def cancel(self, event: Event) -> bool:
        """Lazily withdraw a scheduled event from the queue.

        The event stays physically queued but is discarded unprocessed
        when it surfaces: its callbacks never run and the clock never
        advances on its account.  Returns True if the event was
        scheduled and has now been cancelled; False if it was never
        scheduled (still pending), was already processed, or was
        already cancelled.
        """
        if event._cancelled or event.callbacks is None or event._value is PENDING:
            return False
        event._cancelled = True
        self._live -= 1
        self.events_cancelled += 1
        if self._obs.enabled:
            self._obs.inc("simt.cancelled")
        return True

    def peek(self) -> float:
        """Time of the next *live* event, or ``inf`` if the queue is empty.

        Cancelled events at the front are purged on the way."""
        buckets = self._buckets
        keyheap = self._keyheap
        while self._live:
            key = keyheap[0]
            bucket = buckets[key]
            while bucket and bucket[0]._cancelled:
                bucket.popleft()
            if bucket:
                return key[0]
            heappop(keyheap)
            del buckets[key]
        return Infinity

    def _pop(self) -> Tuple[Tuple[float, int], Event]:
        """Pop the next live event (skipping cancelled ones)."""
        buckets = self._buckets
        keyheap = self._keyheap
        while self._live:
            key = keyheap[0]
            bucket = buckets[key]
            while bucket:
                event = bucket.popleft()
                if not event._cancelled:
                    if not bucket:
                        heappop(keyheap)
                        del buckets[key]
                    return key, event
            heappop(keyheap)
            del buckets[key]
        raise SimtError("step() on an empty event queue")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if self._obs.enabled and self._live:
            # The queue only ever shrinks inside step(), so its depth at
            # the top of a step is exactly the running high-water mark.
            self._obs.inc("simt.events")
            self._obs.gauge_max("simt.queue_depth_hwm", self._live)
        if self._trace.enabled and self._live:
            # Drop-immune kernel-event count: lets a trace document be
            # sanity-checked against the engine's own bookkeeping.
            self._trace.count("simt.events")
        key, event = self._pop()
        when = key[0]
        if when < self._now:  # pragma: no cover - guarded by schedule()
            raise SimtError("event scheduled in the past")
        self._now = when
        self._live -= 1
        self.events_processed += 1
        if self._replay.enabled:
            self._replay.on_event(event, when, key[1])
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if self._crash is not None:
            proc, exc = self._crash
            self._crash = None
            raise SimtError(
                f"unobserved process {proc.name!r} crashed at t={self._now}"
            ) from exc

    def _crashed(self, process: Process, exc: BaseException) -> None:
        """Record an unobserved process crash (strict mode)."""
        if self._crash is None:
            self._crash = (process, exc)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception if it failed).
        """
        stop_event: Optional[Event] = None
        stop_time = Infinity
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
            # Mark the event as observed so a failing process awaited via
            # run(until=...) is not treated as an unobserved crash.
            stop_event.callbacks.append(lambda _ev: None)
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # The hot loop.  Equivalent to ``while queue: step()`` but with
        # the per-event costs hoisted: observation/tracing enablement is
        # captured once per run() call, whole same-key buckets drain
        # without re-consulting the heap, and per-event counters
        # accumulate in locals that are flushed per batch.
        buckets = self._buckets
        keyheap = self._keyheap
        obs = self._obs
        trace = self._trace
        rep = self._replay
        obs_on = obs.enabled
        trace_on = trace.enabled
        rep_on = rep.enabled
        total = 0
        hwm = 0
        drained = False
        try:
            try:
                while self._live:
                    if stop_event is not None and stop_event.callbacks is None:
                        break
                    key = keyheap[0]
                    bucket = buckets[key]
                    # Purge cancelled events parked at the front.
                    while bucket and bucket[0]._cancelled:
                        bucket.popleft()
                    if not bucket:
                        heappop(keyheap)
                        del buckets[key]
                        continue
                    when = key[0]
                    if when > stop_time:
                        self._now = stop_time
                        break
                    self._now = when
                    if self._live > hwm:
                        hwm = self._live
                    # Drain the bucket.  New same-key schedules append
                    # behind us (correct: they carry later sequence
                    # positions); a new *smaller* key can only be same-
                    # time/lower-priority and shows up as a changed heap
                    # head, which we check after every event.
                    n = 0
                    try:
                        while bucket:
                            event = bucket.popleft()
                            if event._cancelled:
                                continue
                            self._live -= 1
                            n += 1
                            if rep_on:
                                rep.on_event(event, when, key[1])
                            callbacks, event.callbacks = event.callbacks, None
                            if callbacks:
                                for callback in callbacks:
                                    callback(event)
                            if self._crash is not None:
                                proc, exc = self._crash
                                self._crash = None
                                raise SimtError(
                                    f"unobserved process {proc.name!r} crashed "
                                    f"at t={self._now}"
                                ) from exc
                            if stop_event is not None and stop_event.callbacks is None:
                                break
                            if keyheap[0] is not key:
                                break
                    finally:
                        if n:
                            self.events_processed += n
                            total += n
                    if not bucket and keyheap[0] is key:
                        heappop(keyheap)
                        del buckets[key]
                else:
                    drained = True
            finally:
                if total:
                    if obs_on:
                        obs.inc("simt.events", total)
                        obs.gauge_max("simt.queue_depth_hwm", hwm)
                    if trace_on:
                        trace.count("simt.events", total)
        except StopSimulation as stop:
            return stop.reason

        if drained:
            # An identity test against the Infinity alias would let a
            # caller's own float("inf")/math.inf object through and
            # corrupt the clock to now == inf once the queue drains.
            if not math.isinf(stop_time) and stop_time > self._now:
                self._now = stop_time

        if stop_event is not None:
            if stop_event._value is PENDING:
                raise SimtError(
                    "run() terminated with the awaited event still pending "
                    "(deadlock: no scheduled event can trigger it)"
                )
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={self._live}>"
