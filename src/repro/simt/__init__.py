"""repro.simt — deterministic discrete-event simulation kernel.

This is the foundation layer of the reproduction: a small, fast,
generator-based DES engine (in the style of SimPy) with the extra
primitives the parallel-machine model needs (gates for ptrace-style
suspension, channels for daemon traffic, named RNG streams for
reproducible jitter).
"""

from .engine import Environment, Infinity
from .errors import (
    DeadProcessError,
    EventRescheduleError,
    Interrupt,
    SimtError,
    StopSimulation,
)
from .events import NORMAL, URGENT, AllOf, AnyOf, Event, Process, Timeout
from .rng import RandomStreams
from .sync import Channel, Gate, Latch, Resource

__all__ = [
    "Environment",
    "Infinity",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "URGENT",
    "NORMAL",
    "Channel",
    "Gate",
    "Latch",
    "Resource",
    "RandomStreams",
    "SimtError",
    "StopSimulation",
    "Interrupt",
    "DeadProcessError",
    "EventRescheduleError",
]
