"""Synchronisation primitives built on the event kernel.

These are the building blocks the machine simulation uses:

* :class:`Channel` — an unbounded FIFO of items with blocking ``get``;
  carries DPCL daemon traffic and MPI transport frames.
* :class:`Gate` — a boolean barrier that processes park on while closed;
  implements ptrace-style suspend/resume of simulated tasks.
* :class:`Resource` — counted resource with FIFO queueing; models CPU
  cores when a node is oversubscribed.
* :class:`Latch` — a countdown event; handy for "all N daemons acked".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .engine import Environment
from .events import Event

__all__ = ["Channel", "Gate", "Resource", "Latch"]


class Channel:
    """An unbounded FIFO message channel.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    oldest item once one is available.  Items are delivered in put order,
    and blocked getters are served in arrival order (FIFO fairness).
    """

    def __init__(self, env: Environment, name: str = "channel") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting(self) -> int:
        """Number of processes currently blocked in :meth:`get`."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event yielding the next item (may already be available)."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop and return an item, or None if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending getter (e.g. a timed-out request wait).

        Returns True if ``event`` was still queued and has been removed;
        False if it was never ours or has already been served — in that
        case the caller must consume ``event.value`` itself or the item
        is lost.
        """
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def peek_all(self) -> List[Any]:
        """Snapshot of queued items (for inspection/testing)."""
        return list(self._items)


class Gate:
    """A reusable open/closed gate, used to suspend and resume tasks.

    While the gate is *closed*, processes that call :meth:`wait` park on
    it; :meth:`open` releases all of them at once.  The gate also counts
    parked processes and exposes a ``parked_event`` so a controller can
    implement a *blocking* suspend ("wait until all targets have actually
    stopped") the way DPCL's blocking suspend does.
    """

    def __init__(self, env: Environment, open_: bool = True, name: str = "gate") -> None:
        self.env = env
        self.name = name
        self._open = open_
        self._waiters: List[Event] = []
        #: (threshold, event) pairs from :meth:`when_parked`.
        self._parked_watchers: List[tuple] = []
        #: Called with (gate, parked_count) whenever a process parks.
        self.on_park: Optional[Callable[["Gate", int], None]] = None

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def parked(self) -> int:
        """Number of processes currently parked on the closed gate."""
        return len(self._waiters)

    def close(self) -> None:
        """Close the gate; subsequent :meth:`wait` calls park."""
        self._open = False

    def open(self) -> None:
        """Open the gate, releasing every parked process."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def wait(self) -> Event:
        """Event that triggers immediately if open, else when opened."""
        event = Event(self.env)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
            parked = len(self._waiters)
            if self.on_park is not None:
                self.on_park(self, parked)
            still_waiting = []
            for threshold, watcher in self._parked_watchers:
                if parked >= threshold:
                    watcher.succeed(parked)
                else:
                    still_waiting.append((threshold, watcher))
            self._parked_watchers = still_waiting
        return event

    def when_parked(self, n: int) -> Event:
        """Event triggering once at least ``n`` processes are parked."""
        event = Event(self.env)
        if self.parked >= n:
            event.succeed(self.parked)
        else:
            self._parked_watchers.append((n, event))
        return event


class Resource:
    """A counted resource with FIFO queueing (e.g. CPU cores on a node).

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Withdraw a queued request (mirrors :meth:`Channel.cancel`).

        A process that is interrupted while parked on :meth:`request`
        must withdraw the request, or a later :meth:`release` would hand
        the slot to an event nobody is waiting on and leak it forever.
        Returns True if ``event`` was still queued and has been removed;
        False if it was never queued or has already been granted — in
        that case the caller holds the slot and must ``release()`` it.
        """
        try:
            self._queue.remove(event)
            return True
        except ValueError:
            return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        # Hand the slot to the oldest waiter that can still take it.
        # A queued event that is already triggered (its waiter was
        # interrupted and the event succeeded/failed through some other
        # path, or it was withdrawn without cancel()) will never
        # release() the slot back — granting it would leak the slot
        # forever, so skip such dead waiters.
        while self._queue:
            waiter = self._queue.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self._in_use -= 1


class Latch:
    """A countdown latch: triggers its event after ``n`` countdowns."""

    def __init__(self, env: Environment, n: int) -> None:
        if n < 0:
            raise ValueError("latch count must be >= 0")
        self.env = env
        self.remaining = n
        self.event = Event(env)
        if n == 0:
            self.event.succeed(0)

    def count_down(self, payload: Any = None) -> None:
        if self.remaining <= 0:
            raise RuntimeError("latch already released")
        self.remaining -= 1
        if self.remaining == 0:
            self.event.succeed(payload)

    def wait(self) -> Event:
        return self.event
