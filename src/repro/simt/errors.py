"""Exception types used by the :mod:`repro.simt` simulation kernel."""

from __future__ import annotations

from typing import Any


class SimtError(Exception):
    """Base class for all simulation-kernel errors."""


class StopSimulation(SimtError):
    """Raised internally to halt :meth:`Environment.run` early.

    Users normally stop a simulation by passing ``until=`` to
    :meth:`repro.simt.engine.Environment.run`; this exception exists for
    programmatic early exit (e.g. a watchdog process).
    """

    def __init__(self, reason: Any = None) -> None:
        super().__init__(reason)
        self.reason = reason


class Interrupt(SimtError):
    """Thrown *into* a process generator by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current yield
    point.  ``cause`` carries an arbitrary payload describing why the
    interrupt happened (e.g. a suspend request).  The event the process was
    waiting on is *not* cancelled; the process may re-yield it to keep
    waiting.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The payload passed to :meth:`Process.interrupt`."""
        return self.args[0]


class DeadProcessError(SimtError):
    """An operation was attempted on a process that already terminated."""


class EventRescheduleError(SimtError):
    """An already-triggered event was triggered (succeed/fail) again."""
