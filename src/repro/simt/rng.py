"""Deterministic, named random-number streams.

Every stochastic element of the simulation (network latency jitter, DPCL
daemon skew, OS noise) draws from a *named* stream derived from a single
root seed, so that

* the same seed reproduces the same run bit-for-bit, and
* adding a new consumer of randomness does not perturb existing streams
  (streams are independent, keyed by name, not by draw order).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from (root seed, stream name)."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A factory of independent, reproducible numpy Generators.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("net.node3")
    >>> b = streams.get("net.node4")
    >>> a is streams.get("net.node3")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def uniform(self, name: str, low: float, high: float) -> float:
        """One draw from U[low, high) on stream ``name``."""
        return float(self.get(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream ``name``."""
        return float(self.get(name).exponential(mean))

    def child(self, prefix: str) -> "RandomStreams":
        """A namespaced view that prefixes every stream name.

        Children share the parent's root seed, so ``parent.get("a.b")`` and
        ``parent.child("a").get("b")`` are the *same* stream.
        """
        return _PrefixedStreams(self, prefix)


class _PrefixedStreams(RandomStreams):
    """Internal: RandomStreams view with a fixed name prefix."""

    def __init__(self, parent: RandomStreams, prefix: str) -> None:
        self.seed = parent.seed
        self._parent = parent
        self._prefix = prefix

    @property
    def _streams(self) -> Dict[str, np.random.Generator]:  # type: ignore[override]
        return self._parent._streams

    def get(self, name: str) -> np.random.Generator:
        return self._parent.get(f"{self._prefix}.{name}")

    def child(self, prefix: str) -> "RandomStreams":
        return _PrefixedStreams(self._parent, f"{self._prefix}.{prefix}")
