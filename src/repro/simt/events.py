"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-based design (as popularised by
SimPy): simulated activities are Python generators that ``yield`` events;
the :class:`~repro.simt.engine.Environment` resumes them when those events
trigger.  Everything in the parallel-machine simulation — MPI ranks, OpenMP
threads, DPCL daemons, the dynprof tool itself — is ultimately a
:class:`Process` yielding these events.

Determinism: events are ordered by ``(time, priority, sequence)`` where the
sequence number is a monotonically increasing integer assigned at schedule
time, so two runs of the same program produce identical event orderings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional

from .errors import DeadProcessError, EventRescheduleError, Interrupt, StopSimulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "ProcessGenerator",
]

#: Sentinel for "event has not triggered yet".
PENDING = object()

#: Scheduling priority for urgent bookkeeping events (interrupts, aborts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A condition that may happen at a point in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling it on the environment's queue.  When the
    environment pops it, the event is *processed*: all registered callbacks
    run, in registration order.

    Processes wait for an event by ``yield``-ing it.  Multiple processes may
    wait on the same event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (with the event) once processed; ``None`` after.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Set by Environment.cancel(); the queue discards the event
        #: unprocessed when it surfaces (lazy deletion).
        self._cancelled: bool = False

    # -- state predicates -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the queue (or past it)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when failed).

        Raises :class:`AttributeError` while the event is still pending.
        """
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventRescheduleError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiting processes get ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise EventRescheduleError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (chaining helper).

        Enforces the same state machine as :meth:`succeed`/:meth:`fail`:
        the source must already be triggered (otherwise ``self`` would be
        scheduled with ``_value is PENDING``, corrupting the deadlock
        detection in ``run(until=...)``) and ``self`` must not be.
        """
        if event._value is PENDING:
            raise ValueError(
                f"cannot chain from {event!r}: the source event has not "
                f"been triggered yet"
            )
        if self._value is not PENDING:
            raise EventRescheduleError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at 0x{id(self):x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__: timeouts are the single most common
        # event on the hot path, and they are born triggered.
        self.env = env
        self.callbacks = []
        self._cancelled = False
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at 0x{id(self):x}>"


class Initialize(Event):
    """Internal: kicks off a newly created :class:`Process` immediately."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """Wraps a generator and resumes it as the events it yields trigger.

    A process is itself an event: it triggers when the generator returns
    (success, value = return value) or raises (failure).  Other processes
    can therefore ``yield`` a process to join on it.
    """

    __slots__ = ("_generator", "_target", "name", "_shim")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running).
        self._target: Optional[Event] = None
        #: Pooled zero-delay resume event, reused every time the process
        #: yields an already-processed event (see _resume).
        self._shim: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for (None if active)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process is waiting on stays subscribed-to until the
        interrupt is delivered, at which point the process is detached from
        it; the process may re-yield the same event to resume waiting.
        Interrupting a dead process raises :class:`DeadProcessError`.
        """
        if not self.is_alive:
            raise DeadProcessError(f"{self!r} has terminated")
        if self._target is None:
            raise RuntimeError(
                f"{self!r} is not waiting on any event (cannot interrupt the "
                f"currently-running process)"
            )
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.callbacks.append(self._deliver_interrupt)
        env.schedule(interrupt_event, priority=URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # terminated between schedule and delivery
            return
        target = self._target
        if target is not None:
            if target is self._shim:
                # The pooled shim is already queued with our resume; it
                # must neither fire nor be reused while still queued.
                self.env.cancel(target)
                self._shim = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - already detached
                    pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            env.schedule(self)
            return
        except StopSimulation:
            env._active_process = None
            raise
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            env.schedule(self)
            if not self.callbacks and env.strict:
                # Nobody is joining on this process: surface the crash so it
                # is not silently swallowed.
                env._crashed(self, exc)
            return
        env._active_process = None
        if not isinstance(next_event, Event):
            raise TypeError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.callbacks is None:
            # Already processed: resume immediately via a zero-delay
            # shim event.  The shim is pooled per process — by the time
            # this branch can run again the previous shim has left the
            # queue (it is what resumed us), so reuse is safe; the
            # interrupt path cancels and drops a shim that might still
            # be queued.
            shim = self._shim
            if shim is None or shim.callbacks is not None:
                shim = self._shim = Event(env)
            shim._ok = next_event._ok
            shim._value = next_event._value
            shim.callbacks = [self._resume]
            env.schedule(shim, priority=URGENT)
            self._target = shim
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'dead'}>"


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and self._value is PENDING:
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev._value is not PENDING and ev.callbacks is None
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers once *all* constituent events have been processed.

    Fails immediately (with the first failure) if any constituent fails.
    Value is a dict mapping event -> value for the completed events.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers once *any* constituent event has been processed."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed({event: event._value})
