"""``repro worker`` — a pull-based sweep worker for other hosts.

One worker process connects to a
:class:`~repro.svc.executors.SocketWorkerBackend` (the runner's
``--backend socket:HOST:PORT``), then loops: *pull* a point, run it
with the same :func:`~repro.runner.worker.execute_point` every other
backend uses, send the envelope back.  Points arrive as their
canonical JSON (rebuilt via :meth:`SweepPoint.from_canonical`), so the
worker needs nothing but the ``repro`` package — no shared filesystem,
no preloaded grid.

Points run on the worker's main thread, so per-point ``SIGALRM``
timeouts work exactly as they do under the process pool.  A worker
that loses its server (network blip, sweep finished) exits by default,
or keeps retrying the connection with ``--reconnect``.

``SIGINT``/``SIGTERM`` shut the worker down *gracefully*: a signal
that lands while a point is executing lets the point finish and its
envelope reach the server (work already performed is never discarded);
a signal that lands while the worker is idle — blocked in a pull,
redial or backoff sleep — interrupts it immediately.  Either way the
worker exits 0 with its usual summary line.
"""

from __future__ import annotations

import signal
import socket
import sys
import time
from typing import List, Optional

from ..runner.point import SweepPoint
from ..runner.worker import execute_point
from . import wire

__all__ = ["run_worker", "worker_main", "fetch_stats", "StopFlag"]


class StopFlag:
    """Cooperative shutdown state shared with the signal handlers.

    ``requested`` flips once a shutdown signal arrives; the handler
    additionally interrupts the main thread (``KeyboardInterrupt``)
    only while ``interruptible`` is True — i.e. while the worker is
    idle.  During point execution the flag alone is set, so the point
    runs to completion and its result is delivered before exit.
    """

    __slots__ = ("requested", "interruptible")

    def __init__(self) -> None:
        self.requested = False
        self.interruptible = True


def fetch_stats(
    host: str, port: int, connect_timeout: float = 10.0
) -> dict:
    """Ask a running socket backend for its live server-side counters.

    Speaks the same hello/welcome handshake as a worker, then a single
    ``stats`` frame; returns the server's stats dict (workers, queued,
    served, stats_requests).  Used by monitoring scripts that want the
    sweep server's state without joining it as a worker.
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    try:
        wire.send_message(sock, {"op": "hello", "version": 1})
        welcome = wire.recv_message(sock)
        if not welcome or welcome.get("op") != "welcome":
            raise wire.WireError("server did not welcome us")
        wire.send_message(sock, {"op": "stats"})
        reply = wire.recv_message(sock)
        if not reply or reply.get("op") != "stats":
            raise wire.WireError("server did not answer the stats frame")
        return reply["stats"]
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _serve_connection(
    sock: socket.socket, max_points: Optional[int], tally: List[int],
    stop: Optional[StopFlag] = None,
) -> int:
    """Pull/run/reply until shutdown or EOF; returns points executed.

    Every executed point is also added to ``tally[0]`` *immediately*,
    so the caller's count survives a connection that dies on a later
    frame — a server that exits without the closing shutdown handshake
    (sweep done, process gone) must not erase work already performed.
    """
    wire.send_message(sock, {"op": "hello", "version": 1})
    welcome = wire.recv_message(sock)
    if not welcome or welcome.get("op") != "welcome":
        raise wire.WireError("server did not welcome us")
    done = 0
    while max_points is None or done < max_points:
        if stop is not None and stop.requested:
            break
        wire.send_message(sock, {"op": "pull"})
        msg = wire.recv_message(sock)
        if msg is None or msg.get("op") == "shutdown":
            break
        if msg.get("op") != "point":
            raise wire.WireError(f"unexpected server message {msg.get('op')!r}")
        point = SweepPoint.from_canonical(msg["point"])
        spec = msg.get("spec") or {}
        if stop is not None:
            # The point must run to completion and its envelope must
            # reach the server even if a shutdown signal lands now.
            stop.interruptible = False
        try:
            envelope = execute_point(
                point,
                timeout=spec.get("timeout"),
                collect_obs=bool(spec.get("collect_obs", False)),
                collect_trace=bool(spec.get("collect_trace", False)),
                trace_detail=spec.get("trace_detail", "fine"),
                trace_capacity=int(spec.get("trace_capacity", 65536)),
                trace_compact=bool(spec.get("trace_compact", False)),
                obs_sample=spec.get("obs_sample"),
                record_order=bool(spec.get("record_order", False)),
                replay_log=msg.get("replay_log"),
            )
            wire.send_message(sock, {"op": "result", "envelope": envelope})
        finally:
            if stop is not None:
                stop.interruptible = True
        done += 1
        tally[0] += 1
    return done


def run_worker(
    host: str,
    port: int,
    max_points: Optional[int] = None,
    reconnect: bool = False,
    reconnect_delay: float = 1.0,
    connect_timeout: float = 10.0,
    stop: Optional[StopFlag] = None,
) -> int:
    """Serve one server until it goes away; returns points executed.

    With ``reconnect`` the worker survives server restarts (it keeps
    dialing until the server answers again), which is the deployment
    mode for long-lived worker hosts.  With ``stop`` (a
    :class:`StopFlag`, typically driven by the signal handlers
    :func:`worker_main` installs) the loop drains gracefully: an
    in-flight point finishes and its result is sent before return.
    """
    tally = [0]
    try:
        while True:
            if stop is not None and stop.requested:
                return tally[0]
            total = tally[0]
            try:
                sock = socket.create_connection((host, port), timeout=connect_timeout)
            except OSError:
                if not reconnect:
                    raise
                time.sleep(reconnect_delay)
                continue
            sock.settimeout(None)
            try:
                _serve_connection(
                    sock, None if max_points is None else max_points - total,
                    tally, stop=stop,
                )
            except (wire.WireError, OSError):
                pass
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if stop is not None and stop.requested:
                return tally[0]
            if not reconnect:
                return tally[0]
            if max_points is not None and tally[0] >= max_points:
                return tally[0]
            time.sleep(reconnect_delay)
    except KeyboardInterrupt:
        # The handler only interrupts while idle (blocked in a pull,
        # redial or sleep) — no work in flight, nothing to lose.
        return tally[0]


def worker_main(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments worker`` — join a sweep as a remote worker."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-experiments worker",
        description="Pull sweep points from a runner's socket backend "
                    "and execute them here (see docs/service.md).",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the runner's --backend socket address")
    parser.add_argument("--max-points", type=int, default=None, metavar="N",
                        help="exit after executing N points")
    parser.add_argument("--reconnect", action="store_true",
                        help="keep redialing when the server goes away")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-session summary line")
    args = parser.parse_args(argv)

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect {args.connect!r} is not HOST:PORT")

    stop = StopFlag()

    def _on_signal(signum: int, frame: object) -> None:
        stop.requested = True
        if stop.interruptible:
            raise KeyboardInterrupt

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        n = run_worker(host, int(port_text),
                       max_points=args.max_points,
                       reconnect=args.reconnect,
                       stop=stop)
    except OSError as exc:
        print(f"repro worker: cannot reach {args.connect}: {exc}",
              file=sys.stderr)
        return 1
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    if stop.requested and not args.quiet:
        print("repro worker: shutdown signal received, exiting cleanly",
              file=sys.stderr)
    if not args.quiet:
        print(f"repro worker: executed {n} point(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(worker_main())
