"""``repro worker`` — a pull-based sweep worker for other hosts.

One worker process connects to a
:class:`~repro.svc.executors.SocketWorkerBackend` (the runner's
``--backend socket:HOST:PORT``), then loops: *pull* a point, run it
with the same :func:`~repro.runner.worker.execute_point` every other
backend uses, send the envelope back.  Points arrive as their
canonical JSON (rebuilt via :meth:`SweepPoint.from_canonical`), so the
worker needs nothing but the ``repro`` package — no shared filesystem,
no preloaded grid.

Points run on the worker's main thread, so per-point ``SIGALRM``
timeouts work exactly as they do under the process pool.  A worker
that loses its server (network blip, sweep finished) exits by default,
or keeps retrying the connection with ``--reconnect``.
"""

from __future__ import annotations

import socket
import sys
import time
from typing import List, Optional

from ..runner.point import SweepPoint
from ..runner.worker import execute_point
from . import wire

__all__ = ["run_worker", "worker_main", "fetch_stats"]


def fetch_stats(
    host: str, port: int, connect_timeout: float = 10.0
) -> dict:
    """Ask a running socket backend for its live server-side counters.

    Speaks the same hello/welcome handshake as a worker, then a single
    ``stats`` frame; returns the server's stats dict (workers, queued,
    served, stats_requests).  Used by monitoring scripts that want the
    sweep server's state without joining it as a worker.
    """
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    try:
        wire.send_message(sock, {"op": "hello", "version": 1})
        welcome = wire.recv_message(sock)
        if not welcome or welcome.get("op") != "welcome":
            raise wire.WireError("server did not welcome us")
        wire.send_message(sock, {"op": "stats"})
        reply = wire.recv_message(sock)
        if not reply or reply.get("op") != "stats":
            raise wire.WireError("server did not answer the stats frame")
        return reply["stats"]
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _serve_connection(
    sock: socket.socket, max_points: Optional[int], tally: List[int]
) -> int:
    """Pull/run/reply until shutdown or EOF; returns points executed.

    Every executed point is also added to ``tally[0]`` *immediately*,
    so the caller's count survives a connection that dies on a later
    frame — a server that exits without the closing shutdown handshake
    (sweep done, process gone) must not erase work already performed.
    """
    wire.send_message(sock, {"op": "hello", "version": 1})
    welcome = wire.recv_message(sock)
    if not welcome or welcome.get("op") != "welcome":
        raise wire.WireError("server did not welcome us")
    done = 0
    while max_points is None or done < max_points:
        wire.send_message(sock, {"op": "pull"})
        msg = wire.recv_message(sock)
        if msg is None or msg.get("op") == "shutdown":
            break
        if msg.get("op") != "point":
            raise wire.WireError(f"unexpected server message {msg.get('op')!r}")
        point = SweepPoint.from_canonical(msg["point"])
        spec = msg.get("spec") or {}
        envelope = execute_point(
            point,
            timeout=spec.get("timeout"),
            collect_obs=bool(spec.get("collect_obs", False)),
            collect_trace=bool(spec.get("collect_trace", False)),
            trace_detail=spec.get("trace_detail", "fine"),
            trace_capacity=int(spec.get("trace_capacity", 65536)),
            trace_compact=bool(spec.get("trace_compact", False)),
            obs_sample=spec.get("obs_sample"),
        )
        wire.send_message(sock, {"op": "result", "envelope": envelope})
        done += 1
        tally[0] += 1
    return done


def run_worker(
    host: str,
    port: int,
    max_points: Optional[int] = None,
    reconnect: bool = False,
    reconnect_delay: float = 1.0,
    connect_timeout: float = 10.0,
) -> int:
    """Serve one server until it goes away; returns points executed.

    With ``reconnect`` the worker survives server restarts (it keeps
    dialing until the server answers again), which is the deployment
    mode for long-lived worker hosts.
    """
    tally = [0]
    while True:
        total = tally[0]
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
        except OSError:
            if not reconnect:
                raise
            time.sleep(reconnect_delay)
            continue
        sock.settimeout(None)
        try:
            _serve_connection(
                sock, None if max_points is None else max_points - total, tally
            )
        except (wire.WireError, OSError):
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if not reconnect:
            return tally[0]
        if max_points is not None and tally[0] >= max_points:
            return tally[0]
        time.sleep(reconnect_delay)


def worker_main(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments worker`` — join a sweep as a remote worker."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-experiments worker",
        description="Pull sweep points from a runner's socket backend "
                    "and execute them here (see docs/service.md).",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the runner's --backend socket address")
    parser.add_argument("--max-points", type=int, default=None, metavar="N",
                        help="exit after executing N points")
    parser.add_argument("--reconnect", action="store_true",
                        help="keep redialing when the server goes away")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-session summary line")
    args = parser.parse_args(argv)

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect {args.connect!r} is not HOST:PORT")
    try:
        n = run_worker(host, int(port_text),
                       max_points=args.max_points,
                       reconnect=args.reconnect)
    except OSError as exc:
        print(f"repro worker: cannot reach {args.connect}: {exc}",
              file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"repro worker: executed {n} point(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(worker_main())
