"""The ``repro serve-cache`` daemon — a sweep-result cache over HTTP.

A deliberately small stdlib ``http.server`` wrapper around any
:class:`~repro.svc.backends.CacheBackend`, so several machines (or
several tenants on one machine) can share one content-addressed result
store.  Entries are immutable — the key is a hash of everything that
determines the payload — so the protocol needs no validators, ETags or
invalidation: a GET either returns the entry verbatim or 404s.

Routes::

    GET    /cache/<key>   entry JSON, or 404 on miss
    PUT    /cache/<key>   store entry JSON (body), 204
    DELETE /cache/<key>   drop one entry, 204
    GET    /stats         {"entries": N, "gets": ..., "puts": ..., ...}
    GET    /metrics       the same counters in Prometheus text exposition
    POST   /clear         {"cleared": N}
    GET    /healthz       "ok"

Keys must be 64 lowercase hex characters (a SHA-256 digest); anything
else is a 400.  Malformed PUT bodies are rejected with 400 — the daemon
never stores an entry :func:`~repro.svc.backends.validate_entry` would
later discard.
"""

from __future__ import annotations

import json
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..obs import prom
from .backends import CacheBackend, MemoryBackend, make_cache_backend, validate_entry

__all__ = ["CacheDaemon", "serve_cache", "serve_cache_main", "DEFAULT_PORT"]

DEFAULT_PORT = 8750

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class _Handler(BaseHTTPRequestHandler):
    server: "CacheDaemon"  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _reply(self, status: int, doc: Any = None) -> None:
        body = b""
        if doc is not None:
            body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _key(self) -> Optional[str]:
        if not self.path.startswith("/cache/"):
            return None
        key = self.path[len("/cache/"):]
        return key if _KEY_RE.match(key) else None

    # -- verbs ----------------------------------------------------------------

    def do_GET(self) -> None:
        srv = self.server
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
            return
        if self.path == "/stats":
            self._reply(200, srv.stats())
            return
        if self.path == "/metrics":
            self._reply_text(200, srv.metrics_text(), prom.CONTENT_TYPE)
            return
        key = self._key()
        if key is None:
            self._reply(400, {"error": "bad path or key"})
            return
        srv.count("gets")
        entry = srv.backend.get(key)
        if entry is None:
            self._reply(404, {"error": "miss"})
        else:
            self._reply(200, entry)

    def do_PUT(self) -> None:
        srv = self.server
        key = self._key()
        if key is None:
            self._reply(400, {"error": "bad path or key"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            entry = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "unparseable body"})
            return
        if not validate_entry(key, entry):
            self._reply(400, {"error": "malformed entry"})
            return
        srv.count("puts")
        srv.backend.put_entry(key, entry)
        self._reply(204)

    def do_DELETE(self) -> None:
        srv = self.server
        key = self._key()
        if key is None:
            self._reply(400, {"error": "bad path or key"})
            return
        srv.count("deletes")
        srv.backend.discard(key)
        self._reply(204)

    def do_POST(self) -> None:
        srv = self.server
        if self.path != "/clear":
            self._reply(404, {"error": "unknown route"})
            return
        srv.count("clears")
        self._reply(200, {"cleared": srv.backend.clear()})


class CacheDaemon(ThreadingHTTPServer):
    """The HTTP server plus its backing store and request counters."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple,
        backend: Optional[CacheBackend] = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.backend = backend if backend is not None else MemoryBackend()
        self.verbose = verbose
        self.counters: Dict[str, int] = {}
        self._counter_lock = threading.Lock()

    def count(self, name: str) -> None:
        with self._counter_lock:
            self.counters[name] = self.counters.get(name, 0) + 1

    def stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            doc: Dict[str, Any] = dict(self.counters)
        doc["entries"] = len(self.backend)  # type: ignore[arg-type]
        doc["backend"] = self.backend.stats()
        return doc

    def metrics_text(self) -> str:
        """The daemon's counters in Prometheus text exposition format.

        Request counters become ``repro_cache_<verb>_total``, the entry
        count a gauge, and any numeric backend stats gauges under
        ``repro_cache_backend_*`` — scrapable straight off
        ``GET /metrics`` with no client library on either side.
        """
        doc = self.stats()
        backend_stats = doc.pop("backend", {}) or {}
        entries = doc.pop("entries", 0)
        lines: List[str] = []
        for name in sorted(doc):
            value = doc[name]
            if not isinstance(value, (int, float)):
                continue
            fam = prom.sanitize_name(name, "repro_cache_") + "_total"
            lines.extend(prom.render_family(
                fam, "counter", f"cache daemon requests: {name}",
                [("", None, float(value))],
            ))
        lines.extend(prom.render_family(
            "repro_cache_entries", "gauge", "entries in the backing store",
            [("", None, float(entries))],
        ))
        for name in sorted(backend_stats):
            value = backend_stats[name]
            if not isinstance(value, (int, float)):
                continue
            fam = prom.sanitize_name(name, "repro_cache_backend_")
            lines.extend(prom.render_family(
                fam, "gauge", f"backing store stat: {name}",
                [("", None, float(value))],
            ))
        return "\n".join(lines) + "\n" if lines else ""

    def serve_in_thread(self) -> threading.Thread:
        """Run the daemon on a background thread (tests, embedded use)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-cache-daemon", daemon=True
        )
        thread.start()
        return thread


def serve_cache(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    backend: Optional[CacheBackend] = None,
    verbose: bool = False,
) -> CacheDaemon:
    """Bind a :class:`CacheDaemon`; ``port=0`` picks a free port."""
    return CacheDaemon((host, port), backend=backend, verbose=verbose)


def serve_cache_main(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments serve-cache`` — run the cache daemon."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-experiments serve-cache",
        description="Serve a shared sweep-result cache over HTTP "
                    "(see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default {DEFAULT_PORT}; 0 = pick)")
    parser.add_argument("--store", default="memory", metavar="SPEC",
                        help="backing store spec: memory (default), "
                             "dir:PATH, or sqlite:PATH")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)

    if args.store.startswith(("http://", "https://")):
        parser.error("--store cannot itself be an http backend")
    backend = make_cache_backend(args.store)
    daemon = serve_cache(args.host, args.port, backend=backend,
                         verbose=args.verbose)
    host, port = daemon.server_address[:2]
    print(f"repro cache daemon: serving {args.store} on http://{host}:{port}",
          flush=True)

    def _on_sigterm(signum: int, frame: object) -> None:
        # serve_forever() blocks the main thread, which is also where
        # this handler runs — calling daemon.shutdown() here would
        # deadlock (it joins the serving loop we are interrupting).
        # Raising instead unwinds serve_forever() into the same
        # graceful close path Ctrl-C takes.
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("repro cache daemon: shutdown signal received, closing",
              flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        daemon.server_close()
        flush = getattr(backend, "flush", None)
        if callable(flush):
            # Write-behind stores drain their upload queue before close.
            flush()
        backend.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_cache_main())
