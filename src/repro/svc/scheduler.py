"""Sweep-as-a-service: an asyncio scheduler for concurrent submissions.

:class:`SweepScheduler` turns the one-shot :class:`SweepRunner` model
into a service: many named submissions (*tenants*) enter concurrently,
share one executor backend and one result cache, and are multiplexed
fairly — round-robin across tenants, one point at a time — so a
thousand-point tenant cannot starve a three-point one.

What the scheduler adds over calling the runner per tenant:

* **Fair scheduling** — dispatch order interleaves tenants; with one
  worker and tenants A and B the execution order is A, B, A, B, ...
* **Cross-tenant cache sharing** — every point is keyed by its
  content hash, so tenant B hits results tenant A computed a moment
  ago.  In-flight points are deduplicated too: if B submits a point A
  is *currently computing*, B awaits A's execution instead of
  re-running it (counted as a hit for B, computed once).
* **Per-submission timeouts** — a submission past its deadline stops
  dispatching and its unfinished points resolve as ``timeout``;
  in-flight work still completes into the shared cache.
* **Per-tenant telemetry** — the scheduler's own
  :class:`~repro.obs.MetricsRegistry` carries ``svc.*`` counters
  (hit-rate, latency spans, queue-depth high-water) per tenant and
  globally; :meth:`SweepScheduler.stats` renders the per-tenant view.

Executor backends are blocking by design (they are also the runner's
fan-out); the scheduler drives them from a thread pool sized to the
backend's concurrency, so the asyncio loop itself never blocks.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..obs import MetricsRegistry
from ..runner.cache import point_key
from ..runner.point import SweepPoint
from ..runner.runner import PointResult
from .backends import CacheBackend
from .executors import ExecSpec, ExecutorBackend, SerialBackend

__all__ = ["SweepScheduler", "Submission"]


class Submission:
    """One tenant's batch of points moving through the scheduler."""

    def __init__(
        self,
        tenant: str,
        points: Sequence[SweepPoint],
        timeout: Optional[float],
    ) -> None:
        self.tenant = tenant
        self.points = list(points)
        self.unique = list(dict.fromkeys(self.points))
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.results: Dict[SweepPoint, PointResult] = {}
        self.done = asyncio.Event()
        self.submitted_at = time.monotonic()

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining_budget(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def _resolve(self, point: SweepPoint, result: PointResult) -> None:
        self.results[point] = result
        if len(self.results) == len(self.unique):
            self.done.set()

    async def wait(self) -> Dict[SweepPoint, PointResult]:
        """Block until every point has a result; returns them."""
        await self.done.wait()
        return self.results

    def payloads(self) -> List[Optional[Dict[str, Any]]]:
        """Payloads aligned with the submitted point order."""
        return [self.results[p].payload for p in self.points]

    @property
    def ok(self) -> bool:
        return self.done.is_set() and all(r.ok for r in self.results.values())


class SweepScheduler:
    """Fair, cache-shared, multi-tenant sweep execution.

    Parameters
    ----------
    executor:
        Any :class:`~repro.svc.executors.ExecutorBackend`; default is
        the in-process serial backend.
    cache:
        Any :class:`~repro.svc.backends.CacheBackend` (or a
        :class:`~repro.runner.cache.ResultCache`) shared by every
        tenant; None disables caching (in-flight dedup still applies).
    workers:
        Concurrent point executions; defaults to the backend's own
        concurrency (1 for serial, the pool size for process, the
        connected-worker count for socket).
    spec:
        The :class:`ExecSpec` applied to every point (timeouts here
        are *per point*; per-submission deadlines are given to
        :meth:`submit`).
    """

    def __init__(
        self,
        executor: Optional[ExecutorBackend] = None,
        cache: Optional[CacheBackend] = None,
        workers: Optional[int] = None,
        spec: Optional[ExecSpec] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialBackend()
        self.cache = cache
        self.spec = spec if spec is not None else ExecSpec()
        self.workers = (
            workers if workers is not None
            else max(1, self.executor.concurrency(self.spec))
        )
        self.obs = registry if registry is not None else MetricsRegistry()
        #: (tenant, point label) in the order points were dispatched —
        #: the observable artifact of fair scheduling (tests pin it).
        self.dispatch_log: List[Tuple[str, str]] = []
        self._queues: "OrderedDict[str, Deque[Tuple[Submission, SweepPoint]]]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._work_available = asyncio.Event()
        self._sem = asyncio.Semaphore(self.workers)
        self._threads = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-svc-exec"
        )
        self._dispatcher: Optional[asyncio.Task] = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop(), name="repro-svc-dispatch"
            )

    async def close(self) -> None:
        """Stop dispatching and release the executor/thread pool."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        self._threads.shutdown(wait=False)
        self.executor.close()
        if self.cache is not None and hasattr(self.cache, "close"):
            self.cache.close()

    async def __aenter__(self) -> "SweepScheduler":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    # -- submission -----------------------------------------------------------

    async def submit(
        self,
        tenant: str,
        points: Sequence[SweepPoint],
        timeout: Optional[float] = None,
    ) -> Submission:
        """Enqueue a named batch; returns immediately with a handle.

        ``timeout`` is the submission's overall deadline in real
        seconds: points not finished by then resolve as ``timeout``.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        if not tenant:
            raise ValueError("tenant name must be non-empty")
        submission = Submission(tenant, points, timeout)
        self._count("svc.submissions")
        self._count(f"svc.tenant.{tenant}.submissions")
        if not submission.unique:
            submission.done.set()
            return submission
        queue = self._queues.setdefault(tenant, deque())
        for point in submission.unique:
            queue.append((submission, point))
        self._count(f"svc.tenant.{tenant}.points", len(submission.unique))
        self.obs.gauge_max(f"svc.tenant.{tenant}.queue_depth", len(queue))
        self.obs.gauge_max(
            "svc.queue_depth",
            sum(len(q) for q in self._queues.values()),
        )
        self._work_available.set()
        self._ensure_dispatcher()
        return submission

    async def run(
        self,
        tenant: str,
        points: Sequence[SweepPoint],
        timeout: Optional[float] = None,
    ) -> Dict[SweepPoint, PointResult]:
        """Submit and wait — the one-call convenience path."""
        submission = await self.submit(tenant, points, timeout)
        return await submission.wait()

    # -- dispatch -------------------------------------------------------------

    def _next_item(self) -> Optional[Tuple[str, Submission, SweepPoint]]:
        """Round-robin pop: take from the first non-empty tenant queue,
        then rotate that tenant to the back."""
        for tenant in list(self._queues):
            queue = self._queues[tenant]
            if not queue:
                del self._queues[tenant]
                continue
            submission, point = queue.popleft()
            self._queues.move_to_end(tenant)
            return tenant, submission, point
        return None

    async def _dispatch_loop(self) -> None:
        while True:
            await self._work_available.wait()
            item = self._next_item()
            if item is None:
                self._work_available.clear()
                continue
            tenant, submission, point = item
            await self._sem.acquire()
            self.dispatch_log.append((tenant, point.label))
            task = asyncio.get_running_loop().create_task(
                self._process(tenant, submission, point)
            )
            task.add_done_callback(lambda _t: self._sem.release())

    # -- per-point processing -------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.obs.inc(name, n)

    def _cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        if self.cache is None:
            return None
        return self.cache.get(key)

    def _cache_put(self, key: str, point: SweepPoint, payload: Any) -> None:
        if self.cache is None:
            return
        try:
            self.cache.put(key, point, payload)
        except OSError:
            self._count("svc.cache_write_errors")

    async def _process(
        self, tenant: str, submission: Submission, point: SweepPoint
    ) -> None:
        t0 = time.monotonic()
        try:
            result = await self._resolve_point(tenant, submission, point)
        except Exception as exc:  # defensive: a backend bug, not a point error
            result = PointResult(point, "error",
                                 error=f"{type(exc).__name__}: {exc}")
        latency = time.monotonic() - t0
        self.obs.span("svc.point_latency", latency)
        self.obs.span(f"svc.tenant.{tenant}.latency", latency)
        if result.status == "timeout" and result.error and "deadline" in result.error:
            self._count(f"svc.tenant.{tenant}.timeouts")
        submission._resolve(point, result)

    async def _resolve_point(
        self, tenant: str, submission: Submission, point: SweepPoint
    ) -> PointResult:
        if submission.expired:
            return PointResult(
                point, "timeout",
                error=f"{point.label}: submission deadline passed",
            )
        key = point_key(point)
        loop = asyncio.get_running_loop()

        # 1. A tenant (possibly another one) is computing it right now.
        inflight = self._inflight.get(key)
        if inflight is not None:
            envelope = await self._await_shared(inflight, submission, point)
            if envelope is None:
                return PointResult(
                    point, "timeout",
                    error=f"{point.label}: submission deadline passed",
                )
            self._hit(tenant, shared=True)
            return self._result_from_envelope(point, envelope, cached=True)

        # 2. The shared cache already has it.
        entry = await loop.run_in_executor(self._threads, self._cache_get, key)
        if entry is not None:
            self._hit(tenant, shared=False)
            return PointResult(point, "ok", payload=entry["payload"],
                               cached=True, attempts=0)

        # 3. Compute it — and publish the in-flight future so concurrent
        #    tenants join this execution instead of repeating it.
        self._count("svc.cache_misses")
        self._count(f"svc.tenant.{tenant}.misses")
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = future
        try:
            envelope, attempts = await loop.run_in_executor(
                self._threads, self.executor.run_point, point, self.spec
            )
        except Exception as exc:
            envelope = {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "wall_time": 0.0,
            }
            attempts = 1
        if envelope.get("status") == "ok":
            await loop.run_in_executor(
                self._threads, self._cache_put, key, point,
                envelope.get("payload"),
            )
        self._inflight.pop(key, None)
        if not future.done():
            future.set_result(envelope)
        return self._result_from_envelope(point, envelope, cached=False,
                                          attempts=attempts)

    async def _await_shared(
        self,
        future: "asyncio.Future[Dict[str, Any]]",
        submission: Submission,
        point: SweepPoint,
    ) -> Optional[Dict[str, Any]]:
        """Wait on another tenant's execution, bounded by our deadline."""
        budget = submission.remaining_budget()
        try:
            return await asyncio.wait_for(asyncio.shield(future), budget)
        except asyncio.TimeoutError:
            return None

    def _hit(self, tenant: str, shared: bool) -> None:
        self._count("svc.cache_hits")
        self._count(f"svc.tenant.{tenant}.hits")
        if shared:
            self._count("svc.inflight_joins")

    @staticmethod
    def _result_from_envelope(
        point: SweepPoint,
        envelope: Dict[str, Any],
        cached: bool,
        attempts: int = 0,
    ) -> PointResult:
        return PointResult(
            point=point,
            status=envelope.get("status", "error"),
            payload=envelope.get("payload"),
            cached=cached,
            wall_time=float(envelope.get("wall_time", 0.0)),
            attempts=attempts,
            error=envelope.get("error"),
        )

    # -- reporting ------------------------------------------------------------

    def tenants(self) -> List[str]:
        prefix = "svc.tenant."
        seen = []
        for name in self.obs.counters:
            if name.startswith(prefix):
                tenant = name[len(prefix):].split(".", 1)[0]
                if tenant not in seen:
                    seen.append(tenant)
        return sorted(seen)

    def stats(self) -> Dict[str, Any]:
        """Per-tenant hit-rate / latency / queue-depth summary."""
        counters = self.obs.counters
        doc: Dict[str, Any] = {
            "submissions": counters.get("svc.submissions", 0),
            "cache_hits": counters.get("svc.cache_hits", 0),
            "cache_misses": counters.get("svc.cache_misses", 0),
            "inflight_joins": counters.get("svc.inflight_joins", 0),
            "queue_depth_hwm": self.obs.gauges.get("svc.queue_depth", 0),
            "tenants": {},
        }
        for tenant in self.tenants():
            pre = f"svc.tenant.{tenant}."
            hits = counters.get(pre + "hits", 0)
            misses = counters.get(pre + "misses", 0)
            lat = self.obs.spans.get(pre + "latency")
            doc["tenants"][tenant] = {
                "submissions": counters.get(pre + "submissions", 0),
                "points": counters.get(pre + "points", 0),
                "hits": hits,
                "misses": misses,
                "timeouts": counters.get(pre + "timeouts", 0),
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "queue_depth_hwm": self.obs.gauges.get(pre + "queue_depth", 0),
                "latency": (
                    {"count": int(lat[0]), "total": lat[1], "max": lat[2]}
                    if lat is not None else None
                ),
            }
        return doc

    def __repr__(self) -> str:
        return (
            f"<SweepScheduler {self.executor.backend_name} "
            f"workers={self.workers} tenants={len(self._queues)}>"
        )
