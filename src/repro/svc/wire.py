"""Length-prefixed JSON framing for the service layer.

Every message on a service socket — worker pull/result traffic, cache
daemon internals — is one JSON object framed as a 4-byte big-endian
length followed by that many UTF-8 bytes.  The framing is deliberately
dumb: no versioned envelopes, no compression, no partial frames.  A
peer that cannot parse a frame closes the connection, and the service
layer treats a closed connection as the failure unit (a worker death
requeues its in-flight point; a cache daemon outage degrades reads to
the local fallback).

The helpers work on anything with ``recv``/``sendall`` (a socket) or on
``makefile``-style binary streams via :func:`read_frame` /
:func:`write_frame`.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, BinaryIO, Dict, Optional

__all__ = [
    "WireError",
    "MAX_FRAME",
    "send_message",
    "recv_message",
    "write_frame",
    "read_frame",
]

#: Refuse frames above this size (64 MiB): a corrupt length prefix must
#: not make a peer allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class WireError(ConnectionError):
    """A malformed frame or a connection that died mid-frame."""


def _encode(message: Dict[str, Any]) -> bytes:
    # No sort_keys: a result envelope must round-trip with its payload's
    # key order intact, or socket-worker sweeps would render different
    # JSON bytes than local ones.
    blob = json.dumps(message, separators=(",", ":"))
    data = blob.encode("utf-8")
    if len(data) > MAX_FRAME:
        raise WireError(f"frame of {len(data)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(data)) + data


def _decode(data: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError(f"frame is not a JSON object: {type(message).__name__}")
    return message


# -- socket flavour -------------------------------------------------------------


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Frame and send one JSON object over ``sock``."""
    sock.sendall(_encode(message))


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Exactly ``n`` bytes from ``sock``, or None on clean EOF at a
    frame boundary; raises :class:`WireError` on EOF mid-frame."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise WireError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One JSON object from ``sock``, or None on clean EOF."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds MAX_FRAME")
    body = _recv_exact(sock, length)
    if body is None:
        raise WireError("connection closed between header and body")
    return _decode(body)


# -- stream flavour -------------------------------------------------------------


def write_frame(stream: BinaryIO, message: Dict[str, Any]) -> None:
    stream.write(_encode(message))
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[Dict[str, Any]]:
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WireError("stream ended mid-header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds MAX_FRAME")
    body = stream.read(length)
    if body is None or len(body) < length:
        raise WireError("stream ended mid-frame")
    return _decode(body)
