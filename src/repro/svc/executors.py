"""Pluggable executor backends — where sweep points actually run.

The runner historically had two hard-wired paths (in-process serial,
``ProcessPoolExecutor`` fan-out).  This module lifts them behind an
:class:`ExecutorBackend` interface and adds a third: a socket server
that hands points to ``repro worker`` processes — on this machine or
any other — over the length-prefixed JSON protocol in
:mod:`repro.svc.wire`.

Every backend speaks the same two calls:

* :meth:`ExecutorBackend.run` — execute a batch, yielding
  ``(point, envelope, attempts)`` as points finish (any order).
* :meth:`ExecutorBackend.run_point` — execute one point (what the
  asyncio :class:`~repro.svc.scheduler.SweepScheduler` dispatches).

Envelopes are exactly what :func:`repro.runner.worker.execute_point`
returns, whichever process produced them, so figure outputs are
bit-identical across backends — the subsystem's acceptance test.

Failure semantics mirror the historical runner: an exception inside a
point is deterministic and becomes an ``error`` envelope; a *worker
death* (``BrokenProcessPool``, or a socket worker's connection
dropping mid-point) is retried per the :class:`RetryPolicy` before
surfacing as ``crashed``.

CLI spec strings (``--backend``)::

    serial                       in-process, one point at a time
    process[:N]                  process pool with N workers (0 = CPUs)
    socket:HOST:PORT             listen on HOST:PORT for `repro worker`s
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs import get as _obs_get
from ..obs.trace import DEFAULT_CAPACITY as DEFAULT_TRACE_CAPACITY
from ..runner.cache import point_key
from ..runner.point import SweepPoint
from ..runner.retry import RetryPolicy
from ..runner.worker import execute_point
from . import wire

__all__ = [
    "ExecSpec",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketWorkerBackend",
    "make_executor_backend",
]

#: (point, envelope, attempts) — one finished point.
PointOutcome = Tuple[SweepPoint, Dict[str, Any], int]


@dataclass
class ExecSpec:
    """Everything a backend needs to run points on the runner's behalf."""

    timeout: Optional[float] = None
    collect_obs: bool = False
    collect_trace: bool = False
    trace_detail: str = "fine"
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    trace_compact: bool = False
    obs_sample: Optional[float] = None
    #: Record every point's nondeterminism order log (repro.replay);
    #: the log rides the envelope under "order_log", never the cache.
    record_order: bool = False
    #: Per-point replay logs (label -> base64 order log); a point with
    #: a log is verified against it and may come back "diverged".
    replay_logs: Dict[str, str] = field(default_factory=dict)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    jobs: int = 1
    #: Called as (label, key, next_attempt, delay) when a crashed point
    #: is granted another attempt — feeds retry telemetry.
    on_retry: Optional[Callable[[str, str, int, float], None]] = None

    def worker_args(self) -> Tuple[Any, ...]:
        """Positional args of :func:`execute_point` after the point
        (the per-point ``replay_log`` — :meth:`replay_for` — follows)."""
        return (self.timeout, self.collect_obs, self.collect_trace,
                self.trace_detail, self.trace_capacity, self.trace_compact,
                self.obs_sample, self.record_order)

    def replay_for(self, point: SweepPoint) -> Optional[str]:
        """The base64 order log this point replays under, if any."""
        if self.record_order:
            return None
        return self.replay_logs.get(point.label)

    def to_wire(self) -> Dict[str, Any]:
        """The JSON-safe subset a socket worker needs."""
        return {
            "timeout": self.timeout,
            "collect_obs": self.collect_obs,
            "collect_trace": self.collect_trace,
            "trace_detail": self.trace_detail,
            "trace_capacity": self.trace_capacity,
            "trace_compact": self.trace_compact,
            "obs_sample": self.obs_sample,
            "record_order": self.record_order,
        }

    def notify_retry(self, point: SweepPoint, attempts: int) -> float:
        """Report a granted retry; returns the backoff delay to apply."""
        key = point_key(point)
        delay = self.retry.delay(attempts, key)
        if self.on_retry is not None:
            self.on_retry(point.label, key, attempts + 1, delay)
        return delay


def _crashed_envelope(point: SweepPoint, attempts: int) -> Dict[str, Any]:
    return {
        "status": "crashed",
        "error": f"{point.label}: worker process died ({attempts} attempt(s))",
        "wall_time": 0.0,
    }


class ExecutorBackend:
    """Base class: subclasses implement :meth:`run_point`, and may
    override :meth:`run` for smarter batching."""

    backend_name = "?"

    def concurrency(self, spec: ExecSpec) -> int:
        """How many points this backend can usefully run at once."""
        return 1

    def run_point(self, point: SweepPoint, spec: ExecSpec) -> Tuple[Dict[str, Any], int]:
        raise NotImplementedError

    def run(
        self, points: Sequence[SweepPoint], spec: ExecSpec
    ) -> Iterator[PointOutcome]:
        for point in points:
            envelope, attempts = self.run_point(point, spec)
            yield (point, envelope, attempts)

    def close(self) -> None:
        pass

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.backend_name}>"


class SerialBackend(ExecutorBackend):
    """In-process, strictly sequential — zero overhead, full signal
    support (SIGALRM timeouts work because points run on the main
    thread), and the baseline every other backend must match."""

    backend_name = "serial"

    def run_point(self, point: SweepPoint, spec: ExecSpec) -> Tuple[Dict[str, Any], int]:
        return execute_point(
            point, *spec.worker_args(), spec.replay_for(point)
        ), 1


class ProcessPoolBackend(ExecutorBackend):
    """The classic ``ProcessPoolExecutor`` fan-out.

    Batch runs keep the historical *wave* semantics: a
    ``BrokenProcessPool`` poisons every in-flight point (the culprit is
    not identifiable from the parent), so the whole wave re-runs on a
    fresh pool until each point's retry budget is spent.  Single-point
    runs (the scheduler path) keep a persistent pool and retry just
    that point.
    """

    backend_name = "process"

    def __init__(self, jobs: int = 0) -> None:
        from ..runner.runner import default_jobs

        self.jobs = jobs if jobs > 0 else default_jobs()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def concurrency(self, spec: ExecSpec) -> int:
        return self.jobs

    # -- batch ----------------------------------------------------------------

    def run(
        self, points: Sequence[SweepPoint], spec: ExecSpec
    ) -> Iterator[PointOutcome]:
        pending: Dict[SweepPoint, int] = {p: 1 for p in points}
        while pending:
            batch = list(pending)
            crashed: List[SweepPoint] = []
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(batch))
            ) as pool:
                futures = {
                    pool.submit(execute_point, p, *spec.worker_args(),
                                spec.replay_for(p)): p
                    for p in batch
                }
                for fut in as_completed(futures):
                    p = futures[fut]
                    try:
                        envelope = fut.result()
                    except BrokenProcessPool:
                        crashed.append(p)
                        continue
                    except Exception as exc:  # transport-level failure
                        envelope = {
                            "status": "error",
                            "error": f"{type(exc).__name__}: {exc}",
                            "wall_time": 0.0,
                        }
                    yield (p, envelope, pending.pop(p))
            wave_delay = 0.0
            for p in crashed:
                if not spec.retry.should_retry(pending[p]):
                    yield (p, _crashed_envelope(p, pending[p]), pending.pop(p))
                else:
                    wave_delay = max(wave_delay, spec.notify_retry(p, pending[p]))
                    pending[p] += 1
            if pending and wave_delay > 0.0:
                # One sleep per crash wave: the whole wave re-runs on a
                # fresh pool, so per-point sleeps would only serialize.
                time.sleep(wave_delay)

    # -- single point (scheduler path) ----------------------------------------

    def _persistent_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool

    def _reset_pool(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def run_point(self, point: SweepPoint, spec: ExecSpec) -> Tuple[Dict[str, Any], int]:
        attempts = 1
        while True:
            pool = self._persistent_pool()
            try:
                return pool.submit(
                    execute_point, point, *spec.worker_args(),
                    spec.replay_for(point)
                ).result(), attempts
            except BrokenProcessPool:
                self._reset_pool()
                if not spec.retry.should_retry(attempts):
                    return _crashed_envelope(point, attempts), attempts
                delay = spec.notify_retry(point, attempts)
                attempts += 1
                if delay > 0.0:
                    time.sleep(delay)
            except Exception as exc:
                return {
                    "status": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "wall_time": 0.0,
                }, attempts

    def close(self) -> None:
        self._reset_pool()


# -- socket workers -------------------------------------------------------------


class _Task:
    """One point waiting for (or assigned to) a socket worker."""

    __slots__ = ("point", "attempts", "done_q")

    def __init__(self, point: SweepPoint, done_q: "queue.Queue[PointOutcome]") -> None:
        self.point = point
        self.attempts = 1
        self.done_q = done_q


class SocketWorkerBackend(ExecutorBackend):
    """Listens for ``repro worker`` processes that *pull* points.

    The server never pushes unsolicited work: a worker sends
    ``{"op": "pull"}`` when idle, blocks until a point is available,
    runs it, and replies with the result envelope.  Pull scheduling
    makes heterogeneous workers self-load-balance — a fast host simply
    pulls more often — with no partitioning logic on the server.

    A connection that dies while a point is in flight requeues the
    point (per the retry policy), so a crashed or OOM-killed worker
    host costs one retry, never a lost result.  Workers may connect
    and disconnect at any time; :meth:`wait_for_workers` is a
    convenience barrier for scripts that want N workers before
    sweeping.
    """

    backend_name = "socket"

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 backlog: int = 64) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self.host, self.port = self._listener.getsockname()[:2]
        self._tasks: "queue.Queue[_Task]" = queue.Queue()
        self._spec: Optional[ExecSpec] = None
        self._closing = False
        self._lock = threading.Lock()
        self._workers = 0
        self._worker_seq = 0
        self._served = 0
        self._stats_requests = 0
        self._obs = _obs_get()
        self._threads: List[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-svc-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def workers(self) -> int:
        """Currently connected workers."""
        with self._lock:
            return self._workers

    def concurrency(self, spec: ExecSpec) -> int:
        return max(1, self.workers)

    def wait_for_workers(self, n: int, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        while self.workers < n and time.monotonic() < deadline:
            time.sleep(0.02)
        return self.workers

    def stats(self) -> Dict[str, Any]:
        """Live server-side counters (what the ``stats`` frame returns)."""
        with self._lock:
            return {
                "workers": self._workers,
                "queued": self._tasks.qsize(),
                "served": self._served,
                "stats_requests": self._stats_requests,
            }

    # -- server side ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_worker, args=(conn,),
                name="repro-svc-worker-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_worker(self, conn: socket.socket) -> None:
        with self._lock:
            self._workers += 1
            self._worker_seq += 1
        task: Optional[_Task] = None
        try:
            hello = wire.recv_message(conn)
            if not hello or hello.get("op") != "hello":
                return
            wire.send_message(conn, {"op": "welcome"})
            while not self._closing:
                msg = wire.recv_message(conn)
                if msg is None:
                    return  # clean disconnect while idle
                if msg.get("op") == "stats":
                    with self._lock:
                        self._stats_requests += 1
                    if self._obs.enabled:
                        self._obs.inc("svc.stats_requests")
                    wire.send_message(conn, {"op": "stats",
                                             "stats": self.stats()})
                    continue
                if msg.get("op") != "pull":
                    return
                task = self._next_task()
                if task is None:
                    wire.send_message(conn, {"op": "shutdown"})
                    return
                spec = self._spec
                frame = {
                    "op": "point",
                    "point": task.point.canonical(),
                    "spec": spec.to_wire() if spec is not None else {},
                }
                if spec is not None:
                    replay_blob = spec.replay_for(task.point)
                    if replay_blob is not None:
                        # Per-point: replay logs ride the point frame,
                        # not the spec (each point has its own log).
                        frame["replay_log"] = replay_blob
                wire.send_message(conn, frame)
                reply = wire.recv_message(conn)
                if reply is None or reply.get("op") != "result":
                    raise wire.WireError("worker vanished mid-point")
                task.done_q.put(
                    (task.point, reply["envelope"], task.attempts)
                )
                task = None
                with self._lock:
                    self._served += 1
                if self._obs.enabled:
                    self._obs.inc("svc.points_served")
        except (wire.WireError, OSError):
            pass
        finally:
            if task is not None:
                self._requeue_or_fail(task)
            with self._lock:
                self._workers -= 1
            try:
                conn.close()
            except OSError:
                pass

    def _next_task(self) -> Optional[_Task]:
        """Block (in this connection's thread) until work or shutdown."""
        while not self._closing:
            try:
                return self._tasks.get(timeout=0.1)
            except queue.Empty:
                continue
        return None

    def _requeue_or_fail(self, task: _Task) -> None:
        spec = self._spec
        retry = spec.retry if spec is not None else RetryPolicy()
        if retry.should_retry(task.attempts):
            if spec is not None:
                delay = spec.notify_retry(task.point, task.attempts)
                if delay > 0.0:
                    time.sleep(delay)
            task.attempts += 1
            self._tasks.put(task)
        else:
            task.done_q.put(
                (task.point, _crashed_envelope(task.point, task.attempts),
                 task.attempts)
            )

    # -- ExecutorBackend ------------------------------------------------------

    def run(
        self, points: Sequence[SweepPoint], spec: ExecSpec
    ) -> Iterator[PointOutcome]:
        self._spec = spec
        done_q: "queue.Queue[PointOutcome]" = queue.Queue()
        for point in points:
            self._tasks.put(_Task(point, done_q))
        for _ in range(len(points)):
            yield done_q.get()

    def run_point(self, point: SweepPoint, spec: ExecSpec) -> Tuple[Dict[str, Any], int]:
        self._spec = spec
        done_q: "queue.Queue[PointOutcome]" = queue.Queue()
        self._tasks.put(_Task(point, done_q))
        _point, envelope, attempts = done_q.get()
        return envelope, attempts

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass

    def __repr__(self) -> str:
        return f"<SocketWorkerBackend {self.address} ({self.workers} worker(s))>"


# -- factory --------------------------------------------------------------------


def make_executor_backend(
    spec: Union[str, ExecutorBackend, None],
    jobs: int = 1,
) -> Optional[ExecutorBackend]:
    """Build a backend from a CLI spec string (see module docstring).

    ``None`` returns None — the runner then picks serial or process
    pool from its ``jobs`` argument, exactly as before.
    """
    if spec is None or isinstance(spec, ExecutorBackend):
        return spec
    text = str(spec)
    if text == "serial":
        return SerialBackend()
    if text == "process":
        return ProcessPoolBackend(jobs)
    if text.startswith("process:"):
        return ProcessPoolBackend(int(text[len("process:"):]))
    if text.startswith("socket:"):
        rest = text[len("socket:"):]
        host, _, port = rest.rpartition(":")
        if not host:
            host, port = "127.0.0.1", rest
        return SocketWorkerBackend(host, int(port))
    raise ValueError(
        f"unknown executor backend spec {text!r} "
        "(expected serial, process[:N] or socket:HOST:PORT)"
    )
