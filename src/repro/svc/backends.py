"""Pluggable cache backends for sweep results.

The :class:`~repro.runner.cache.ResultCache` directory layout was the
only result store the runner knew; this module generalizes it into a
small :class:`CacheBackend` protocol so the same content-addressed
entries can live in memory, in a single SQLite file shared by
concurrent workers, or behind a small HTTP daemon shared by machines —
without the runner caring which.

All backends store the *same entry shape* the directory cache always
used (``{"key", "version", "point", "payload"[, "meta"]}``), validate
it on read, and turn corruption into a counted miss — never a crash,
never a wrong result.  Every backend also keeps local hit/miss/
eviction/corruption counters (:meth:`CacheBackend.stats`) and mirrors
them into the :mod:`repro.obs` registry as ``svc.cache.*`` counters
when observation is enabled.

Backends are addressed by short spec strings (the CLI's
``--cache-backend``)::

    dir:/path/to/cache          sharded directory (the default layout)
    memory                      process-local dict, LRU-bounded
    sqlite:/path/cache.db       single file, WAL, multi-process safe
    http://host:8750            client for a `repro serve-cache` daemon

:func:`make_cache_backend` parses these.
"""

from __future__ import annotations

import json
import os
import queue
import sqlite3
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Protocol, Tuple, Union, runtime_checkable

from ..obs import get as _obs_get
from ..runner.cache import ResultCache
from ..runner.point import SweepPoint
from ..runner.retry import RetryPolicy

__all__ = [
    "CacheBackend",
    "DirectoryBackend",
    "MemoryBackend",
    "SqliteBackend",
    "HttpBackend",
    "make_cache_backend",
    "build_entry",
    "validate_entry",
]


def _package_version() -> str:
    from .. import __version__

    return __version__


def build_entry(
    key: str,
    point: Optional[SweepPoint],
    payload: Any,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The canonical entry document every backend stores."""
    entry: Dict[str, Any] = {
        "key": key,
        "version": _package_version(),
        "point": point.canonical() if point is not None else None,
        "payload": payload,
    }
    if meta:
        entry["meta"] = meta
    return entry


def validate_entry(key: str, entry: Any) -> bool:
    """True iff ``entry`` is a well-formed document for ``key``."""
    return (
        isinstance(entry, dict)
        and entry.get("key") == key
        and "payload" in entry
    )


@runtime_checkable
class CacheBackend(Protocol):
    """What the runner (and the scheduler, and the cache daemon) need
    from a result store.  ``get``/``put`` mirror
    :class:`~repro.runner.cache.ResultCache` exactly, so the directory
    cache *is* a backend."""

    backend_name: str

    def get(self, key: str) -> Optional[Dict[str, Any]]: ...

    def put(
        self,
        key: str,
        point: Optional[SweepPoint],
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None: ...

    def put_entry(self, key: str, entry: Dict[str, Any]) -> None: ...

    def discard(self, key: str) -> bool: ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...

    def clear(self) -> int: ...

    def stats(self) -> Dict[str, int]: ...

    def close(self) -> None: ...


class _StatsMixin:
    """Local counters + obs mirroring shared by every backend."""

    backend_name = "?"

    def _init_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt_discards = 0

    def _count(self, event: str, n: int = 1) -> None:
        setattr(self, event, getattr(self, event) + n)
        registry = _obs_get()
        if registry.enabled:
            registry.inc(f"svc.cache.{self.backend_name}.{event}", n)

    def stats(self) -> Dict[str, int]:
        return {
            "backend": self.backend_name,  # type: ignore[dict-item]
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_discards": self.corrupt_discards,
        }

    def close(self) -> None:  # most backends hold no live resources
        pass


# -- directory ------------------------------------------------------------------


class DirectoryBackend(_StatsMixin, ResultCache):
    """The classic sharded directory cache, now namespaced and bounded.

    ``namespace=None`` keeps the exact historical on-disk layout
    (``<root>/<key[:2]>/<key>.json``) so existing caches keep hitting;
    a named namespace nests under ``<root>/<namespace>/`` so tenants
    (or unrelated projects) sharing one cache root cannot collide.

    ``max_entries`` / ``max_bytes`` bound the namespace with LRU
    eviction: reads refresh an entry's mtime, and a put that pushes the
    namespace over either bound deletes least-recently-used entries
    until it fits again.  Unbounded (the default) behaves exactly like
    :class:`ResultCache`.
    """

    backend_name = "directory"

    def __init__(
        self,
        root: Union[str, Path],
        namespace: Optional[str] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        root = Path(root)
        if namespace:
            if any(ch in namespace for ch in "/\\") or namespace.startswith("."):
                raise ValueError(f"invalid cache namespace {namespace!r}")
            root = root / namespace
        super().__init__(root)
        self.namespace = namespace
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._init_stats()

    def _count_corrupt(self) -> None:
        super()._count_corrupt()  # runner.cache_corrupt_discards + attr
        registry = _obs_get()
        if registry.enabled:
            registry.inc(f"svc.cache.{self.backend_name}.corrupt_discards")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = super().get(key)
        if entry is None:
            self._count("misses")
            return None
        self._count("hits")
        if self.max_entries is not None or self.max_bytes is not None:
            try:  # refresh LRU position; best-effort
                os.utime(self._path(key))
            except OSError:
                pass
        return entry

    def put_entry(self, key: str, entry: Dict[str, Any]) -> None:
        if not validate_entry(key, entry):
            raise ValueError(f"malformed cache entry for key {key[:12]}...")
        # Reuse the atomic tmp-file + os.replace write of ResultCache.put
        # but with the caller's entry document verbatim.
        import tempfile

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=f".{key[:8]}-", suffix=".tmp",
                                   dir=path.parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._evict_if_needed()

    def put(
        self,
        key: str,
        point: Optional[SweepPoint],
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.put_entry(key, build_entry(key, point, payload, meta))

    def discard(self, key: str) -> bool:
        path = self._path(key)
        existed = path.is_file()
        self._discard(path)
        return existed

    # -- eviction -------------------------------------------------------------

    def _entries_by_age(self) -> Iterator[Tuple[float, int, Path]]:
        for path in self._iter_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            yield (st.st_mtime, st.st_size, path)

    def _evict_if_needed(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        # (mtime, name) ordering makes eviction deterministic even when
        # a filesystem's mtime granularity makes entries tie.
        aged = sorted(self._entries_by_age(), key=lambda e: (e[0], e[2].name))
        count = len(aged)
        total = sum(size for _, size, _ in aged)
        for mtime, size, path in aged:
            over_count = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_count or over_bytes):
                break
            self._discard(path)
            self._count("evictions")
            count -= 1
            total -= size


# -- memory ---------------------------------------------------------------------


class MemoryBackend(_StatsMixin):
    """Process-local LRU store — the zero-IO backend for tests, the
    scheduler's default shared cache, and the cache daemon's default
    backing store."""

    backend_name = "memory"

    def __init__(
        self,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, Tuple[int, Dict[str, Any]]]" = OrderedDict()
        self._total_bytes = 0
        self._lock = threading.Lock()
        self._init_stats()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            item = self._entries.get(key)
            if item is None:
                self._count("misses")
                return None
            nbytes, entry = item
            if not validate_entry(key, entry):
                del self._entries[key]
                self._total_bytes -= nbytes
                self._count("corrupt_discards")
                self._count("misses")
                return None
            self._entries.move_to_end(key)
            self._count("hits")
            return entry

    def put_entry(self, key: str, entry: Dict[str, Any]) -> None:
        if not validate_entry(key, entry):
            raise ValueError(f"malformed cache entry for key {key[:12]}...")
        nbytes = len(json.dumps(entry, separators=(",", ":")))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total_bytes -= old[0]
            self._entries[key] = (nbytes, entry)
            self._total_bytes += nbytes
            self._evict_locked()

    def put(
        self,
        key: str,
        point: Optional[SweepPoint],
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.put_entry(key, build_entry(key, point, payload, meta))

    def _evict_locked(self) -> None:
        while self._entries and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self._total_bytes > self.max_bytes)
        ):
            _, (nbytes, _) = self._entries.popitem(last=False)
            self._total_bytes -= nbytes
            self._count("evictions")

    def discard(self, key: str) -> bool:
        with self._lock:
            item = self._entries.pop(key, None)
            if item is not None:
                self._total_bytes -= item[0]
            return item is not None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> int:
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._total_bytes = 0
            return n

    def __repr__(self) -> str:
        return f"<MemoryBackend ({len(self._entries)} entries)>"


# -- sqlite ---------------------------------------------------------------------


class SqliteBackend(_StatsMixin):
    """One-file cache safe under concurrent sweep workers.

    WAL journaling plus a busy timeout lets many processes read and
    write the same file without corruption; LRU ordering uses a
    monotonically increasing access sequence stored per entry, so
    eviction order is deterministic (no wall-clock ties).
    """

    backend_name = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        timeout: float = 10.0,
    ) -> None:
        self.path = Path(path)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY,"
                " entry TEXT NOT NULL,"
                " nbytes INTEGER NOT NULL,"
                " seq INTEGER NOT NULL)"
            )
            self._conn.commit()
        self._init_stats()

    def _touch(self, key: str) -> None:
        self._conn.execute(
            "UPDATE entries SET seq ="
            " (SELECT COALESCE(MAX(seq), 0) + 1 FROM entries)"
            " WHERE key = ?",
            (key,),
        )

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT entry FROM entries WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self._count("misses")
                return None
            try:
                entry = json.loads(row[0])
            except ValueError:
                entry = None
            if not validate_entry(key, entry):
                self._conn.execute("DELETE FROM entries WHERE key = ?", (key,))
                self._conn.commit()
                self._count("corrupt_discards")
                self._count("misses")
                return None
            self._touch(key)
            self._conn.commit()
            self._count("hits")
            return entry

    def put_entry(self, key: str, entry: Dict[str, Any]) -> None:
        if not validate_entry(key, entry):
            raise ValueError(f"malformed cache entry for key {key[:12]}...")
        blob = json.dumps(entry, separators=(",", ":"))
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO entries (key, entry, nbytes, seq)"
                " VALUES (?, ?, ?,"
                "  (SELECT COALESCE(MAX(seq), 0) + 1 FROM entries))",
                (key, blob, len(blob)),
            )
            self._evict_locked()
            self._conn.commit()

    def put(
        self,
        key: str,
        point: Optional[SweepPoint],
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.put_entry(key, build_entry(key, point, payload, meta))

    def _evict_locked(self) -> None:
        if self.max_entries is None and self.max_bytes is None:
            return
        while True:
            count, total = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM entries"
            ).fetchone()
            over_count = self.max_entries is not None and count > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_count or over_bytes):
                return
            victim = self._conn.execute(
                "SELECT key FROM entries ORDER BY seq ASC, key ASC LIMIT 1"
            ).fetchone()
            if victim is None:
                return
            self._conn.execute("DELETE FROM entries WHERE key = ?", victim)
            self._count("evictions")

    def discard(self, key: str) -> bool:
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM entries WHERE key = ?", (key,)
            )
            self._conn.commit()
            return cur.rowcount > 0

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]

    def clear(self) -> int:
        with self._lock:
            n = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
            self._conn.execute("DELETE FROM entries")
            self._conn.commit()
            return n

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return f"<SqliteBackend {self.path}>"


# -- http -----------------------------------------------------------------------


class HttpBackend(_StatsMixin):
    """Client for a ``repro serve-cache`` daemon.

    * **Read-through**: ``get`` asks the daemon first; a server hit is
      also written into the local ``fallback`` backend so later reads
      survive a daemon outage.  A server miss falls back locally.
    * **Write-behind**: ``put`` lands synchronously in the fallback
      (results are never lost) and is queued for a background uploader
      thread, so sweep throughput never waits on the network.
    * **Graceful degradation**: any connection failure marks the daemon
      down for ``cooldown`` seconds and the backend serves purely from
      the fallback; requests are retried per the :class:`RetryPolicy`
      before degrading.  A sweep against a dead daemon completes
      exactly like a local one.
    """

    backend_name = "http"

    def __init__(
        self,
        url: str,
        fallback: Optional[CacheBackend] = None,
        retry: Optional[RetryPolicy] = None,
        timeout: float = 5.0,
        cooldown: float = 30.0,
        write_behind: bool = True,
    ) -> None:
        from urllib.parse import urlsplit

        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported cache URL scheme {parts.scheme!r}")
        if not parts.hostname:
            raise ValueError(f"cache URL {url!r} has no host")
        self.host = parts.hostname
        self.port = parts.port or 8750
        self.url = f"http://{self.host}:{self.port}"
        self.fallback = fallback
        self.retry = retry or RetryPolicy(max_attempts=2, backoff=0.05)
        self.timeout = timeout
        self.cooldown = cooldown
        self._down_until = 0.0
        self._init_stats()
        self.degraded_requests = 0
        self._queue: "queue.Queue[Optional[Tuple[str, Dict[str, Any]]]]" = queue.Queue()
        self._uploader: Optional[threading.Thread] = None
        if write_behind:
            self._uploader = threading.Thread(
                target=self._upload_loop, name="repro-cache-uploader", daemon=True
            )
            self._uploader.start()

    # -- raw HTTP -------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One HTTP round trip with retry; raises ConnectionError after
        the policy's budget is spent."""
        import http.client

        last: Optional[Exception] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
                try:
                    headers = {}
                    if body is not None:
                        headers["Content-Type"] = "application/json"
                    conn.request(method, path, body=body, headers=headers)
                    resp = conn.getresponse()
                    return resp.status, resp.read()
                finally:
                    conn.close()
            except (OSError, http.client.HTTPException) as exc:
                last = exc
                if self.retry.should_retry(attempt):
                    delay = self.retry.delay(attempt, path)
                    if delay > 0.0:
                        time.sleep(delay)
        raise ConnectionError(f"cache daemon {self.url} unreachable: {last}")

    def _available(self) -> bool:
        return time.monotonic() >= self._down_until

    def _degrade(self) -> None:
        self._down_until = time.monotonic() + self.cooldown
        self.degraded_requests += 1
        registry = _obs_get()
        if registry.enabled:
            registry.inc("svc.cache.http.degraded")

    # -- protocol -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        if self._available():
            try:
                status, data = self._request("GET", f"/cache/{key}")
            except ConnectionError:
                self._degrade()
            else:
                if status == 200:
                    try:
                        entry = json.loads(data.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        entry = None
                    if validate_entry(key, entry):
                        self._count("hits")
                        if self.fallback is not None and key not in self.fallback:
                            self.fallback.put_entry(key, entry)
                        return entry
                    self._count("corrupt_discards")
                    try:
                        self._request("DELETE", f"/cache/{key}")
                    except ConnectionError:
                        self._degrade()
                # 404 (or corrupt): fall through to the local fallback.
        if self.fallback is not None:
            entry = self.fallback.get(key)
            if entry is not None:
                self._count("hits")
                return entry
        self._count("misses")
        return None

    def put_entry(self, key: str, entry: Dict[str, Any]) -> None:
        if not validate_entry(key, entry):
            raise ValueError(f"malformed cache entry for key {key[:12]}...")
        if self.fallback is not None:
            self.fallback.put_entry(key, entry)
        if self._uploader is not None:
            self._queue.put((key, entry))
        else:
            self._upload(key, entry)

    def put(
        self,
        key: str,
        point: Optional[SweepPoint],
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.put_entry(key, build_entry(key, point, payload, meta))

    def _upload(self, key: str, entry: Dict[str, Any]) -> None:
        if not self._available():
            return
        blob = json.dumps(entry, separators=(",", ":")).encode("utf-8")
        try:
            self._request("PUT", f"/cache/{key}", body=blob)
        except ConnectionError:
            self._degrade()

    def _upload_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            self._upload(*item)
            self._queue.task_done()

    def flush(self, timeout: float = 10.0) -> None:
        """Block until queued write-behind uploads are on the wire."""
        if self._uploader is None:
            return
        deadline = time.monotonic() + timeout
        while not self._queue.empty() and time.monotonic() < deadline:
            time.sleep(0.01)

    def discard(self, key: str) -> bool:
        dropped = False
        if self._available():
            try:
                status, _ = self._request("DELETE", f"/cache/{key}")
                dropped = status in (200, 204)
            except ConnectionError:
                self._degrade()
        if self.fallback is not None:
            dropped = self.fallback.discard(key) or dropped
        return dropped

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        if self._available():
            try:
                status, data = self._request("GET", "/stats")
                if status == 200:
                    return int(json.loads(data.decode("utf-8"))["entries"])
            except (ConnectionError, ValueError, KeyError):
                self._degrade()
        return len(self.fallback) if self.fallback is not None else 0  # type: ignore[arg-type]

    def clear(self) -> int:
        n = 0
        if self._available():
            try:
                status, data = self._request("POST", "/clear")
                if status == 200:
                    n = int(json.loads(data.decode("utf-8"))["cleared"])
            except (ConnectionError, ValueError, KeyError):
                self._degrade()
        if self.fallback is not None:
            n = max(n, self.fallback.clear())
        return n

    def close(self) -> None:
        if self._uploader is not None:
            self.flush()
            self._queue.put(None)
            self._uploader.join(timeout=5.0)
            self._uploader = None
        if self.fallback is not None:
            self.fallback.close()

    def __repr__(self) -> str:
        state = "up" if self._available() else "degraded"
        return f"<HttpBackend {self.url} ({state})>"


# -- factory --------------------------------------------------------------------


def make_cache_backend(
    spec: Union[str, Path, CacheBackend, None],
    fallback_dir: Union[str, Path, None] = None,
) -> Optional[CacheBackend]:
    """Build a backend from a CLI spec string (see module docstring).

    ``fallback_dir`` seeds the local fallback of an ``http://`` backend
    (defaults to the standard sweep cache directory) so a daemon outage
    degrades to the plain directory cache.
    """
    if spec is None or isinstance(spec, CacheBackend):
        return spec
    if isinstance(spec, Path):
        return DirectoryBackend(spec)
    text = str(spec)
    if text == "memory":
        return MemoryBackend()
    if text.startswith("dir:"):
        return DirectoryBackend(text[len("dir:"):])
    if text.startswith("sqlite:"):
        return SqliteBackend(text[len("sqlite:"):])
    if text.startswith(("http://", "https://")):
        from ..runner.cache import default_cache_dir

        root = Path(fallback_dir) if fallback_dir is not None else default_cache_dir()
        return HttpBackend(text, fallback=DirectoryBackend(root))
    # A bare path is the historical --cache-dir behaviour.
    return DirectoryBackend(text)
