"""repro.svc — sweep-as-a-service.

The service layer generalizes the sweep runner's two hard-wired
choices (one local process pool, one directory cache) into pluggable
protocols and adds an async scheduler on top:

* :mod:`repro.svc.backends` — the :class:`CacheBackend` protocol with
  directory (sharded + LRU-bounded), memory, SQLite (WAL) and HTTP
  (read-through / write-behind) implementations;
* :mod:`repro.svc.executors` — the :class:`ExecutorBackend` protocol:
  in-process serial, process pool, and a socket server that feeds
  ``repro worker`` processes on any host;
* :mod:`repro.svc.scheduler` — :class:`SweepScheduler`, an asyncio
  multiplexer for many concurrent named submissions (tenants) with
  fair round-robin dispatch, cross-tenant cache sharing, in-flight
  dedup, per-submission deadlines and per-tenant ``svc.*`` telemetry;
* :mod:`repro.svc.httpcache` — the ``repro serve-cache`` daemon;
* :mod:`repro.svc.worker` — the ``repro worker`` pull client;
* :mod:`repro.svc.wire` — length-prefixed JSON framing shared by all
  of the above.

Every backend produces bit-identical figure output (the envelopes come
from the same :func:`~repro.runner.worker.execute_point` everywhere);
CLI-level equivalence tests pin that, the same discipline obs, trace
and faults established.  See ``docs/service.md``.
"""

from .backends import (
    CacheBackend,
    DirectoryBackend,
    HttpBackend,
    MemoryBackend,
    SqliteBackend,
    make_cache_backend,
)
from .executors import (
    ExecSpec,
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    SocketWorkerBackend,
    make_executor_backend,
)
from .httpcache import CacheDaemon, serve_cache
from .scheduler import Submission, SweepScheduler
from .worker import fetch_stats, run_worker

__all__ = [
    "CacheBackend",
    "DirectoryBackend",
    "MemoryBackend",
    "SqliteBackend",
    "HttpBackend",
    "make_cache_backend",
    "ExecSpec",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketWorkerBackend",
    "make_executor_backend",
    "SweepScheduler",
    "Submission",
    "CacheDaemon",
    "serve_cache",
    "run_worker",
    "fetch_stats",
]
