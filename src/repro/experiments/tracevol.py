"""Trace-volume experiment — quantifying the paper's motivation.

Section 1: "Performance data gathering has been estimated to grow at
the rate of 2 megabytes per second on RISC-based processors ... for
massively parallel computing systems the amount of collected data can
be impractical for all but the shortest programs."

This supplementary experiment (not a numbered figure in the paper)
measures, for each application at a fixed CPU count, the trace volume
and the per-process data rate under every policy — making explicit the
trade the policies buy: Dynamic delivers the Subset data at ~None cost
and a vanishing fraction of Full's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..apps import ALL_APPS, get_app
from ..cluster import MachineSpec, POWER3_SP
from ..dynprof import POLICIES, PolicyResult
from ..faults import FaultPlan
from ..runner import SweepPoint, SweepRunner

__all__ = [
    "TraceVolumeRow",
    "run_tracevol",
    "render_tracevol",
    "tracer_trace_bytes",
    "run_tracevol_crosscheck",
    "run_tracevol_compression",
    "render_compression",
]

#: Bytes per raw trace record (the :class:`repro.vt.TraceFile` default).
TRACE_RECORD_BYTES = 24


@dataclass
class TraceVolumeRow:
    app: str
    policy: str
    n_cpus: int
    time: float
    records: int
    mbytes: float
    #: MB/s per process while the app ran (the paper's 2 MB/s yardstick).
    rate_mb_s_per_proc: float


def run_tracevol(
    apps: Optional[List[str]] = None,
    n_cpus: int = 16,
    scale: float = 0.1,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
    faults: Optional[FaultPlan] = None,
) -> List[TraceVolumeRow]:
    """Measure trace volume per (app, policy) at one CPU count.

    The cells are the same ``policy`` sweep points Figure 7 runs, so a
    shared cache serves both experiments from one set of simulations.
    """
    cells = []
    for name in (apps if apps is not None else list(ALL_APPS)):
        app = get_app(name)
        cpus = min(n_cpus, max(app.cpu_counts))
        if cpus not in app.cpu_counts:
            cpus = max(c for c in app.cpu_counts if c <= cpus)
        for policy in POLICIES:
            if policy == "Subset" and not app.has_subset_policy:
                continue
            cells.append(SweepPoint.policy_cell(
                app.name, policy, cpus,
                scale=scale, machine=machine, seed=seed, faults=faults,
            ))
    if runner is None:
        runner = SweepRunner(jobs=jobs)
    rows: List[TraceVolumeRow] = []
    for payload in runner.run_grid(cells):
        result = PolicyResult(**payload)
        mb = result.trace_bytes / 1e6
        rate = (mb / result.time / result.n_cpus) if result.time > 0 else 0.0
        rows.append(TraceVolumeRow(
            app=result.app, policy=result.policy, n_cpus=result.n_cpus,
            time=result.time, records=result.trace_records,
            mbytes=mb, rate_mb_s_per_proc=rate,
        ))
    return rows


def render_tracevol(rows: List[TraceVolumeRow]) -> str:
    """Text table of per-(app, policy) trace volumes and data rates."""
    lines = [
        "Trace volume by policy (the paper's 2 MB/s/processor yardstick)",
        f"{'app':<9s} {'policy':<9s} {'cpus':>4s} {'time(s)':>9s} "
        f"{'records':>13s} {'MB':>9s} {'MB/s/proc':>10s}",
        "-" * 70,
    ]
    for r in rows:
        lines.append(
            f"{r.app:<9s} {r.policy:<9s} {r.n_cpus:>4d} {r.time:>9.2f} "
            f"{r.records:>13,} {r.mbytes:>9.2f} {r.rate_mb_s_per_proc:>10.3f}"
        )
    return "\n".join(lines) + "\n"


# -- tracer-derived volume cross-check --------------------------------------------


def tracer_trace_bytes(trace_doc: Dict[str, Any],
                       record_bytes: int = TRACE_RECORD_BYTES) -> int:
    """Trace volume derived from a causal-trace document.

    ``counts["vt.records"]`` is the drop-immune raw-record counter the
    VT probe path maintains (see :mod:`repro.obs.trace`); multiplied by
    the on-disk record size it is an independent measurement of the
    same quantity the analytic model (``records x record_bytes`` inside
    :class:`repro.vt.TraceFile`) predicts.
    """
    return int(trace_doc.get("counts", {}).get("vt.records", 0)) * record_bytes


def run_tracevol_crosscheck(
    apps: Optional[List[str]] = None,
    policy: str = "Full",
    n_cpus: int = 4,
    scale: float = 0.05,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    batched: bool = True,
) -> List[Dict[str, Any]]:
    """Run one traced cell per app and compare the tracer-derived trace
    volume against the analytic model's.

    Returns one row per app: ``{"app", "policy", "analytic_bytes",
    "tracer_bytes", "rel_err", "batched", "raw_records",
    "expanded_records"}``.  ``rel_err`` excludes the handful of
    finalisation markers (suspension intervals) the analytic count
    includes but the runtime counter cannot see; it stays well under a
    few percent on every app, which is the acceptance tolerance the
    test suite pins.

    Two knobs make the :class:`~repro.vt.records.BatchPairRecord`
    accounting fully exercised rather than assumed:

    * ``batched=False`` re-runs the same workload with the executor's
      batch fast path off (:func:`repro.program.set_batching`), so the
      stream carries raw enter/leave pairs where the batched stream
      carries aggregate records — both must match the analytic model
      to the same tolerance;
    * every row expands the trace's batch records explicitly
      (:func:`repro.compact.expand_batch_pairs`) and reports the
      expanded stream's length, which must equal ``raw_records``
      exactly — the 2n-per-batch identity the volume model rests on.
    """
    from ..compact import expand_batch_pairs
    from ..dynprof import run_policy_job
    from ..obs import trace as obs_trace
    from ..program import set_batching

    rows: List[Dict[str, Any]] = []
    for name in (apps if apps is not None else list(ALL_APPS)):
        previous = set_batching(batched)
        try:
            with obs_trace.tracing(detail="coarse") as tracer:
                result, job = run_policy_job(
                    get_app(name), policy, n_cpus,
                    scale=scale, machine=machine, seed=seed,
                )
            trace_doc = tracer.snapshot()
        finally:
            set_batching(previous)
        analytic = int(result.trace_bytes)
        derived = tracer_trace_bytes(trace_doc)
        rel_err = (
            abs(derived - analytic) / analytic if analytic else
            (0.0 if derived == 0 else float("inf"))
        )
        raw_records = job.trace.raw_record_count
        expanded = sum(
            sum(1 for _ in expand_batch_pairs(buf.records))
            for buf in job.trace.buffers.values()
        )
        rows.append({
            "app": name,
            "policy": policy,
            "analytic_bytes": analytic,
            "tracer_bytes": derived,
            "rel_err": rel_err,
            "batched": batched,
            "raw_records": raw_records,
            "expanded_records": expanded,
        })
    return rows


# -- compression-ratio curve -------------------------------------------------------


def run_tracevol_compression(
    apps: Optional[List[str]] = None,
    policy: str = "Full",
    n_cpus: int = 4,
    scale: float = 0.05,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Per-app compression curve of the VGVZ codec, model-cross-checked.

    Runs one policy cell per app, compresses the postmortem
    :class:`~repro.vt.buffer.TraceFile` with suppression on and off,
    and returns one row per app::

        {"app", "policy", "n_cpus", "raw_records", "analytic_bytes",
         "compact_bytes", "unsuppressed_bytes", "bytes_per_record",
         "ratio", "folds", "lossless"}

    ``analytic_bytes`` is the volume model (``raw_records x
    record_bytes``) and is asserted equal to the codec's own
    ``model_bytes`` accounting; ``lossless`` is a per-app round-trip
    verification (decode equals input, record for record).
    """
    from ..compact import compress_trace_bytes, decompress_trace
    from ..dynprof import run_policy_job

    rows: List[Dict[str, Any]] = []
    for name in (apps if apps is not None else list(ALL_APPS)):
        result, job = run_policy_job(
            get_app(name), policy, n_cpus,
            scale=scale, machine=machine, seed=seed,
        )
        trace = job.trace
        data, stats = compress_trace_bytes(trace)
        if stats.model_bytes != trace.size_bytes:
            raise RuntimeError(
                f"{name}: codec model accounting {stats.model_bytes} != "
                f"analytic volume {trace.size_bytes}"
            )
        _data_off, stats_off = compress_trace_bytes(trace, suppress=False)
        decoded = decompress_trace(data)
        lossless = _same_records(trace, decoded)
        rows.append({
            "app": name,
            "policy": policy,
            "n_cpus": int(result.n_cpus),
            "raw_records": stats.raw_records,
            "analytic_bytes": stats.model_bytes,
            "compact_bytes": stats.compact_bytes,
            "unsuppressed_bytes": stats_off.compact_bytes,
            "bytes_per_record": stats.bytes_per_record,
            "ratio": stats.ratio,
            "folds": stats.folds,
            "lossless": lossless,
        })
    return rows


def _same_records(a: Any, b: Any) -> bool:
    """Record-for-record, field-for-field equality of two TraceFiles."""
    if sorted(a.buffers) != sorted(b.buffers):
        return False
    for key, buf in a.buffers.items():
        other = b.buffers[key].records
        if len(buf.records) != len(other):
            return False
        for x, y in zip(buf.records, other):
            if type(x) is not type(y):
                return False
            if any(getattr(x, s) != getattr(y, s) for s in x.__slots__):
                return False
    return True


def render_compression(rows: List[Dict[str, Any]]) -> str:
    """Text table of the per-app compression curve."""
    lines = [
        "VGVZ compression vs the analytic volume model "
        "(records x 24 bytes)",
        f"{'app':<9s} {'cpus':>4s} {'records':>12s} {'model MB':>9s} "
        f"{'VGVZ KB':>9s} {'B/rec':>7s} {'ratio':>8s} {'folds':>6s}",
        "-" * 72,
    ]
    for r in rows:
        lines.append(
            f"{r['app']:<9s} {r['n_cpus']:>4d} {r['raw_records']:>12,} "
            f"{r['analytic_bytes'] / 1e6:>9.2f} "
            f"{r['compact_bytes'] / 1e3:>9.1f} "
            f"{r['bytes_per_record']:>7.3f} {r['ratio']:>7.1f}x "
            f"{r['folds']:>6d}"
        )
    return "\n".join(lines) + "\n"
