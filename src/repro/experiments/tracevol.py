"""Trace-volume experiment — quantifying the paper's motivation.

Section 1: "Performance data gathering has been estimated to grow at
the rate of 2 megabytes per second on RISC-based processors ... for
massively parallel computing systems the amount of collected data can
be impractical for all but the shortest programs."

This supplementary experiment (not a numbered figure in the paper)
measures, for each application at a fixed CPU count, the trace volume
and the per-process data rate under every policy — making explicit the
trade the policies buy: Dynamic delivers the Subset data at ~None cost
and a vanishing fraction of Full's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..apps import ALL_APPS, get_app
from ..cluster import MachineSpec, POWER3_SP
from ..dynprof import POLICIES, PolicyResult
from ..faults import FaultPlan
from ..runner import SweepPoint, SweepRunner

__all__ = [
    "TraceVolumeRow",
    "run_tracevol",
    "render_tracevol",
    "tracer_trace_bytes",
    "run_tracevol_crosscheck",
]

#: Bytes per raw trace record (the :class:`repro.vt.TraceFile` default).
TRACE_RECORD_BYTES = 24


@dataclass
class TraceVolumeRow:
    app: str
    policy: str
    n_cpus: int
    time: float
    records: int
    mbytes: float
    #: MB/s per process while the app ran (the paper's 2 MB/s yardstick).
    rate_mb_s_per_proc: float


def run_tracevol(
    apps: Optional[List[str]] = None,
    n_cpus: int = 16,
    scale: float = 0.1,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
    faults: Optional[FaultPlan] = None,
) -> List[TraceVolumeRow]:
    """Measure trace volume per (app, policy) at one CPU count.

    The cells are the same ``policy`` sweep points Figure 7 runs, so a
    shared cache serves both experiments from one set of simulations.
    """
    cells = []
    for name in (apps if apps is not None else list(ALL_APPS)):
        app = get_app(name)
        cpus = min(n_cpus, max(app.cpu_counts))
        if cpus not in app.cpu_counts:
            cpus = max(c for c in app.cpu_counts if c <= cpus)
        for policy in POLICIES:
            if policy == "Subset" and not app.has_subset_policy:
                continue
            cells.append(SweepPoint.policy_cell(
                app.name, policy, cpus,
                scale=scale, machine=machine, seed=seed, faults=faults,
            ))
    if runner is None:
        runner = SweepRunner(jobs=jobs)
    rows: List[TraceVolumeRow] = []
    for payload in runner.run_grid(cells):
        result = PolicyResult(**payload)
        mb = result.trace_bytes / 1e6
        rate = (mb / result.time / result.n_cpus) if result.time > 0 else 0.0
        rows.append(TraceVolumeRow(
            app=result.app, policy=result.policy, n_cpus=result.n_cpus,
            time=result.time, records=result.trace_records,
            mbytes=mb, rate_mb_s_per_proc=rate,
        ))
    return rows


def render_tracevol(rows: List[TraceVolumeRow]) -> str:
    """Text table of per-(app, policy) trace volumes and data rates."""
    lines = [
        "Trace volume by policy (the paper's 2 MB/s/processor yardstick)",
        f"{'app':<9s} {'policy':<9s} {'cpus':>4s} {'time(s)':>9s} "
        f"{'records':>13s} {'MB':>9s} {'MB/s/proc':>10s}",
        "-" * 70,
    ]
    for r in rows:
        lines.append(
            f"{r.app:<9s} {r.policy:<9s} {r.n_cpus:>4d} {r.time:>9.2f} "
            f"{r.records:>13,} {r.mbytes:>9.2f} {r.rate_mb_s_per_proc:>10.3f}"
        )
    return "\n".join(lines) + "\n"


# -- tracer-derived volume cross-check --------------------------------------------


def tracer_trace_bytes(trace_doc: Dict[str, Any],
                       record_bytes: int = TRACE_RECORD_BYTES) -> int:
    """Trace volume derived from a causal-trace document.

    ``counts["vt.records"]`` is the drop-immune raw-record counter the
    VT probe path maintains (see :mod:`repro.obs.trace`); multiplied by
    the on-disk record size it is an independent measurement of the
    same quantity the analytic model (``records x record_bytes`` inside
    :class:`repro.vt.TraceFile`) predicts.
    """
    return int(trace_doc.get("counts", {}).get("vt.records", 0)) * record_bytes


def run_tracevol_crosscheck(
    apps: Optional[List[str]] = None,
    policy: str = "Full",
    n_cpus: int = 4,
    scale: float = 0.05,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Run one traced cell per app and compare the tracer-derived trace
    volume against the analytic model's.

    Returns one row per app: ``{"app", "policy", "analytic_bytes",
    "tracer_bytes", "rel_err"}``.  ``rel_err`` excludes the handful of
    finalisation markers (suspension intervals) the analytic count
    includes but the runtime counter cannot see; it stays well under a
    few percent on every app, which is the acceptance tolerance the
    test suite pins.
    """
    from ..runner.worker import execute_point

    rows: List[Dict[str, Any]] = []
    for name in (apps if apps is not None else list(ALL_APPS)):
        point = SweepPoint.policy_cell(
            name, policy, n_cpus, scale=scale, machine=machine, seed=seed,
        )
        envelope = execute_point(point, collect_trace=True,
                                 trace_detail="coarse")
        if envelope["status"] != "ok":
            raise RuntimeError(
                f"tracevol crosscheck: {point.label}: "
                f"{envelope.get('error', envelope['status'])}"
            )
        analytic = int(envelope["payload"]["trace_bytes"])
        derived = tracer_trace_bytes(envelope["trace"])
        rel_err = (
            abs(derived - analytic) / analytic if analytic else
            (0.0 if derived == 0 else float("inf"))
        )
        rows.append({
            "app": name,
            "policy": policy,
            "analytic_bytes": analytic,
            "tracer_bytes": derived,
            "rel_err": rel_err,
        })
    return rows
