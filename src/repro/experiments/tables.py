"""Tables 1-3 of the paper, regenerated from the implementation.

These are rendered from the live objects (command registry, app specs,
policy registry) rather than hard-coded, so they double as a consistency
check: if the implementation drifts from the paper's surface, the tables
drift visibly.
"""

from __future__ import annotations

from ..apps import ALL_APPS
from ..dynprof import POLICIES, policy_description
from ..dynprof.commands import _ALIASES

__all__ = ["render_table1", "render_table2", "render_table3"]

_TABLE1_ROWS = [
    ("help", "h", "Displays a help message"),
    ("insert ...", "i", "Inserts instrumentation into one or more functions."),
    ("remove ...", "r", "Removes instrumentation from one or more functions."),
    ("insert-file ...", "if",
     "Inserts instrumentation into all of the functions listed in the "
     "provided file or files."),
    ("remove-file ...", "rf",
     "Removes instrumentation from all of the functions listed in the "
     "provided file or files."),
    ("start", "s", "Starts execution of the target application."),
    ("quit", "q", "Detaches the instrumenter from the application."),
    ("wait", "w", "Causes the tool to wait before executing the next command."),
]


def render_table1() -> str:
    """Table 1: the commands accepted by the dynprof tool."""
    # Sanity check against the live parser registry.
    for long_cmd, short, _desc in _TABLE1_ROWS:
        verb = long_cmd.split()[0]
        assert _ALIASES[verb] == verb, f"{verb} missing from the parser"
        assert _ALIASES[short] == verb, f"shortcut {short} missing"
    lines = [
        "Table 1. The commands accepted by the dynprof tool.",
        f"{'Command':<18s} {'Shortcut':<9s} Description",
        "-" * 76,
    ]
    for long_cmd, short, desc in _TABLE1_ROWS:
        lines.append(f"{long_cmd:<18s} {short:<9s} {desc}")
    return "\n".join(lines) + "\n"


def render_table2() -> str:
    """Table 2: the ASCI kernel applications."""
    lines = [
        "Table 2. The ASCI kernel applications.",
        f"{'':<10s} {'Type/Lang':<10s} {'Functions':>9s}  Description",
        "-" * 72,
    ]
    for app in ALL_APPS.values():
        lines.append(
            f"{app.title:<10s} {app.lang:<10s} {app.n_functions:>9d}  "
            f"{app.description}"
        )
    return "\n".join(lines) + "\n"


def render_table3() -> str:
    """Table 3: the instrumentation policies."""
    lines = [
        "Table 3. The instrumentation policies.",
        f"{'Policy':<10s} Description",
        "-" * 76,
    ]
    for policy in POLICIES:
        lines.append(f"{policy:<10s} {policy_description(policy)}")
    return "\n".join(lines) + "\n"
