"""The ``repro-experiments replay`` subcommand — verify and bisect runs.

Builds on :mod:`repro.replay`: every simulated point can record its
*order log* — the sequence of nondeterminism-relevant decisions (event
drain order, message match/delivery order, fault-injector draws) — and
a later run of the same point can be *verified* against that log,
failing loudly at the first divergent decision instead of silently
producing different numbers.

* ``replay verify LOG`` — re-run the point a recorded ``.order`` file
  describes (the log's metadata carries the point's canonical JSON)
  and check every decision against the recording.  Exit 0 when the run
  is bit-identical, 1 with a first-divergence report otherwise.
* ``replay bisect`` — delta-debug a failing fault plan: re-run one
  (app, policy/instrument, CPUs) point under subsets of the plan's
  specs (classic ddmin) until a 1-minimal interesting sub-plan
  remains.  ``--mode effect`` (default) keeps specs that change the
  payload versus the fault-free baseline; ``--mode fail`` keeps specs
  that break the run outright; ``--mode diverge`` keeps specs that
  perturb the partial order of a clean recording (``--against LOG``).

Both commands are deterministic: the same inputs always reproduce the
same verdict, the same minimal subset and the same test count.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..apps import ALL_APPS, get_app
from ..cluster import MACHINES, get_machine
from ..dynprof import POLICIES
from ..replay.orderlog import OrderLog
from ..runner.point import SweepPoint

__all__ = ["replay_main", "verify_main", "bisect_main"]


def _print_divergence(divergence: dict) -> None:
    expected = divergence.get("expected")
    actual = divergence.get("actual")
    print(f"  first divergence: decision #{divergence.get('index')} "
          f"(t={divergence.get('sim_time')}, "
          f"channel={divergence.get('channel')})")
    print(f"    expected: {json.dumps(expected, sort_keys=True)}")
    print(f"    actual:   {json.dumps(actual, sort_keys=True)}")


def verify_main(argv: List[str]) -> int:
    """``repro-experiments replay verify`` — replay a recorded order log."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments replay verify",
        description="Re-run the point a recorded order log describes and "
                    "verify every nondeterminism decision against the "
                    "recording; exits 1 at the first divergence.",
    )
    parser.add_argument("log", metavar="LOG",
                        help="a recorded .order file (chaos --record, "
                             "figure/sweep --record DIR)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="wall-clock budget for the re-run")
    parser.add_argument("--json", action="store_true",
                        help="print the verdict as a JSON document")
    args = parser.parse_args(argv)

    from ..runner.worker import execute_point

    try:
        log = OrderLog.load(args.log)
    except (OSError, ValueError) as exc:
        print(f"repro-experiments replay: {args.log}: {exc}",
              file=sys.stderr)
        return 1
    point_doc = (log.meta or {}).get("point")
    if not point_doc:
        print(f"repro-experiments replay: {args.log}: log metadata carries "
              "no point description; cannot rebuild the run",
              file=sys.stderr)
        return 1
    point = SweepPoint.from_canonical(point_doc)

    envelope = execute_point(point, timeout=args.timeout,
                             replay_log=log.to_b64())
    verified = envelope["status"] == "ok"
    if args.json:
        doc = {
            "log": args.log,
            "point": point.canonical(),
            "decisions": len(log.decisions),
            "status": envelope["status"],
            "verified": verified,
        }
        if envelope.get("divergence"):
            doc["divergence"] = envelope["divergence"]
        print(json.dumps(doc, indent=2))
        return 0 if verified else 1
    if verified:
        print(f"replay verify: {point.label}: OK "
              f"({len(log.decisions)} decision(s) bit-identical)")
        return 0
    print(f"replay verify: {point.label}: {envelope['status'].upper()}")
    if envelope.get("divergence"):
        _print_divergence(envelope["divergence"])
    elif envelope.get("error"):
        print(f"  {envelope['error'].strip().splitlines()[-1]}")
    return 1


def bisect_main(argv: List[str]) -> int:
    """``repro-experiments replay bisect`` — minimize a fault plan."""
    from .cli import _add_faults_args, _load_fault_plan

    parser = argparse.ArgumentParser(
        prog="repro-experiments replay bisect",
        description="Delta-debug a fault plan (ddmin) down to a 1-minimal "
                    "sub-plan that stays interesting: changes the payload "
                    "(--mode effect), breaks the run (--mode fail), or "
                    "diverges from a clean recording (--mode diverge "
                    "--against LOG).",
    )
    parser.add_argument("--kind", choices=("instrument", "policy"),
                        default="instrument",
                        help="point kind (default instrument, as in chaos)")
    parser.add_argument("--app", default="sweep3d",
                        help=f"application (one of {','.join(ALL_APPS)}; "
                             "default sweep3d)")
    parser.add_argument("--policy", default="Dynamic",
                        help="instrumentation policy for --kind policy")
    parser.add_argument("--cpus", type=int, default=32,
                        help="process count (default 32)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale factor (default 0.02)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--machine", choices=sorted(MACHINES),
                        default="power3-sp",
                        help="machine preset (default power3-sp)")
    parser.add_argument("--mode", choices=("effect", "fail", "diverge"),
                        default="effect",
                        help="what makes a sub-plan interesting "
                             "(default effect)")
    parser.add_argument("--against", metavar="LOG", default=None,
                        help="clean recorded order log for --mode diverge")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="wall-clock budget per test run")
    parser.add_argument("--json", action="store_true",
                        help="print the result as a JSON document")
    _add_faults_args(parser)
    args = parser.parse_args(argv)

    from ..replay import bisect_plan

    try:
        get_app(args.app)
    except KeyError as exc:
        parser.error(str(exc))
    if args.policy not in POLICIES:
        parser.error(f"unknown policy {args.policy!r}; known: "
                     f"{','.join(POLICIES)}")
    plan = _load_fault_plan(args, parser)
    if plan is None:
        parser.error("replay bisect needs a plan: --faults FILE or --plan NAME")
    if not len(plan):
        parser.error("the plan is empty; nothing to bisect")
    against: Optional[OrderLog] = None
    if args.mode == "diverge":
        if not args.against:
            parser.error("--mode diverge needs --against LOG (a clean "
                         "recording of the fault-free point)")
        try:
            against = OrderLog.load(args.against)
        except (OSError, ValueError) as exc:
            parser.error(f"--against {args.against}: {exc}")
    elif args.against:
        parser.error("--against only applies to --mode diverge")

    machine = get_machine(args.machine)
    if args.kind == "policy":
        point = SweepPoint.policy_cell(
            args.app, args.policy, args.cpus,
            scale=args.scale, machine=machine, seed=args.seed,
        )
    else:
        point = SweepPoint.instrument(
            args.app, args.cpus,
            scale=args.scale, machine=machine, seed=args.seed,
        )

    try:
        result = bisect_plan(point, plan, mode=args.mode, against=against,
                             timeout=args.timeout)
    except ValueError as exc:
        print(f"repro-experiments replay bisect: {exc}", file=sys.stderr)
        return 1

    if args.json:
        doc = {"point": point.canonical(), "mode": args.mode,
               **result.to_dict()}
        print(json.dumps(doc, indent=2))
        return 0
    print(f"replay bisect: {point.label} under mode={args.mode}")
    print(f"  {result.original_size} spec(s) -> {len(result.minimal)} "
          f"(1-minimal) in {result.tests} deterministic test run(s)")
    for i, spec in enumerate(result.minimal.specs):
        print(f"  [{i}] {json.dumps(spec.to_dict(), sort_keys=True)}")
    return 0


def replay_main(argv: List[str]) -> int:
    """``repro-experiments replay`` — dispatch verify/bisect."""
    if argv and argv[0] == "verify":
        return verify_main(argv[1:])
    if argv and argv[0] == "bisect":
        return bisect_main(argv[1:])
    print("usage: repro-experiments replay {verify LOG | bisect ...}\n"
          "  verify  re-run a recorded order log and check every decision\n"
          "  bisect  delta-debug a fault plan to a 1-minimal subset",
          file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(replay_main(sys.argv[1:]))
