"""The ``repro-experiments obs`` subcommand — inspect and serve obs documents.

An *obs document* is the JSON written by ``--obs FILE`` (sweep, figure
and chaos runs alike): a registry snapshot under ``"obs"``, optionally
a telemetry summary under ``"telemetry"`` and per-label sampled series
under ``"timeseries"``.  This module turns those files back into
something a human — or a Prometheus scraper — can consume without
re-running anything:

* ``obs report FILE`` — text report (registry rows, telemetry summary,
  per-label series/overhead digests); ``--prom`` renders the snapshot
  in Prometheus text exposition instead, ``--csv`` dumps the sampled
  series in long CSV, ``--json`` re-emits the document with every
  series decoded to plain arrays.  ``FILE`` may be ``-`` for stdin.
* ``obs serve FILE`` — a small HTTP daemon exposing the document at
  ``/metrics`` (Prometheus text), ``/stats`` (JSON) and ``/healthz``,
  so a dashboard can scrape a finished run exactly like it scrapes the
  live serve-cache daemon.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..analysis.report import render_obs_report
from ..obs import prom
from ..obs.timeseries import decode_series, overhead_series, timeseries_to_csv

__all__ = ["obs_main", "load_obs_document", "render_obs_document",
           "decode_document", "ObsDocServer", "serve_obs_document"]


def _fail(message: str) -> "SystemExit":
    print(f"repro-experiments: {message}", file=sys.stderr)
    return SystemExit(1)


def load_obs_document(path: str) -> Dict[str, Any]:
    """Read an obs document from ``path`` (``-`` = stdin)."""
    try:
        if path == "-":
            doc = json.load(sys.stdin)
        else:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
    except OSError as exc:
        raise _fail(f"cannot read obs document {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise _fail(f"obs document {path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or "obs" not in doc:
        raise _fail(f"obs document {path} has no 'obs' snapshot "
                    f"(was it written by --obs?)")
    return doc


def render_obs_document(doc: Dict[str, Any]) -> str:
    """The human-readable report for one obs document."""
    parts: List[str] = []
    version = doc.get("version")
    point = doc.get("point")
    header = "obs document"
    if version:
        header += f" (repro {version})"
    parts.append(header)
    if isinstance(point, dict) and point.get("label"):
        parts.append(f"point: {point['label']}")
    parts.append("")
    parts.append(render_obs_report(doc.get("obs", {})).rstrip("\n"))
    telemetry = doc.get("telemetry")
    if isinstance(telemetry, dict) and telemetry:
        parts.append("")
        parts.append("sweep telemetry")
        for key in sorted(telemetry):
            parts.append(f"  {key:<28s} {telemetry[key]}")
    timeseries = doc.get("timeseries")
    if isinstance(timeseries, dict) and timeseries:
        parts.append("")
        parts.append("sampled time series")
        for label in sorted(timeseries):
            ts = timeseries[label]
            series = ts.get("series", {})
            dropped = sum(int(s.get("dropped", 0)) for s in series.values())
            times, cum = overhead_series(ts)
            line = (f"  {label}: {len(series)} series, "
                    f"{ts.get('samples', 0)} samples @ "
                    f"{ts.get('interval', 0):g}s")
            if dropped:
                line += f", {dropped} dropped"
            if cum:
                line += (f"; instrumentation overhead "
                         f"{cum[-1]:.6f}s by t={times[-1]:.3f}s")
            parts.append(line)
            probes = ts.get("probes", {})
            if probes:
                top = sorted(probes.items(),
                             key=lambda kv: -kv[1].get("overhead", 0.0))[:5]
                for name, row in top:
                    parts.append(
                        f"    {name:<26.26s} {int(row.get('count', 0)):>8d} "
                        f"pairs  overhead {row.get('overhead', 0.0):.6f}s"
                    )
    return "\n".join(parts) + "\n"


def decode_document(doc: Dict[str, Any]) -> Dict[str, Any]:
    """The document with every delta-encoded series expanded to plain
    ``{"t": [...], "v": [...]}`` arrays (for ``--json`` consumers that
    don't speak the varint codec)."""
    out = dict(doc)
    timeseries = doc.get("timeseries")
    if isinstance(timeseries, dict):
        decoded: Dict[str, Any] = {}
        for label, ts in timeseries.items():
            ts_out = dict(ts)
            series_out: Dict[str, Any] = {}
            for name, sdoc in ts.get("series", {}).items():
                times, values = decode_series(sdoc)
                series_out[name] = {
                    "kind": sdoc.get("kind"),
                    "dropped": sdoc.get("dropped", 0),
                    "total": sdoc.get("total", 0.0),
                    "t": times,
                    "v": values,
                }
            ts_out["series"] = series_out
            decoded[label] = ts_out
        out["timeseries"] = decoded
    return out


# -- obs serve --------------------------------------------------------------------


class _ObsDocHandler(BaseHTTPRequestHandler):
    server: "ObsDocServer"

    def log_message(self, fmt: str, *args: Any) -> None:  # quiet by default
        if self.server.verbose:
            sys.stderr.write("obs-serve: " + fmt % args + "\n")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        srv = self.server
        if path == "/metrics":
            self._reply(200, srv.metrics_text().encode("utf-8"),
                        prom.CONTENT_TYPE)
        elif path == "/stats":
            body = json.dumps(srv.stats(), indent=2).encode("utf-8")
            self._reply(200, body + b"\n", "application/json")
        elif path == "/healthz":
            self._reply(200, b"ok\n", "text/plain; charset=utf-8")
        else:
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")


class ObsDocServer(ThreadingHTTPServer):
    """Serves one loaded obs document (read-only, so thread-safe)."""

    daemon_threads = True

    def __init__(self, doc: Dict[str, Any], host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        super().__init__((host, port), _ObsDocHandler)
        self.doc = doc
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    def metrics_text(self) -> str:
        return prom.render_snapshot(self.doc.get("obs", {}))

    def stats(self) -> Dict[str, Any]:
        timeseries = self.doc.get("timeseries", {})
        labels = sorted(timeseries) if isinstance(timeseries, dict) else []
        return {
            "version": self.doc.get("version"),
            "telemetry": self.doc.get("telemetry", {}),
            "labels": labels,
            "samples": {
                label: timeseries[label].get("samples", 0) for label in labels
            },
        }


def serve_obs_document(
    doc: Dict[str, Any], host: str = "127.0.0.1", port: int = 0
) -> ObsDocServer:
    """Start an :class:`ObsDocServer` on a daemon thread; returns it
    (``.port`` carries the bound port, ``.shutdown()`` stops it)."""
    server = ObsDocServer(doc, host=host, port=port)
    thread = threading.Thread(target=server.serve_forever,
                              name="obs-serve", daemon=True)
    thread.start()
    return server


# -- CLI --------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Inspect or serve obs metric documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render an obs document (text/CSV/Prometheus/JSON)"
    )
    report.add_argument("file", help="obs document path, or - for stdin")
    fmt = report.add_mutually_exclusive_group()
    fmt.add_argument("--csv", action="store_true",
                     help="emit the sampled series as long-format CSV")
    fmt.add_argument("--prom", action="store_true",
                     help="emit the snapshot in Prometheus text exposition")
    fmt.add_argument("--json", action="store_true",
                     help="re-emit the document with series decoded to arrays")

    serve = sub.add_parser(
        "serve", help="serve an obs document over HTTP "
                      "(/metrics, /stats, /healthz)"
    )
    serve.add_argument("file", help="obs document path, or - for stdin")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9464)
    return parser


def obs_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    doc = load_obs_document(args.file)
    if args.command == "report":
        if args.csv:
            sys.stdout.write(timeseries_to_csv(doc.get("timeseries", {})))
        elif args.prom:
            sys.stdout.write(prom.render_snapshot(doc.get("obs", {})))
        elif args.json:
            json.dump(decode_document(doc), sys.stdout, indent=2)
            sys.stdout.write("\n")
        else:
            sys.stdout.write(render_obs_document(doc))
        return 0
    # serve
    server = ObsDocServer(doc, host=args.host, port=args.port, verbose=True)
    print(f"obs-serve: http://{args.host}:{server.port}/metrics "
          f"(/stats, /healthz; Ctrl-C to stop)", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
