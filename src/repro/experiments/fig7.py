"""Figure 7 — execution time of the instrumented application versions.

One panel per ASCI kernel: Smg98 (a), Sppm (b), Sweep3d (c), Umt98 (d);
series = the Table 3 policies; x = processor counts.  The reported time
is the main-computation elapsed time (instrumentation creation/insertion
excluded, probe overhead included), exactly as in Section 4.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..apps import AppSpec, get_app
from ..cluster import MachineSpec, POWER3_SP
from ..dynprof import POLICIES, PolicyResult
from ..faults import FaultPlan
from ..runner import SweepPoint, SweepRunner
from .results import FigureResult

__all__ = ["run_fig7", "fig7_shape_report", "FIG7_PANELS"]

#: figure panel -> application.
FIG7_PANELS = {
    "fig7a": "smg98",
    "fig7b": "sppm",
    "fig7c": "sweep3d",
    "fig7d": "umt98",
}


def run_fig7(
    app: AppSpec | str,
    cpu_counts: Optional[Sequence[int]] = None,
    scale: float = 0.1,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    collect: Optional[Dict[str, List[PolicyResult]]] = None,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
    faults: Optional[FaultPlan] = None,
) -> FigureResult:
    """Reproduce one Figure 7 panel.

    ``scale`` shrinks the workload (fewer cycles/steps); overhead ratios
    are scale-invariant because probe cost and compute are both
    per-call.  ``collect`` (optional) receives the raw PolicyResults.

    The (policy x CPU-count) grid executes through a
    :class:`~repro.runner.SweepRunner` — pass ``runner`` to share a
    worker pool/cache across figures, or just ``jobs`` to parallelize
    this panel; the simulation is deterministic, so the result is
    identical whichever path ran it.
    """
    app = get_app(app) if isinstance(app, str) else app
    cpus = list(cpu_counts) if cpu_counts is not None else list(app.cpu_counts)
    panel = {v: k for k, v in FIG7_PANELS.items()}.get(app.name, "fig7")
    fig = FigureResult(
        figure_id=panel,
        title=f"The execution time of instrumented versions of {app.title}",
        xlabel="CPUs",
        ylabel="Time (s)",
        x=cpus,
    )
    fig.notes.append(f"workload scale={scale} (times scale ~linearly with it)")
    fig.notes.append(f"machine={machine.name}, seed={seed}")
    if not app.has_subset_policy:
        fig.notes.append(
            "no Subset version: Full and None are already comparable "
            "(paper, Section 4.3)"
        )

    policies = [p for p in POLICIES
                if p != "Subset" or app.has_subset_policy]
    points = [
        SweepPoint.policy_cell(app.name, policy, n,
                               scale=scale, machine=machine, seed=seed,
                               faults=faults)
        for policy in policies
        for n in cpus
    ]
    if runner is None:
        runner = SweepRunner(jobs=jobs)
    payloads = iter(runner.run_grid(points))
    for policy in policies:
        values: List[Optional[float]] = []
        for _n in cpus:
            result = PolicyResult(**next(payloads))
            values.append(result.time)
            if collect is not None:
                collect.setdefault(policy, []).append(result)
        fig.add_series(policy, values)
    return fig


def fig7_shape_report(fig: FigureResult, app: AppSpec | str) -> List[str]:
    """Check the paper's qualitative claims against a fig7 panel.

    Returns a list of "PASS/FAIL: claim" strings (used by tests and by
    EXPERIMENTS.md generation).
    """
    app = get_app(app) if isinstance(app, str) else app
    checks: List[str] = []
    x_max = fig.x[-1]

    def check(label: str, ok: bool) -> None:
        checks.append(f"{'PASS' if ok else 'FAIL'}: {label}")

    full = fig.get("Full").value_at(fig.x, x_max)
    none = fig.get("None").value_at(fig.x, x_max)
    dyn = fig.get("Dynamic").value_at(fig.x, x_max)
    off = fig.get("Full-Off").value_at(fig.x, x_max)

    if app.name == "smg98":
        check("Full ~7x slower than None at 64 CPUs", 4.5 <= full / none <= 10)
        check("Full-Off well above None", off / none >= 1.2)
        sub = fig.get("Subset").value_at(fig.x, x_max)
        check("Subset approximately equal to Full-Off", 0.8 <= sub / off <= 1.25)
        check("Dynamic very close to None", dyn / none <= 1.05)
        t0 = fig.get("None").values[0]
        check("weak scaling: time grows with CPUs", none > t0)
    elif app.name == "sppm":
        check("Full larger but not as extreme as Smg98", 1.15 <= full / none <= 3.0)
        sub = fig.get("Subset").value_at(fig.x, x_max)
        check("Full-Off and Subset similar", 0.8 <= sub / off <= 1.25)
        check("Dynamic performs almost as well as None", dyn / none <= 1.05)
    elif app.name == "sweep3d":
        check("Full and None comparable (negligible differences)",
              abs(full / none - 1.0) <= 0.10)
        check("Dynamic comparable to None", abs(dyn / none - 1.0) <= 0.10)
        t_first = fig.get("None").values[0]
        check("strong scaling: time decreases with CPUs", none < t_first / 3)
    elif app.name == "umt98":
        check("noticeable benefit of Dynamic over Full", full > dyn * 1.05)
        check("variations less significant than Smg98/Sppm", full / none <= 2.0)
        t_first = fig.get("None").values[0]
        check("strong scaling: time decreases with CPUs", none < t_first / 2)
    return checks
