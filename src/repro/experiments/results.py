"""Result containers and text rendering for the experiment harness.

Every figure becomes a :class:`FigureResult`: named series over a
common x-axis (CPU counts), rendered as an aligned text table — the
same rows/series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["Series", "FigureResult"]


@dataclass
class Series:
    """One line of a figure: a label and y-values over the x-axis."""

    label: str
    values: List[Optional[float]]

    def value_at(self, x_axis: Sequence[int], x: int) -> Optional[float]:
        try:
            return self.values[list(x_axis).index(x)]
        except ValueError:
            return None


@dataclass
class FigureResult:
    """A reproduced figure: x-axis + series + provenance notes."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    x: List[int]
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[Optional[float]]) -> Series:
        if len(values) != len(self.x):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.x)} x points"
            )
        s = Series(label, list(values))
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")

    def ratio(self, num_label: str, den_label: str, x: int) -> float:
        """Series ratio at one x (e.g. Full/None at 64 CPUs)."""
        num = self.get(num_label).value_at(self.x, x)
        den = self.get(den_label).value_at(self.x, x)
        if num is None or den is None or den == 0:
            raise ValueError(f"cannot form ratio at x={x}")
        return num / den

    # -- rendering --------------------------------------------------------------

    def render(self, precision: int = 3) -> str:
        label_w = max(len(self.xlabel), 6)
        col_w = max([len(s.label) for s in self.series] + [precision + 7])
        header = f"{self.figure_id}: {self.title}"
        lines = [header, "=" * len(header)]
        row = f"{self.xlabel:>{label_w}s}"
        for s in self.series:
            row += f"  {s.label:>{col_w}s}"
        lines.append(row)
        for i, x in enumerate(self.x):
            row = f"{x:>{label_w}d}"
            for s in self.series:
                v = s.values[i]
                cell = "-" if v is None else f"{v:.{precision}f}"
                row += f"  {cell:>{col_w}s}"
            lines.append(row)
        lines.append(f"(y-axis: {self.ylabel})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        lines = [",".join([self.xlabel] + [s.label for s in self.series])]
        for i, x in enumerate(self.x):
            cells = [str(x)]
            for s in self.series:
                v = s.values[i]
                cells.append("" if v is None else repr(v))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"<FigureResult {self.figure_id}: {len(self.series)} series over {self.x}>"
