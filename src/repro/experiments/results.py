"""Result containers and text rendering for the experiment harness.

Every figure becomes a :class:`FigureResult`: named series over a
common x-axis (CPU counts), rendered as an aligned text table — the
same rows/series the paper plots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Series", "FigureResult"]


@dataclass
class Series:
    """One line of a figure: a label and y-values over the x-axis."""

    label: str
    values: List[Optional[float]]

    def value_at(self, x_axis: Sequence[int], x: int) -> Optional[float]:
        try:
            return self.values[list(x_axis).index(x)]
        except ValueError:
            return None

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"label": self.label, "values": list(self.values)}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Series":
        return cls(label=str(doc["label"]), values=list(doc["values"]))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Series":
        return cls.from_dict(json.loads(text))


@dataclass
class FigureResult:
    """A reproduced figure: x-axis + series + provenance notes."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    x: List[int]
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[Optional[float]]) -> Series:
        if len(values) != len(self.x):
            raise ValueError(
                f"series {label!r} has {len(values)} values for "
                f"{len(self.x)} x points"
            )
        s = Series(label, list(values))
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")

    def ratio(self, num_label: str, den_label: str, x: int) -> float:
        """Series ratio at one x (e.g. Full/None at 64 CPUs)."""
        num = self.get(num_label).value_at(self.x, x)
        den = self.get(den_label).value_at(self.x, x)
        if num is None or den is None or den == 0:
            raise ValueError(f"cannot form ratio at x={x}")
        return num / den

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-safe form (floats survive the round trip exactly)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "xlabel": self.xlabel,
            "ylabel": self.ylabel,
            "x": list(self.x),
            "series": [s.to_dict() for s in self.series],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FigureResult":
        fig = cls(
            figure_id=str(doc["figure_id"]),
            title=str(doc["title"]),
            xlabel=str(doc["xlabel"]),
            ylabel=str(doc["ylabel"]),
            x=[int(v) for v in doc["x"]],
            notes=[str(n) for n in doc.get("notes", [])],
        )
        for sdoc in doc.get("series", []):
            s = Series.from_dict(sdoc)
            # add_series re-validates the length invariant on the way in.
            fig.add_series(s.label, s.values)
        return fig

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FigureResult":
        return cls.from_dict(json.loads(text))

    # -- rendering --------------------------------------------------------------

    def render(self, precision: int = 3) -> str:
        label_w = max(len(self.xlabel), 6)
        col_w = max([len(s.label) for s in self.series] + [precision + 7])
        header = f"{self.figure_id}: {self.title}"
        lines = [header, "=" * len(header)]
        row = f"{self.xlabel:>{label_w}s}"
        for s in self.series:
            row += f"  {s.label:>{col_w}s}"
        lines.append(row)
        for i, x in enumerate(self.x):
            row = f"{x:>{label_w}d}"
            for s in self.series:
                v = s.values[i]
                cell = "-" if v is None else f"{v:.{precision}f}"
                row += f"  {cell:>{col_w}s}"
            lines.append(row)
        lines.append(f"(y-axis: {self.ylabel})")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        lines = [",".join([self.xlabel] + [s.label for s in self.series])]
        for i, x in enumerate(self.x):
            cells = [str(x)]
            for s in self.series:
                v = s.values[i]
                cells.append("" if v is None else repr(v))
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return f"<FigureResult {self.figure_id}: {len(self.series)} series over {self.x}>"
