"""Command-line harness regenerating every table and figure.

Usage::

    repro-experiments table1 table2 table3      # the paper's tables
    repro-experiments fig7a --scale 0.1         # one Figure 7 panel
    repro-experiments fig7                      # all four panels
    repro-experiments fig8a fig8b fig8c         # confsync costs
    repro-experiments fig9                      # create+instrument time
    repro-experiments all --scale 0.05          # everything
    repro-experiments fig7a --csv out.csv       # machine-readable dump

Workload ``--scale`` shrinks simulated workloads proportionally (the
paper-shape ratios are scale-invariant); ``--quick`` caps the largest
process counts for fast smoke runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..apps import get_app
from .fig7 import FIG7_PANELS, fig7_shape_report, run_fig7
from .fig8 import IA32_PROC_COUNTS, IBM_PROC_COUNTS, run_fig8a, run_fig8b, run_fig8c
from .fig9 import run_fig9
from .results import FigureResult
from .tables import render_table1, render_table2, render_table3
from .tracevol import render_tracevol, run_tracevol

__all__ = ["main", "run_experiment", "EXPERIMENTS"]

EXPERIMENTS = (
    "table1", "table2", "table3",
    "fig7a", "fig7b", "fig7c", "fig7d", "fig7",
    "fig8a", "fig8b", "fig8c", "fig8",
    "fig9",
    "tracevol",
    "all",
)


def _quick_counts(counts, cap):
    return tuple(c for c in counts if c <= cap)


def run_experiment(name: str, scale: float, seed: int, quick: bool) -> List[object]:
    """Run one experiment id; returns text blocks / FigureResults."""
    out: List[object] = []
    if name == "table1":
        out.append(render_table1())
    elif name == "table2":
        out.append(render_table2())
    elif name == "table3":
        out.append(render_table3())
    elif name in FIG7_PANELS:
        app = get_app(FIG7_PANELS[name])
        cpus = _quick_counts(app.cpu_counts, 16) if quick else None
        fig = run_fig7(app, cpu_counts=cpus, scale=scale, seed=seed)
        out.append(fig)
        out.append("\n".join(fig7_shape_report(fig, app)) + "\n")
    elif name == "fig7":
        for panel in ("fig7a", "fig7b", "fig7c", "fig7d"):
            out.extend(run_experiment(panel, scale, seed, quick))
    elif name == "fig8a":
        counts = _quick_counts(IBM_PROC_COUNTS, 32) if quick else IBM_PROC_COUNTS
        out.append(run_fig8a(counts, seed=seed))
    elif name == "fig8b":
        counts = _quick_counts(IBM_PROC_COUNTS, 32) if quick else IBM_PROC_COUNTS
        out.append(run_fig8b(counts, seed=seed))
    elif name == "fig8c":
        counts = _quick_counts(IA32_PROC_COUNTS, 8) if quick else IA32_PROC_COUNTS
        out.append(run_fig8c(counts, seed=seed))
    elif name == "fig8":
        for panel in ("fig8a", "fig8b", "fig8c"):
            out.extend(run_experiment(panel, scale, seed, quick))
    elif name == "fig9":
        cpus = (1, 2, 4, 8) if quick else None
        out.append(run_fig9(cpu_counts=cpus, seed=seed))
    elif name == "tracevol":
        n = 4 if quick else 16
        out.append(render_tracevol(run_tracevol(n_cpus=n, scale=scale, seed=seed)))
    elif name == "all":
        for exp in ("table1", "table2", "table3", "fig7", "fig8", "fig9", "tracevol"):
            out.extend(run_experiment(exp, scale, seed, quick))
    else:
        raise SystemExit(f"unknown experiment {name!r}; known: {EXPERIMENTS}")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Dynamic "
                    "Instrumentation of Large-Scale MPI and OpenMP "
                    "Applications' (IPPS 2003).",
    )
    parser.add_argument("experiments", nargs="+", choices=EXPERIMENTS,
                        help="which tables/figures to regenerate")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1; 1.0 "
                             "reproduces paper-magnitude runtimes)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--quick", action="store_true",
                        help="cap process counts for a fast smoke run")
    parser.add_argument("--csv", metavar="FILE",
                        help="also dump figure data as CSV to FILE")
    args = parser.parse_args(argv)

    csv_chunks: List[str] = []
    for name in args.experiments:
        for item in run_experiment(name, args.scale, args.seed, args.quick):
            if isinstance(item, FigureResult):
                print(item.render())
                csv_chunks.append(item.to_csv())
            else:
                print(item)
    if args.csv and csv_chunks:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write("\n".join(csv_chunks))
        print(f"wrote CSV to {args.csv}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
