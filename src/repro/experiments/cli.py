"""Command-line harness regenerating every table and figure.

Usage::

    repro-experiments table1 table2 table3      # the paper's tables
    repro-experiments fig7a --scale 0.1         # one Figure 7 panel
    repro-experiments fig7 --jobs 8             # all four panels, parallel
    repro-experiments fig8a fig8b fig8c         # confsync costs
    repro-experiments fig9                      # create+instrument time
    repro-experiments all --scale 0.05          # everything
    repro-experiments fig7a --csv out.csv       # machine-readable dump
    repro-experiments fig7a --json              # JSON document on stdout
    repro-experiments sweep --apps smg98 --policies Full,None \\
        --cpus 1,4,16 --jobs 4                  # an ad-hoc grid

Workload ``--scale`` shrinks simulated workloads proportionally (the
paper-shape ratios are scale-invariant); ``--quick`` caps the largest
process counts for fast smoke runs.

Every figure's grid executes through :class:`repro.runner.SweepRunner`:
``--jobs N`` fans the (app x policy x CPUs) points over N worker
processes (0 = one per CPU), and results are memoized in a
content-addressed cache (``--cache-dir``, default
``~/.cache/repro/sweep`` or ``$REPRO_CACHE_DIR``; ``--no-cache``
disables it) so a re-run with the same configuration is served
entirely from disk.  ``--progress`` streams JSON-lines telemetry to
stderr; ``--timeout`` bounds each point's wall-clock time; ``--obs
FILE`` additionally collects :mod:`repro.obs` simulator metrics for
every computed point and writes one merged JSON document (figure
outputs stay bit-identical with or without it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Union

from ..apps import ALL_APPS, get_app
from ..cluster import MACHINES, get_machine
from ..dynprof import POLICIES
from ..runner import SweepError, SweepPoint, SweepRunner, default_cache_dir
from .fig7 import FIG7_PANELS, fig7_shape_report, run_fig7
from .fig8 import IA32_PROC_COUNTS, IBM_PROC_COUNTS, run_fig8a, run_fig8b, run_fig8c
from .fig9 import run_fig9
from .results import FigureResult
from .tables import render_table1, render_table2, render_table3
from .tracevol import render_tracevol, run_tracevol

__all__ = ["main", "run_experiment", "EXPERIMENTS", "ExperimentOutput"]

EXPERIMENTS = (
    "table1", "table2", "table3",
    "fig7a", "fig7b", "fig7c", "fig7d", "fig7",
    "fig8a", "fig8b", "fig8c", "fig8",
    "fig9",
    "tracevol",
    "all",
)

#: What one experiment id produces: rendered text blocks and/or figures.
ExperimentOutput = Union[str, FigureResult]


def _quick_counts(counts, cap):
    return tuple(c for c in counts if c <= cap)


def run_experiment(
    name: str,
    scale: float,
    seed: int,
    quick: bool,
    runner: Optional[SweepRunner] = None,
) -> List[ExperimentOutput]:
    """Run one experiment id; returns text blocks / FigureResults.

    ``runner`` (optional) carries the worker pool, result cache and
    telemetry every figure grid executes through; None runs serially
    without caching, exactly like a direct ``run_fig*`` call.
    """
    out: List[ExperimentOutput] = []
    if name == "table1":
        out.append(render_table1())
    elif name == "table2":
        out.append(render_table2())
    elif name == "table3":
        out.append(render_table3())
    elif name in FIG7_PANELS:
        app = get_app(FIG7_PANELS[name])
        cpus = _quick_counts(app.cpu_counts, 16) if quick else None
        fig = run_fig7(app, cpu_counts=cpus, scale=scale, seed=seed,
                       runner=runner)
        out.append(fig)
        out.append("\n".join(fig7_shape_report(fig, app)) + "\n")
    elif name == "fig7":
        for panel in ("fig7a", "fig7b", "fig7c", "fig7d"):
            out.extend(run_experiment(panel, scale, seed, quick, runner))
    elif name == "fig8a":
        counts = _quick_counts(IBM_PROC_COUNTS, 32) if quick else IBM_PROC_COUNTS
        out.append(run_fig8a(counts, seed=seed, runner=runner))
    elif name == "fig8b":
        counts = _quick_counts(IBM_PROC_COUNTS, 32) if quick else IBM_PROC_COUNTS
        out.append(run_fig8b(counts, seed=seed, runner=runner))
    elif name == "fig8c":
        counts = _quick_counts(IA32_PROC_COUNTS, 8) if quick else IA32_PROC_COUNTS
        out.append(run_fig8c(counts, seed=seed, runner=runner))
    elif name == "fig8":
        for panel in ("fig8a", "fig8b", "fig8c"):
            out.extend(run_experiment(panel, scale, seed, quick, runner))
    elif name == "fig9":
        cpus = (1, 2, 4, 8) if quick else None
        out.append(run_fig9(cpu_counts=cpus, seed=seed, runner=runner))
    elif name == "tracevol":
        n = 4 if quick else 16
        out.append(render_tracevol(
            run_tracevol(n_cpus=n, scale=scale, seed=seed, runner=runner)
        ))
    elif name == "all":
        for exp in ("table1", "table2", "table3", "fig7", "fig8", "fig9", "tracevol"):
            out.extend(run_experiment(exp, scale, seed, quick, runner))
    else:
        raise SystemExit(f"unknown experiment {name!r}; known: {EXPERIMENTS}")
    return out


# -- runner plumbing ------------------------------------------------------------


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep grids "
                             "(default 1 = in-process; 0 = one per CPU)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache location "
                             f"(default {default_cache_dir()})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-point wall-clock budget in seconds")
    parser.add_argument("--progress", action="store_true",
                        help="stream JSON-lines sweep telemetry to stderr")
    parser.add_argument("--obs", metavar="FILE", default=None,
                        help="collect simulator metrics (events, messages, "
                             "trace records, probe patches) per computed "
                             "point and write one merged JSON document to "
                             "FILE; figure outputs are unaffected")


def _build_runner(args: argparse.Namespace) -> SweepRunner:
    cache = None if args.no_cache else (args.cache_dir or default_cache_dir())
    return SweepRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        telemetry=sys.stderr if args.progress else None,
        collect_obs=bool(args.obs),
    )


def _write_obs_document(args: argparse.Namespace, runner: SweepRunner) -> None:
    """Emit the single-run metrics document ``--obs FILE`` asked for."""
    if not args.obs:
        return
    import json as _json

    from .. import __version__

    doc = {
        "version": __version__,
        "obs": runner.obs.snapshot(),
        "telemetry": runner.telemetry.summary(),
    }
    with open(args.obs, "w", encoding="utf-8") as fh:
        _json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote obs metrics to {args.obs}", file=sys.stderr)


# -- the `sweep` subcommand -----------------------------------------------------


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _str_list(text: str) -> List[str]:
    return [part for part in text.split(",") if part]


def sweep_main(argv: List[str]) -> int:
    """``repro-experiments sweep`` — run an ad-hoc (app x policy x CPUs)
    grid through the runner and print one row per point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Run an arbitrary (app x policy x CPU-count) grid "
                    "through the parallel sweep runner.",
    )
    parser.add_argument("--apps", type=_str_list, default=list(ALL_APPS),
                        metavar="A,B", help=f"applications (default: all of {','.join(ALL_APPS)})")
    parser.add_argument("--policies", type=_str_list, default=list(POLICIES),
                        metavar="P,Q", help=f"policies (default: all of {','.join(POLICIES)})")
    parser.add_argument("--cpus", type=_int_list, default=None, metavar="1,4,16",
                        help="CPU counts (default: each app's own counts)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--machine", choices=sorted(MACHINES), default="power3-sp",
                        help="machine preset (default power3-sp)")
    parser.add_argument("--json", action="store_true",
                        help="print results as a JSON document")
    _add_runner_args(parser)
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")

    machine = get_machine(args.machine)
    points: List[SweepPoint] = []
    for name in args.apps:
        try:
            app = get_app(name)
        except KeyError as exc:
            parser.error(str(exc))
        cpus = args.cpus if args.cpus is not None else list(app.cpu_counts)
        for policy in args.policies:
            if policy == "Subset" and not app.has_subset_policy:
                continue
            for n in cpus:
                if n > max(app.cpu_counts):
                    continue
                points.append(SweepPoint.policy_cell(
                    app.name, policy, n,
                    scale=args.scale, machine=machine, seed=args.seed,
                ))
    if not points:
        print("sweep: empty grid", file=sys.stderr)
        return 2

    runner = _build_runner(args)
    results = runner.run(points)
    ordered = [results[p] for p in points]

    if args.json:
        import json as _json

        doc = {
            "sweep": [
                {
                    "app": r.point.app,
                    "policy": r.point.policy,
                    "cpus": r.point.procs,
                    "status": r.status,
                    "cached": r.cached,
                    "payload": r.payload,
                }
                for r in ordered
            ],
            "telemetry": runner.telemetry.summary(),
        }
        print(_json.dumps(doc, indent=2))
    else:
        print(f"{'app':<9s} {'policy':<9s} {'cpus':>4s} {'status':>8s} "
              f"{'cached':>6s} {'time(s)':>10s}")
        print("-" * 52)
        for r in ordered:
            t = "-" if r.sim_time is None else f"{r.sim_time:.3f}"
            print(f"{r.point.app:<9s} {r.point.policy:<9s} "
                  f"{r.point.procs:>4d} {r.status:>8s} "
                  f"{str(r.cached).lower():>6s} {t:>10s}")
        s = runner.telemetry.summary()
        print(f"({s['ok']}/{s['total']} ok, {s['cached']} cached, "
              f"{s['failed']} failed, hit rate {s['hit_rate']:.0%})")
    _write_obs_document(args, runner)
    return 0 if all(r.ok for r in ordered) else 1


# -- entry point ----------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Dynamic "
                    "Instrumentation of Large-Scale MPI and OpenMP "
                    "Applications' (IPPS 2003).  Use the `sweep` "
                    "subcommand for ad-hoc grids.",
    )
    parser.add_argument("experiments", nargs="+", choices=EXPERIMENTS,
                        help="which tables/figures to regenerate")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1; 1.0 "
                             "reproduces paper-magnitude runtimes)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--quick", action="store_true",
                        help="cap process counts for a fast smoke run")
    parser.add_argument("--csv", metavar="FILE",
                        help="also dump figure data as CSV to FILE")
    parser.add_argument("--json", action="store_true",
                        help="print results as one JSON document on stdout "
                             "instead of rendered text")
    _add_runner_args(parser)
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")

    runner = _build_runner(args)
    json_items: List[dict] = []
    csv_chunks: List[str] = []
    for name in args.experiments:
        try:
            items = run_experiment(name, args.scale, args.seed, args.quick,
                                   runner=runner)
        except SweepError as exc:
            print(f"repro-experiments: {name}: {exc}", file=sys.stderr)
            return 1
        for item in items:
            if isinstance(item, FigureResult):
                csv_chunks.append(item.to_csv())
                if args.json:
                    json_items.append({"type": "figure", **item.to_dict()})
                else:
                    print(item.render())
            else:
                if args.json:
                    json_items.append({"type": "text", "text": item})
                else:
                    print(item)
    if args.json:
        import json as _json

        print(_json.dumps(
            {"results": json_items, "telemetry": runner.telemetry.summary()},
            indent=2,
        ))
    if args.csv and csv_chunks:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write("\n".join(csv_chunks))
        print(f"wrote CSV to {args.csv}", file=sys.stderr)
    _write_obs_document(args, runner)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
